from setuptools import setup

# Offline environments lack the 'wheel' package that PEP 517 editable
# installs require; this shim lets `pip install -e . --no-use-pep517`
# (and plain `python setup.py develop`) work without network access.
setup()
