"""Fault plans: what goes wrong, where, and at which virtual time.

A :class:`FaultPlan` is an immutable, time-sorted sequence of
:class:`FaultSpec` s.  Plans come from three places:

* **inline DSL** (the ``serve-bench --faults`` axis)::

      crash:slot=1,at=2e-3;restart:slot=1,at=4e-3,warmup=5e-4

  — semicolon-separated events, each ``kind:key=value,...``;
* **seeded generation** (:meth:`FaultPlan.random`, the ``--fault-seed``
  axis) — a :class:`random.Random`-driven chaos scenario that is a pure
  function of ``(seed, slots, horizon)``, so replaying a seed replays
  the exact fault sequence;
* **hand construction** in tests.

Nothing here touches wall clocks or global state: determinism is the
entire point.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """What kind of infrastructure event a :class:`FaultSpec` injects."""

    #: the slot dies at ``at``: in-flight work is lost, state -> DOWN
    CRASH = "crash"
    #: the slot stops admitting at ``at`` but in-flight work finishes
    #: (the node-drain protocol): state -> DRAINING -> DOWN
    DRAIN = "drain"
    #: a DOWN/DRAINING slot begins restarting at ``at`` and admits again
    #: after ``warmup`` virtual seconds: state -> RESTARTING -> HEALTHY
    RESTART = "restart"
    #: the slot slows down by ``factor`` from ``at`` (thermal throttle /
    #: noisy neighbour): state -> DEGRADED until a restart
    DEGRADE = "degrade"
    #: one transient transfer error at/after ``at``: the next batch
    #: dispatched to the slot fails once and is retried (slot stays up)
    TRANSFER_FAULT = "transfer-fault"


@dataclass(frozen=True)
class FaultSpec:
    """One injected event: ``kind`` strikes ``slot`` at virtual ``at``.

    Since the cluster layer, a spec may instead be **node-scoped**:
    ``node=N`` (with ``slot=-1``, the unscoped sentinel) targets a whole
    :class:`~repro.cluster.ClusterNode` — every slot of that node's
    fleet plus the node's own admission lifecycle.  A spec is exactly
    one of the two scopes; :meth:`for_node` builds node specs without
    spelling the sentinel.
    """

    kind: FaultKind
    slot: int
    #: virtual service time of the event (seconds)
    at: float
    #: DEGRADE only: execution-time multiplier (> 1 slows the slot)
    factor: float = 1.0
    #: RESTART only: warm-up delay before the slot admits again
    warmup: float = 0.0
    #: cluster-node index this spec targets (None = slot-scoped)
    node: int | None = None

    def __post_init__(self) -> None:
        if self.node is None:
            if self.slot < 0:
                raise ValueError(
                    f"fault slot must be >= 0, got {self.slot}"
                )
        else:
            if self.node < 0:
                raise ValueError(
                    f"fault node must be >= 0, got {self.node}"
                )
            if self.slot != -1:
                raise ValueError(
                    "a fault spec targets either a slot or a node, not"
                    f" both (slot={self.slot}, node={self.node})"
                )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind is FaultKind.DEGRADE and self.factor < 1.0:
            raise ValueError(
                f"degrade factor must be >= 1, got {self.factor}"
            )
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")

    @classmethod
    def for_node(
        cls,
        kind: FaultKind,
        node: int,
        at: float,
        factor: float = 1.0,
        warmup: float = 0.0,
    ) -> "FaultSpec":
        """A node-scoped spec: ``kind`` strikes cluster node ``node``."""
        return cls(
            kind, -1, at, factor=factor, warmup=warmup, node=node
        )

    @property
    def node_scoped(self) -> bool:
        return self.node is not None

    def describe(self) -> str:
        extra = ""
        if self.kind is FaultKind.DEGRADE:
            extra = f",factor={self.factor:g}"
        elif self.kind is FaultKind.RESTART and self.warmup:
            extra = f",warmup={self.warmup:g}"
        target = (
            f"node={self.node}" if self.node is not None
            else f"slot={self.slot}"
        )
        return f"{self.kind.value}:{target},at={self.at:g}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted fault schedule for one serving run."""

    specs: tuple[FaultSpec, ...] = ()
    #: provenance: the seed :meth:`random` generated this plan from
    #: (None for hand-written/parsed plans)
    seed: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.specs,
                key=lambda s: (s.at, s.slot, s.kind.value),
            )
        )
        object.__setattr__(self, "specs", ordered)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_slot(self, slot: int) -> tuple[FaultSpec, ...]:
        """The slot's own event sequence, time-sorted."""
        return tuple(
            s for s in self.specs if s.node is None and s.slot == slot
        )

    def for_node(self, node: int) -> tuple[FaultSpec, ...]:
        """The cluster node's own event sequence, time-sorted."""
        return tuple(s for s in self.specs if s.node == node)

    def slot_scoped(self) -> tuple[FaultSpec, ...]:
        """Every slot-scoped spec of the plan, time-sorted."""
        return tuple(s for s in self.specs if s.node is None)

    def node_scoped(self) -> tuple[FaultSpec, ...]:
        """Every node-scoped spec of the plan, time-sorted."""
        return tuple(s for s in self.specs if s.node is not None)

    def max_slot(self) -> int:
        """Largest slot index any spec targets (-1 for an empty plan)."""
        return max(
            (s.slot for s in self.specs if s.node is None), default=-1
        )

    def max_node(self) -> int:
        """Largest node index any spec targets (-1 when none do)."""
        return max(
            (s.node for s in self.specs if s.node is not None),
            default=-1,
        )

    def describe(self) -> str:
        """Round-trippable DSL form (see :meth:`parse`)."""
        return ";".join(s.describe() for s in self.specs)

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the inline DSL: ``kind:key=value,...`` events separated
        by ``;``.  Keys: exactly one of ``slot`` / ``node`` (int,
        required — ``node=`` makes the spec node-scoped for the cluster
        layer), ``at`` (float, required), ``factor`` (DEGRADE),
        ``warmup`` (RESTART)."""
        specs: list[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind_text, _, kv_text = chunk.partition(":")
            try:
                kind = FaultKind(kind_text.strip())
            except ValueError:
                raise ValueError(
                    f"unknown fault kind {kind_text.strip()!r}; choose"
                    f" from {[k.value for k in FaultKind]}"
                ) from None
            fields: dict[str, float] = {}
            for pair in kv_text.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                if not eq:
                    raise ValueError(
                        f"fault spec field {pair!r} must be key=value"
                    )
                try:
                    fields[key.strip()] = float(value)
                except ValueError:
                    raise ValueError(
                        f"fault spec field {pair!r} has a non-numeric"
                        " value"
                    ) from None
            unknown = set(fields) - {
                "slot", "node", "at", "factor", "warmup",
            }
            if unknown:
                raise ValueError(
                    f"unknown fault spec fields {sorted(unknown)}"
                )
            if ("slot" in fields) == ("node" in fields):
                raise ValueError(
                    f"fault spec {chunk!r} needs exactly one of slot="
                    " / node="
                )
            if "at" not in fields:
                raise ValueError(f"fault spec {chunk!r} needs at=")
            node = (
                int(fields["node"]) if "node" in fields else None
            )
            specs.append(
                FaultSpec(
                    kind=kind,
                    slot=int(fields["slot"]) if node is None else -1,
                    at=fields["at"],
                    factor=fields.get("factor", 1.0),
                    warmup=fields.get("warmup", 0.0),
                    node=node,
                )
            )
        return cls(specs=tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        slots: int,
        horizon: float,
        events: int | None = None,
        allow_total_blackout: bool = True,
    ) -> "FaultPlan":
        """A seeded chaos scenario: a pure function of its arguments.

        Draws 1..``events`` (default 1..2×slots) events over the first
        80% of ``horizon`` (faults near the very end strike after the
        queue drained and test nothing).  Crashes and drains are
        followed by a restart with probability 1/2, so degraded *and*
        recovered topologies both occur across seeds.  With
        ``allow_total_blackout=False`` slot 0 is never crashed or
        drained, guaranteeing at least one survivor.
        """
        if slots <= 0:
            raise ValueError("a fault plan needs >= 1 slot")
        if horizon <= 0:
            raise ValueError("fault horizon must be positive")
        rng = random.Random(seed)
        count = events if events is not None else rng.randint(
            1, max(1, 2 * slots)
        )
        window = horizon * 0.8
        specs: list[FaultSpec] = []
        for _ in range(count):
            kind = rng.choice(
                [
                    FaultKind.CRASH,
                    FaultKind.DRAIN,
                    FaultKind.DEGRADE,
                    FaultKind.TRANSFER_FAULT,
                ]
            )
            lo = 0 if allow_total_blackout else min(1, slots - 1)
            slot = rng.randrange(lo, slots) if slots > lo else 0
            at = rng.uniform(0.0, window)
            if kind is FaultKind.DEGRADE:
                specs.append(
                    FaultSpec(
                        kind, slot, at, factor=rng.uniform(1.5, 4.0)
                    )
                )
                continue
            specs.append(FaultSpec(kind, slot, at))
            if kind in (FaultKind.CRASH, FaultKind.DRAIN) and (
                rng.random() < 0.5
            ):
                delay = rng.uniform(0.05, 0.3) * horizon
                specs.append(
                    FaultSpec(
                        FaultKind.RESTART,
                        slot,
                        at + delay,
                        warmup=rng.uniform(0.0, 0.05) * horizon,
                    )
                )
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def random_nodes(
        cls,
        seed: int,
        nodes: int,
        horizon: float,
        events: int | None = None,
        allow_total_blackout: bool = True,
    ) -> "FaultPlan":
        """A seeded node-scoped chaos scenario for the cluster layer.

        The node-level twin of :meth:`random`: a pure function of its
        arguments that emits ``node=``-scoped specs over ``nodes``
        cluster nodes.  Crashes and drains are followed by a restart
        with probability 1/2; ``allow_total_blackout=False`` never
        crashes or drains node 0, guaranteeing a surviving node.
        """
        if nodes <= 0:
            raise ValueError("a node fault plan needs >= 1 node")
        if horizon <= 0:
            raise ValueError("fault horizon must be positive")
        rng = random.Random(seed)
        count = events if events is not None else rng.randint(
            1, max(1, 2 * nodes)
        )
        window = horizon * 0.8
        specs: list[FaultSpec] = []
        for _ in range(count):
            kind = rng.choice(
                [
                    FaultKind.CRASH,
                    FaultKind.DRAIN,
                    FaultKind.DEGRADE,
                    FaultKind.TRANSFER_FAULT,
                ]
            )
            lo = 0 if allow_total_blackout else min(1, nodes - 1)
            node = rng.randrange(lo, nodes) if nodes > lo else 0
            at = rng.uniform(0.0, window)
            if kind is FaultKind.DEGRADE:
                specs.append(
                    FaultSpec.for_node(
                        kind, node, at, factor=rng.uniform(1.5, 4.0)
                    )
                )
                continue
            specs.append(FaultSpec.for_node(kind, node, at))
            if kind in (FaultKind.CRASH, FaultKind.DRAIN) and (
                rng.random() < 0.5
            ):
                delay = rng.uniform(0.05, 0.3) * horizon
                specs.append(
                    FaultSpec.for_node(
                        FaultKind.RESTART,
                        node,
                        at + delay,
                        warmup=rng.uniform(0.0, 0.05) * horizon,
                    )
                )
        return cls(specs=tuple(specs), seed=seed)
