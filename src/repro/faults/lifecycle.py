"""The per-slot health state machine, driven from virtual time.

One :class:`SlotLifecycle` consumes one slot's time-sorted
:class:`~repro.faults.plan.FaultSpec` sequence and walks the machine

``HEALTHY -> DEGRADED -> DRAINING -> DOWN -> RESTARTING -> HEALTHY``

as the serving loop advances it (:meth:`SlotLifecycle.advance`) to
monotonically increasing virtual times.  The service advances every
slot to ``max(service cursor, slot clock)`` before each placement
decision — a slot that has simulated up to its own clock has, by
definition, experienced every event up to it — and to the batch finish
time after each dispatch, which is how mid-batch crashes are detected
(a CRASH transition inside the batch's time span means the in-flight
work was lost).

Transitions are returned to the caller (and kept on
:attr:`SlotLifecycle.transitions`) so the serving layer can count
``faults.injected`` and emit tracer instants; the machine itself is
side-effect-free and fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.faults.plan import FaultKind, FaultSpec


class SlotHealth(enum.Enum):
    """Where one fleet slot stands in its lifecycle."""

    HEALTHY = "healthy"
    #: up and admitting, but slowed by a degradation factor
    DEGRADED = "degraded"
    #: stopped admitting; in-flight work is finishing (node drain)
    DRAINING = "draining"
    DOWN = "down"
    #: restart initiated; admits again once the warm-up delay elapses
    RESTARTING = "restarting"

    @property
    def admitting(self) -> bool:
        return self in (SlotHealth.HEALTHY, SlotHealth.DEGRADED)


@dataclass(frozen=True)
class Transition:
    """One recorded state change (or transfer-fault arming)."""

    time: float
    spec: FaultSpec
    before: SlotHealth
    after: SlotHealth


class SlotLifecycle:
    """The health state machine of one fleet slot.

    ``advance(now)`` applies every pending event with ``at <= now`` (in
    time order) plus the implicit time-driven transitions (RESTARTING
    completes its warm-up; DRAINING settles to DOWN — batches execute
    synchronously, so at any advance boundary the slot's in-flight work
    has finished), and returns the transitions it made.
    """

    def __init__(self, slot: int, specs: tuple[FaultSpec, ...] = ()) -> None:
        self.slot = slot
        self._events = sorted(
            specs, key=lambda s: (s.at, s.kind.value)
        )
        self._cursor = 0
        self.state = SlotHealth.HEALTHY
        #: DEGRADE multiplier on batch execution time (1.0 = full speed)
        self.slowdown = 1.0
        #: virtual time a RESTARTING slot becomes HEALTHY
        self._admit_at: float | None = None
        self._restart_spec: FaultSpec | None = None
        #: armed transient transfer faults not yet consumed by a dispatch
        self._pending_transfer_faults: list[float] = []
        self.now = 0.0
        #: every state change ever made (introspection/tests)
        self.transitions: list[Transition] = []

    # -- queries -----------------------------------------------------------

    @property
    def admitting(self) -> bool:
        return self.state.admitting

    def earliest_admit(self, now: float) -> float | None:
        """The earliest virtual time at/after ``now`` this slot could
        admit again, or None if it never will.

        Used by the serving loop to fast-forward across a total outage
        instead of deadlocking: an admitting slot answers ``now``; a
        RESTARTING slot answers its warm-up completion; a DOWN/DRAINING
        slot answers its next scheduled RESTART's completion."""
        if self.state.admitting:
            return now
        if self.state is SlotHealth.RESTARTING:
            assert self._admit_at is not None
            return max(now, self._admit_at)
        for spec in self._events[self._cursor:]:
            if spec.kind is FaultKind.RESTART:
                return max(now, spec.at + spec.warmup)
        return None

    def take_transfer_fault(self, now: float) -> bool:
        """Consume one armed transient transfer fault with ``at <= now``
        (the dispatch that draws it fails once and retries)."""
        if (
            self._pending_transfer_faults
            and self._pending_transfer_faults[0] <= now
        ):
            self._pending_transfer_faults.pop(0)
            return True
        return False

    # -- the machine -------------------------------------------------------

    def advance(self, now: float) -> list[Transition]:
        """Apply every event with ``at <= now``; returns the transitions.

        ``now`` may not go backwards (virtual time is monotone per
        slot); repeated advances to the same time are no-ops.
        """
        if now < self.now:
            raise ValueError(
                f"slot {self.slot} lifecycle cannot rewind from"
                f" {self.now:g} to {now:g}"
            )
        made: list[Transition] = []
        while self._cursor < len(self._events):
            spec = self._events[self._cursor]
            if spec.at > now:
                break
            self._cursor += 1
            # Time-driven settles that should precede this event.
            self._settle(spec.at, made)
            self._apply(spec, made)
        self._settle(now, made)
        self.now = now
        self.transitions.extend(made)
        return made

    def _settle(self, now: float, made: list[Transition]) -> None:
        """Apply implicit time-driven transitions up to ``now``."""
        if (
            self.state is SlotHealth.RESTARTING
            and self._admit_at is not None
            and now >= self._admit_at
        ):
            self._transition(
                self._admit_at,
                self._restart_spec,
                SlotHealth.HEALTHY,
                made,
            )
            self.slowdown = 1.0
            self._admit_at = None

    def _apply(self, spec: FaultSpec, made: list[Transition]) -> None:
        if spec.kind is FaultKind.CRASH:
            if self.state is not SlotHealth.DOWN:
                self._transition(spec.at, spec, SlotHealth.DOWN, made)
                # A crash mid-restart cancels the pending warm-up.
                self._admit_at = None
        elif spec.kind is FaultKind.DRAIN:
            if self.state.admitting:
                # DRAINING is observable, then settles to DOWN: at any
                # advance boundary the slot's in-flight work has
                # finished (synchronous batches), completing the drain.
                self._transition(spec.at, spec, SlotHealth.DRAINING, made)
                self._transition(spec.at, spec, SlotHealth.DOWN, made)
        elif spec.kind is FaultKind.RESTART:
            if self.state in (SlotHealth.DOWN, SlotHealth.DRAINING):
                self._transition(
                    spec.at, spec, SlotHealth.RESTARTING, made
                )
                self._admit_at = spec.at + spec.warmup
                self._restart_spec = spec
        elif spec.kind is FaultKind.DEGRADE:
            if self.state.admitting:
                self.slowdown = spec.factor
                if self.state is SlotHealth.HEALTHY:
                    self._transition(
                        spec.at, spec, SlotHealth.DEGRADED, made
                    )
        elif spec.kind is FaultKind.TRANSFER_FAULT:
            # Not a state change: arm one transient failure.  Recorded
            # as a self-transition so it still counts as injected.
            self._pending_transfer_faults.append(spec.at)
            made.append(
                Transition(spec.at, spec, self.state, self.state)
            )

    def _transition(
        self,
        time: float,
        spec: FaultSpec,
        to: SlotHealth,
        made: list[Transition],
    ) -> None:
        made.append(Transition(time, spec, self.state, to))
        self.state = to

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SlotLifecycle slot={self.slot} {self.state.value}"
            f" now={self.now:g} events={len(self._events)}>"
        )
