"""Deterministic fault injection for the serving fleet.

Operational data systems treat fault management as a first-class
subsystem: nodes crash mid-flight, links flake, devices degrade, and
operators drain and restart hosts.  This package reifies those events
as *data* — a seeded, fully deterministic :class:`FaultPlan` of
:class:`FaultSpec` s pinned to virtual times — plus the per-slot
lifecycle state machine (:class:`SlotLifecycle`) that consumes them:

``HEALTHY -> DEGRADED -> DRAINING -> DOWN -> RESTARTING -> HEALTHY``

Because every fault is a (virtual-time, slot) coordinate rather than a
wall-clock accident, a faulted serving run is *replayable*: the same
seed and the same plan produce a bit-identical
:class:`~repro.serve.service.ServiceReport`, and every request that
completes still produces results bit-identical to serial execution —
the degraded-topology groundwork the cluster-of-fleets layer inherits.
"""

from repro.faults.lifecycle import SlotHealth, SlotLifecycle, Transition
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "SlotHealth",
    "SlotLifecycle",
    "Transition",
]
