"""The multi-GPU runtime scheduler (section-VI future work).

Extends the single-GPU scheduling loop with one extra decision per
computation: *which GPU runs it*.  Everything else is reused — the
dependency-set DAG, per-device stream managers, event synchronization.

Placement policies:

* ``ROUND_ROBIN`` — naive; ignores data location;
* ``MIN_TRANSFER`` — the paper's stated requirement: "compute data
  location and migration costs at run time".  Each candidate device is
  priced as (bytes it would have to migrate) plus a load-balance tiebreak
  on outstanding work.
* ``LEAST_LOADED`` — ignores data location and picks the device with
  the least outstanding (estimated) work; the classic serving-fleet
  dispatch rule that :mod:`repro.serve` builds on.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.core.policies import SchedulerConfig
from repro.core.streams import StreamManager
from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import KernelOp
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.stream import SimStream
from repro.kernels.kernel import Kernel, KernelLaunch
from repro.kernels.registry import build_kernel
from repro.kernels.profile import CostModel
from repro.memory.coherence import CoherenceEngine
from repro.multigpu.array import MultiGpuArray


class DevicePlacementPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    MIN_TRANSFER = "min-transfer"
    LEAST_LOADED = "least-loaded"


class _PerDevice:
    """Per-GPU scheduling state."""

    def __init__(self, index: int, engine: SimEngine,
                 config: SchedulerConfig) -> None:
        self.index = index
        self._engine = engine
        # StreamManager creates streams on device 0 by default; a custom
        # factory pins this manager's streams to this device.
        self.streams = StreamManager(
            engine,
            new_stream=config.new_stream,
            parent_stream=config.parent_stream,
            stream_factory=self._make_stream,
        )
        self._label_counter = 0
        self.outstanding_work: float = 0.0

    def _make_stream(self) -> SimStream:
        self._label_counter += 1
        return self._engine.create_stream(
            label=f"gpu{self.index}-{self._label_counter}",
            device_index=self.index,
        )


class MultiGpuScheduler:
    """A GrCUDA-style runtime scheduling across several GPUs."""

    def __init__(
        self,
        gpus: list[str | GPUSpec],
        policy: DevicePlacementPolicy = DevicePlacementPolicy.MIN_TRANSFER,
        config: SchedulerConfig | None = None,
    ) -> None:
        if not gpus:
            raise ValueError("need at least one GPU")
        specs = [
            gpu_by_name(g) if isinstance(g, str) else g for g in gpus
        ]
        self.devices = [Device(s) for s in specs]
        self.engine = SimEngine(self.devices)
        self.policy = policy
        self.config = config or SchedulerConfig()
        self.dag = ComputationDAG()
        self._per_device = [
            _PerDevice(i, self.engine, self.config)
            for i in range(len(self.devices))
        ]
        self._rr_next = 0
        self._arrays: list[MultiGpuArray] = []
        #: element id -> device index (placement decisions, for tests)
        self.placements: dict[int, int] = {}
        #: all host<->device and peer-to-peer movement flows through here
        self.coherence = CoherenceEngine(self.engine)

    # -- allocation -------------------------------------------------------

    def array(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = "float32",
        name: str = "",
        materialize: bool = True,
    ) -> MultiGpuArray:
        """Allocate an array visible to every GPU (UM address space)."""
        arr = MultiGpuArray(
            shape,
            dtype=dtype,
            devices=tuple(self.devices),
            name=name,
            materialize=materialize,
        )
        self._arrays.append(arr)
        return arr

    def build_kernel(
        self,
        code: Callable[..., None] | str,
        name: str,
        signature: str,
        cost_model: CostModel | None = None,
    ) -> Kernel:
        return build_kernel(
            code, name, signature,
            cost_model=cost_model, launch_handler=self.launch,
        )

    # -- placement ----------------------------------------------------------

    def _placement_cost(
        self, device_index: int, launch: KernelLaunch
    ) -> tuple[float, float]:
        """(migration bytes, outstanding work) — lexicographic cost."""
        migration = 0.0
        for array, access in launch.array_args:
            assert isinstance(array, MultiGpuArray)
            if access.reads:
                migration += array.migration_bytes(device_index)
        return migration, self._per_device[device_index].outstanding_work

    def _choose_device(self, launch: KernelLaunch) -> int:
        if self.policy is DevicePlacementPolicy.ROUND_ROBIN:
            choice = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.devices)
            return choice
        if self.policy is DevicePlacementPolicy.LEAST_LOADED:
            return min(
                range(len(self.devices)),
                key=lambda i: (self._per_device[i].outstanding_work, i),
            )
        return min(
            range(len(self.devices)),
            key=lambda i: self._placement_cost(i, launch),
        )

    # -- scheduling ------------------------------------------------------------

    def launch(self, launch: KernelLaunch) -> None:
        """Handler for kernel invocations (same flow as single-GPU,
        plus the device decision and peer-to-peer migrations)."""
        self.engine.charge_host_time(
            self.config.scheduling_overhead_us * 1e-6
        )
        accesses = [
            (a, k) for a, k in launch.array_args
        ]
        element = ComputationalElement(accesses, label=launch.label)
        parents = self.dag.add(element)

        device_index = self._choose_device(launch)
        self.placements[element.element_id] = device_index
        per_dev = self._per_device[device_index]
        stream = per_dev.streams.assign(element, parents)

        for parent in parents:
            if (
                parent.finish_event is not None
                and parent.stream is not stream
                and not parent.finish_event.complete
            ):
                self.engine.wait_event(stream, parent.finish_event)

        self.coherence.acquire_multi(
            list(launch.array_args), stream, device_index,
            label=launch.label,
        )
        self.coherence.release_multi(
            list(launch.array_args), device_index
        )

        resources = launch.resources()
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        # Race-detector tokens are per *copy* — (array, device) — so a
        # peer-to-peer copy reading GPU 0's replica does not conflict
        # with a kernel also reading GPU 0's replica, but does conflict
        # with anything touching the destination replica.
        op.info["reads"] = frozenset(
            (id(a), device_index) for a, k in launch.array_args if k.reads
        )
        op.info["writes"] = frozenset(
            (id(a), device_index) for a, k in launch.array_args if k.writes
        )
        op.info["array_names"] = {
            (id(a), device_index): f"{a.name}@gpu{device_index}"
            for a, _ in launch.array_args
        }
        op.info["device"] = device_index
        self.engine.submit(stream, op)
        duration_estimate = self.devices[
            device_index
        ].contention.kernel_duration(op)
        per_dev.outstanding_work += duration_estimate
        op.on_complete.append(
            lambda _op, pd=per_dev, d=duration_estimate: self._retire(pd, d)
        )
        element.finish_event = self.engine.record_event(
            stream, label=f"done:{launch.label}@gpu{device_index}"
        )
        self.dag.watch_completion(element)

    @staticmethod
    def _retire(per_dev: _PerDevice, duration: float) -> None:
        per_dev.outstanding_work = max(
            0.0, per_dev.outstanding_work - duration
        )

    # -- host interaction ------------------------------------------------------

    def write_input(self, array: MultiGpuArray, data=None) -> None:
        """Host write: invalidates all device copies.

        Synchronizes any in-flight computation touching the array first
        (the CPU-access rule of section IV-A, simplified to full-array
        streaming writes).
        """
        conflicts = self.dag.active_users(array)
        for e in conflicts:
            if e.finish_event is not None:
                self.engine.sync_event(e.finish_event)
        if data is not None:
            array.copy_from_host(data)  # marks the host write itself
        self.coherence.cpu_write_full_multi(array, mark=data is None)
        self.dag.deactivate_completed()

    def read_result(self, array: MultiGpuArray, nbytes: int | None = None):
        """Host read: syncs producers and charges the readback."""
        writers = self.dag.active_writers(array)
        for e in writers:
            if e.finish_event is not None:
                self.engine.sync_event(e.finish_event)
        self.coherence.cpu_read_multi(
            array, self.engine.default_stream, nbytes=nbytes
        )
        self.dag.deactivate_completed()
        return array.kernel_view

    def sync(self) -> None:
        self.engine.sync_all()
        self.dag.deactivate_completed()

    @property
    def elapsed(self) -> float:
        return self.engine.timeline.makespan

    def device_kernel_counts(self) -> list[int]:
        """Kernels executed per GPU (load-balance introspection)."""
        counts = [0] * len(self.devices)
        for rec in self.engine.timeline.kernels():
            counts[rec.meta.get("device", 0)] += 1
        return counts
