"""The legacy ``MultiGpuScheduler`` facade — a deprecation shim.

The multi-GPU scheduling loop now lives in
:class:`repro.multigpu.context.MultiGpuExecutionContext`, selected by
:class:`repro.session.Session` when ``gpus > 1``; placement policy is a
:class:`~repro.core.policies.SchedulerConfig` field rather than a
constructor argument.  This class keeps the old surface working::

    sched = MultiGpuScheduler(["1660", "1660"])       # DeprecationWarning
    a = sched.array(N)
    k = sched.build_kernel(fn, "k", "ptr, sint32")
    k(512, 256)(a, N)
    sched.sync()

New code should write
``Session(gpus=2, config=SchedulerConfig(placement=...))`` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Callable

from repro.core.policies import DevicePlacementPolicy, SchedulerConfig
from repro.gpusim.specs import GPUSpec
from repro.memory.array import AccessKind
from repro.kernels.kernel import Kernel
from repro.kernels.profile import CostModel
from repro.multigpu.array import MultiGpuArray
from repro.multigpu.context import MultiGpuExecutionContext

__all__ = ["DevicePlacementPolicy", "MultiGpuScheduler"]


class MultiGpuScheduler:
    """A GrCUDA-style runtime scheduling across several GPUs
    (deprecated alias of a multi-GPU Session)."""

    def __init__(
        self,
        gpus: list[str | GPUSpec],
        policy: DevicePlacementPolicy = DevicePlacementPolicy.MIN_TRANSFER,
        config: SchedulerConfig | None = None,
    ) -> None:
        warnings.warn(
            "MultiGpuScheduler is deprecated; use repro.Session(gpus=N,"
            " config=SchedulerConfig(placement=...)) — one entry point"
            " across single-GPU, multi-GPU and serving",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported here: repro.session imports this package's array
        # module, which initializes the package, which imports this shim.
        from repro.session import Session

        if not gpus:
            raise ValueError("need at least one GPU")
        config = replace(config or SchedulerConfig(), placement=policy)
        # _force_multi: a one-element GPU list historically still ran
        # the placement scheduler (and allocated MultiGpuArrays).
        self.session = Session(
            gpus=len(gpus), gpu=gpus, config=config, _force_multi=True
        )
        self.policy = policy

    # -- session delegation -------------------------------------------------

    @property
    def config(self) -> SchedulerConfig:
        return self.session.config

    @property
    def engine(self):
        return self.session.engine

    @property
    def devices(self):
        return self.session.devices

    @property
    def context(self) -> MultiGpuExecutionContext:
        ctx = self.session.context
        assert isinstance(ctx, MultiGpuExecutionContext)
        return ctx

    @property
    def dag(self):
        return self.session.dag

    @property
    def coherence(self):
        return self.context.coherence

    @property
    def placements(self) -> dict[int, int]:
        """element id -> device index (placement decisions, for tests)."""
        return self.context.placements

    def array(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = "float32",
        name: str = "",
        materialize: bool = True,
    ) -> MultiGpuArray:
        """Allocate an array visible to every GPU (UM address space)."""
        arr = self.session.array(
            shape, dtype=dtype, name=name, materialize=materialize
        )
        assert isinstance(arr, MultiGpuArray)
        return arr

    def build_kernel(
        self,
        code: Callable[..., None] | str,
        name: str,
        signature: str,
        cost_model: CostModel | None = None,
    ) -> Kernel:
        return self.session.build_kernel(
            code, name, signature, cost_model=cost_model
        )

    # -- host interaction ------------------------------------------------------

    def write_input(self, array: MultiGpuArray, data=None) -> None:
        """Host write: invalidates all device copies (via the array's
        CPU-access hook, which synchronizes conflicting work first)."""
        if data is not None:
            array.copy_from_host(data)
        else:
            array.touch_write_full()

    def read_result(self, array: MultiGpuArray, nbytes: int | None = None):
        """Host read: syncs producers and charges the readback (partial
        when ``nbytes`` bounds it), returning the live buffer — the
        legacy contract."""
        touched = min(nbytes or array.nbytes, array.nbytes)
        array._notify(AccessKind.READ, touched)
        return array.kernel_view

    def sync(self) -> None:
        self.session.sync()

    @property
    def elapsed(self) -> float:
        return self.session.elapsed()

    def device_kernel_counts(self) -> list[int]:
        """Kernels executed per GPU (load-balance introspection)."""
        return self.context.device_kernel_counts()
