"""Multi-GPU scheduling — the paper's section-VI future work.

"As future work, we plan to extend our technique to multiple GPUs: the
problem is significantly harder, as it requires to compute data location
and migration costs at run time to identify the optimal scheduling."

This package implements exactly that on the simulator substrate:

* :class:`MultiGpuArray` tracks *data location* — which devices (and the
  host) hold a valid copy;
* :class:`MultiGpuScheduler` extends the runtime DAG scheduler with a
  device-placement step that prices each candidate GPU's *migration
  cost* (host uploads and peer-to-peer copies) before choosing, with
  round-robin and locality-aware policies to compare;
* peer-to-peer transfers ride the simulator's ``DEVICE_TO_DEVICE``
  direction.

All single-GPU machinery (dependency sets, stream managers per device,
events, race detection) is reused unchanged.
"""

from repro.core.policies import DevicePlacementPolicy
from repro.multigpu.array import MultiGpuArray
from repro.multigpu.context import MultiGpuExecutionContext
from repro.multigpu.scheduler import MultiGpuScheduler

__all__ = [
    "MultiGpuArray",
    "MultiGpuExecutionContext",
    "DevicePlacementPolicy",
    "MultiGpuScheduler",
]
