"""The multi-GPU execution context.

Extends the single-GPU scheduling loop with one extra decision per
computation: *which GPU runs it*.  Everything else is shared machinery —
the dependency-set DAG, per-device stream managers, event
synchronization, the coherence engine (through its multi-GPU
planned/committed location-set overlay), kernel history.

This used to be a standalone ``MultiGpuScheduler`` class with its own
``array``/``build_kernel``/``launch`` surface; it is now an
:class:`~repro.core.context.ExecutionContext` implementation selected by
:class:`repro.session.Session` when ``gpus > 1``, so device count is
configuration rather than an API choice.  Two things changed under the
hood in the move:

* data movement flows through
  :meth:`~repro.memory.coherence.CoherenceEngine.acquire_multi` with the
  session's configured :class:`~repro.memory.coherence.MovementPolicy` —
  ``PAGE_FAULT`` no longer degrades to an unconditional eager mirror, so
  fault-vs-prefetch ablations run fleet-wide;
* :class:`~repro.multigpu.array.MultiGpuArray` location sets transition
  when operations *complete* on the simulated device, with placement
  pricing reading the coherence engine's planned overlay (previously the
  set committed at submission because pricing read it synchronously).

Placement policies (:class:`~repro.core.policies.DevicePlacementPolicy`):

* ``ROUND_ROBIN`` — naive; ignores data location;
* ``MIN_TRANSFER`` — the paper's stated requirement: "compute data
  location and migration costs at run time".  Each candidate device is
  priced as (bytes it would have to migrate, on the planned view) plus a
  load-balance tiebreak on outstanding work.
* ``LEAST_LOADED`` — ignores data location and picks the device with the
  least outstanding (estimated) work; the classic serving-fleet dispatch
  rule that :mod:`repro.serve` builds on.
"""

from __future__ import annotations

from repro.core.context import (
    ExecutionContext,
    kernel_history_recorder,
    library_call_resources,
    wait_cross_stream_parents,
)
from repro.core.element import (
    ArrayAccessElement,
    KernelElement,
    LibraryCallElement,
)
from repro.core.policies import DevicePlacementPolicy, SchedulerConfig
from repro.core.streams import StreamManager
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import KernelOp
from repro.gpusim.stream import SimStream
from repro.kernels.kernel import KernelLaunch
from repro.kernels.profile import combine_resources
from repro.memory.array import AccessKind
from repro.memory.pages import PAGE_SIZE_BYTES
from repro.multigpu.array import MultiGpuArray


class _PerDevice:
    """Per-GPU scheduling state."""

    def __init__(self, index: int, engine: SimEngine,
                 config: SchedulerConfig) -> None:
        self.index = index
        self._engine = engine
        # StreamManager creates streams on device 0 by default; a custom
        # factory pins this manager's streams to this device.
        self.streams = StreamManager(
            engine,
            new_stream=config.new_stream,
            parent_stream=config.parent_stream,
            stream_factory=self._make_stream,
        )
        self._label_counter = 0
        self.outstanding_work: float = 0.0

    def _make_stream(self) -> SimStream:
        self._label_counter += 1
        return self._engine.create_stream(
            label=f"gpu{self.index}-{self._label_counter}",
            device_index=self.index,
        )


class MultiGpuExecutionContext(ExecutionContext):
    """A GrCUDA-style execution context scheduling across several GPUs."""

    def __init__(self, engine: SimEngine, config: SchedulerConfig) -> None:
        super().__init__(engine, config)
        self.devices = engine.devices
        self.placement = config.resolve_placement()
        self._per_device = [
            _PerDevice(i, engine, config)
            for i in range(len(self.devices))
        ]
        self._rr_next = 0
        #: element id -> device index (placement decisions, for tests)
        self.placements: dict[int, int] = {}

    # -- placement ----------------------------------------------------------

    def _placement_cost(
        self, device_index: int, launch: KernelLaunch
    ) -> tuple[float, float]:
        """(planned migration bytes, outstanding work) — lexicographic."""
        migration = 0.0
        for array, access in launch.array_args:
            assert isinstance(array, MultiGpuArray)
            if access.reads:
                migration += self.coherence.multi_migration_bytes(
                    array, device_index
                )
        return migration, self._per_device[device_index].outstanding_work

    def _choose_device(self, launch: KernelLaunch) -> int:
        if self.placement is DevicePlacementPolicy.ROUND_ROBIN:
            choice = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.devices)
            return choice
        if self.placement is DevicePlacementPolicy.LEAST_LOADED:
            return min(
                range(len(self.devices)),
                key=lambda i: (self._per_device[i].outstanding_work, i),
            )
        return min(
            range(len(self.devices)),
            key=lambda i: self._placement_cost(i, launch),
        )

    # -- scheduling ------------------------------------------------------------

    def launch(self, launch: KernelLaunch) -> None:
        """Handler for kernel invocations (same flow as single-GPU, plus
        the device decision and policy-driven replica migrations)."""
        self.kernel_count += 1
        self.engine.charge_host_time(
            self.config.scheduling_overhead_us * 1e-6
        )
        element = KernelElement(launch)
        parents = self.dag.add(element)

        device_index = self._choose_device(launch)
        self.placements[element.element_id] = device_index
        per_dev = self._per_device[device_index]
        stream = per_dev.streams.assign(element, parents)
        wait_cross_stream_parents(self.engine, stream, parents)

        accesses = list(launch.array_args)
        plan = self.coherence.acquire_multi(
            accesses, stream, device_index,
            label=launch.label, policy=self.movement,
        )
        resources = launch.resources()
        if plan.fault_bytes > 0:
            resources = combine_resources(resources, plan.fault_bytes)
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        # Race-detector tokens are per *copy* — (array, device) — so a
        # peer-to-peer copy reading GPU 0's replica does not conflict
        # with a kernel also reading GPU 0's replica, but does conflict
        # with anything touching the destination replica.
        op.info["reads"] = frozenset(
            (id(a), device_index) for a, k in launch.array_args if k.reads
        )
        op.info["writes"] = frozenset(
            (id(a), device_index) for a, k in launch.array_args if k.writes
        )
        op.info["array_names"] = {
            (id(a), device_index): f"{a.name}@gpu{device_index}"
            for a, _ in launch.array_args
        }
        op.info["device"] = device_index
        op.info.update(self.op_tags)
        op.on_complete.append(
            kernel_history_recorder(launch, self.history.record)
        )
        # Location-set transitions (reads via faults, writes) apply when
        # the kernel completes — never at submission.
        self.coherence.release_multi(plan, accesses, device_index, op)
        self.engine.submit(stream, op)

        duration_estimate = self.devices[
            device_index
        ].contention.kernel_duration(op)
        per_dev.outstanding_work += duration_estimate
        op.on_complete.append(
            lambda _op, pd=per_dev, d=duration_estimate: self._retire(pd, d)
        )
        element.finish_event = self.engine.record_event(
            stream, label=f"done:{launch.label}@gpu{device_index}"
        )
        self.coherence.register_fault_ordering(plan, element.finish_event)
        self.dag.watch_completion(element)

    @staticmethod
    def _retire(per_dev: _PerDevice, duration: float) -> None:
        per_dev.outstanding_work = max(
            0.0, per_dev.outstanding_work - duration
        )

    # -- CPU array accesses -----------------------------------------------------

    def attach(self, array: MultiGpuArray) -> None:  # type: ignore[override]
        """Route the array's CPU accesses through this context."""
        array.set_access_hook(self._on_cpu_access)

    def _on_cpu_access(
        self, array: MultiGpuArray, kind: AccessKind, touched: int
    ) -> None:
        """Hook called before every CPU access to a managed array.

        The CPU-access rule of section IV-A, generalized to location
        sets: synchronize the precise conflicting computations, write
        back from a valid replica when the host copy is stale, and let a
        full-array overwrite kill every device replica without moving a
        byte.
        """
        full_write = kind.writes and touched >= array.nbytes
        conflicts = (
            self.dag.active_users(array)
            if kind.writes
            else self.dag.active_writers(array)
        )
        needs_writeback = (
            not full_write and not self.coherence.multi_host_valid(array)
        )
        if not conflicts and not needs_writeback:
            # Fast path: consecutive accesses, or accesses while no GPU
            # computation is active, bypass the DAG.  A full write still
            # invalidates replicas through the shared transition path.
            self.cpu_access_fast_path_count += 1
            if kind.writes:
                # Any host write (full or read-modify-write) leaves the
                # host as the sole valid copy; the shared transition
                # path also drops in-flight migration bookkeeping.
                self.coherence.cpu_write_full_multi(array)
            return

        self.cpu_access_element_count += 1
        element = ArrayAccessElement(array, kind, touched)
        self.dag.add(element)
        # Synchronize only the computations operating on this data,
        # through their precise per-computation events.
        for parent in conflicts:
            if parent.finish_event is not None:
                self.engine.sync_event(parent.finish_event)

        if needs_writeback:
            # Page-granular read-modify-write, like the single-GPU path.
            pages = max(1, -(-int(touched) // PAGE_SIZE_BYTES))
            self.coherence.cpu_read_multi(
                array, self.engine.default_stream,
                nbytes=min(array.nbytes, pages * PAGE_SIZE_BYTES),
            )
        if kind.writes:
            self.coherence.cpu_write_full_multi(array)
        self.dag.deactivate(element)
        self.dag.deactivate_completed()

    # -- library functions -----------------------------------------------------

    def library_call(self, element: LibraryCallElement) -> None:
        """Schedule a pre-registered library function across the fleet.

        Stream-aware libraries are placed like kernels (least-loaded —
        the call declares a flat cost, so there is no migration pricing
        to beat) and scheduled asynchronously; stream-unaware ones force
        a fleet-wide sync and run on the host.
        """
        if not element.stream_aware:
            self.sync()
            self.engine.charge_host_time(element.cost_seconds)
            element.fn()
            return
        parents = self.dag.add(element)
        device_index = min(
            range(len(self.devices)),
            key=lambda i: (self._per_device[i].outstanding_work, i),
        )
        per_dev = self._per_device[device_index]
        stream = per_dev.streams.assign(element, parents)
        wait_cross_stream_parents(self.engine, stream, parents)
        accesses = list(element.accesses)
        plan = self.coherence.acquire_multi(
            accesses, stream, device_index,
            label=element.label, policy=self.movement,
        )
        resources = library_call_resources(
            self.devices[device_index].spec, element.cost_seconds
        )
        if plan.fault_bytes > 0:
            resources = combine_resources(resources, plan.fault_bytes)
        op = KernelOp(
            label=element.label,
            resources=resources,
            compute_fn=element.fn,
        )
        op.info["device"] = device_index
        op.info.update(self.op_tags)
        self.coherence.release_multi(plan, accesses, device_index, op)
        self.engine.submit(stream, op)
        element.finish_event = self.engine.record_event(
            stream, label=f"done:{element.label}@gpu{device_index}"
        )
        self.coherence.register_fault_ordering(plan, element.finish_event)
        self.dag.watch_completion(element)

    # -- introspection --------------------------------------------------------

    def reclaimable_streams(self) -> tuple[SimStream, ...]:
        return (
            tuple(
                s
                for per_dev in self._per_device
                for s in per_dev.streams.streams
            )
            + self.coherence.take_owned_streams()
        )

    def device_kernel_counts(self) -> list[int]:
        """Kernels executed per GPU (load-balance introspection)."""
        counts = [0] * len(self.devices)
        for rec in self.engine.timeline.kernels():
            counts[rec.meta.get("device", 0)] += 1
        return counts


__all__ = [
    "MultiGpuExecutionContext",
    "DevicePlacementPolicy",
]
