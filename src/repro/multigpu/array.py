"""Arrays with per-device data-location tracking.

The single-GPU :class:`~repro.memory.array.DeviceArray` tracks two
copies (host/device); with multiple GPUs the location state becomes a
set: the host and any subset of devices may hold a valid copy, writes
invalidate everyone else, and the scheduler prices migrations from
whichever valid copy is cheapest to reach.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.gpusim.device import Device
from repro.memory.array import AccessKind, HostArraySurface

#: CPU-access hook installed by the multi-GPU execution context; called
#: *before* the numpy access happens (same protocol as ``DeviceArray``).
MultiAccessHook = Callable[["MultiGpuArray", AccessKind, int], None]


class MultiGpuArray(HostArraySurface):
    """A unified-memory array visible to the host and several GPUs.

    Shares the host surface of
    :class:`~repro.memory.array.DeviceArray` (hooked indexing, bulk
    copies, ``kernel_view`` — via
    :class:`~repro.memory.array.HostArraySurface`) so host programs —
    and the polyglot DSL — are written once and run unchanged whatever
    the session's device count.
    """

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float32,
        devices: tuple[Device, ...] = (),
        name: str = "",
        materialize: bool = True,
    ) -> None:
        self._shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self._dtype = np.dtype(dtype)
        self.name = name or f"marr{id(self) & 0xFFFF:x}"
        self.materialized = materialize
        self._data = (
            np.zeros(self._shape, dtype=self._dtype)
            if materialize
            else np.zeros(1, dtype=self._dtype)
        )
        self.devices = devices
        #: validity: host + per-device.  Fresh UM memory is zeroed and
        #: valid everywhere (no copy exists yet to be stale).
        self.host_valid = True
        self.valid_on: set[int] = set(range(len(devices)))
        self._alloc_handles = [
            dev.allocate(self.nbytes) for dev in devices
        ]
        self._on_cpu_access: MultiAccessHook | None = None
        self.freed = False

    # -- location queries -----------------------------------------------------

    def valid_anywhere(self) -> bool:
        return self.host_valid or bool(self.valid_on)

    def resident_on(self, device_index: int) -> bool:
        return device_index in self.valid_on

    def migration_source(self, device_index: int) -> int | None:
        """Cheapest source for making ``device_index`` valid.

        Returns another device index (peer-to-peer copy), ``-1`` for the
        host, or None if already resident.
        """
        if self.resident_on(device_index):
            return None
        peers = sorted(self.valid_on)
        if peers:
            return peers[0]
        assert self.host_valid, f"{self.name} lost all copies"
        return -1

    def migration_bytes(self, device_index: int) -> int:
        """Bytes to move before a kernel on ``device_index`` reads this."""
        return 0 if self.resident_on(device_index) else self.nbytes

    # -- transitions -------------------------------------------------------------

    def mark_read(self, device_index: int) -> None:
        """Device obtained a valid copy (after its migration landed)."""
        self.valid_on.add(device_index)

    def mark_write(self, device_index: int) -> None:
        """Device wrote the array: every other copy is stale."""
        self.valid_on = {device_index}
        self.host_valid = False

    def mark_cpu_read(self) -> None:
        self.host_valid = True

    def mark_cpu_write(self) -> None:
        self.host_valid = True
        self.valid_on.clear()

    # -- host access (hooked) --------------------------------------------------

    def set_access_hook(self, hook: MultiAccessHook | None) -> None:
        """Route the array's CPU accesses through an execution context."""
        self._on_cpu_access = hook

    def _notify(self, kind: AccessKind, touched: int) -> None:
        """Declare an imminent host access.  With no context attached the
        location-set transition applies directly (standalone arrays stay
        coherent — the location set *is* this class's reason to exist)."""
        if self._on_cpu_access is not None:
            self._on_cpu_access(self, kind, touched)
            return
        if kind.reads:
            self.mark_cpu_read()
        if kind.writes:
            self.mark_cpu_write()

    # -- lifecycle ----------------------------------------------------------------

    def free(self) -> None:
        """Release the per-device allocations.  Idempotent."""
        if self.freed:
            return
        for dev, handle in zip(self.devices, self._alloc_handles):
            dev.free(handle)
        self._alloc_handles = []
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = []
        if self.host_valid:
            where.append("host")
        where += [f"gpu{i}" for i in sorted(self.valid_on)]
        return (
            f"<MultiGpuArray {self.name} {self._dtype}{list(self._shape)}"
            f" valid on {'+'.join(where) or 'nowhere'}>"
        )
