"""Launchable kernels, GrCUDA-style.

The host-facing API reproduces the paper's Fig. 4::

    K1 = build_kernel(K1_CODE, "square", "ptr, sint32")
    K1(NUM_BLOCKS, NUM_THREADS)(X, N)

``K1`` is a :class:`Kernel`; calling it with a launch geometry yields a
:class:`ConfiguredKernel`; calling *that* with arguments produces a
:class:`KernelLaunch` which is handed to the execution context (the
scheduler) — the host never blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import LaunchError
from repro.kernels.profile import CostModel
from repro.kernels.signature import Signature
from repro.memory.array import AccessKind, DeviceArray

#: CUDA limits: threads per block in [1, 1024]; paper sweeps 32..1024.
MAX_THREADS_PER_BLOCK = 1024

Dim = tuple[int, int, int]


def normalize_dim(dim: int | tuple[int, ...]) -> Dim:
    """Normalize an int or 1-3 element tuple to a 3-D geometry tuple."""
    if isinstance(dim, (int, np.integer)):
        values: tuple[int, ...] = (int(dim),)
    else:
        values = tuple(int(v) for v in dim)
    if not 1 <= len(values) <= 3:
        raise LaunchError(f"geometry must have 1-3 dimensions, got {values}")
    if any(v < 1 for v in values):
        raise LaunchError(f"geometry dimensions must be >= 1, got {values}")
    return (values + (1, 1))[:3]  # type: ignore[return-value]


def _dim_product(dim: Dim) -> int:
    return dim[0] * dim[1] * dim[2]


@dataclass(frozen=True)
class KernelLaunch:
    """One fully-specified kernel invocation, ready for scheduling."""

    kernel: "Kernel"
    grid: Dim
    block: Dim
    args: tuple[Any, ...]
    array_args: tuple[tuple[DeviceArray, AccessKind], ...]
    scalar_args: tuple[Any, ...]

    @property
    def threads_per_block(self) -> int:
        return _dim_product(self.block)

    @property
    def blocks(self) -> int:
        return _dim_product(self.grid)

    @property
    def threads_total(self) -> int:
        return self.blocks * self.threads_per_block

    @property
    def label(self) -> str:
        return self.kernel.name

    def resources(self):
        """Price this launch with the kernel's cost model."""
        return self.kernel.cost_model.resources(self)

    def execute(self) -> None:
        """Run the functional (numpy) implementation.

        Pointer parameters are passed as raw numpy views; scalars pass
        through unchanged.  Called by the simulator at kernel-completion
        time, in dependency order.
        """
        concrete = [
            getattr(a, "kernel_view", a) for a in self.args
        ]
        self.kernel.compute_fn(*concrete)


#: Set by the execution context; receives every launch.
LaunchHandler = Callable[[KernelLaunch], None]


class Kernel:
    """A compiled GPU kernel bound to a signature and a cost model."""

    def __init__(
        self,
        name: str,
        signature: Signature,
        compute_fn: Callable[..., None],
        cost_model: CostModel,
        launch_handler: LaunchHandler | None = None,
    ) -> None:
        self.name = name
        self.signature = signature
        self.compute_fn = compute_fn
        self.cost_model = cost_model
        self.launch_handler = launch_handler
        self.launch_count = 0

    def __call__(
        self, grid: int | tuple[int, ...], block: int | tuple[int, ...] = 128
    ) -> "ConfiguredKernel":
        """Configure a launch geometry: ``kernel(blocks, threads)``."""
        grid3 = normalize_dim(grid)
        block3 = normalize_dim(block)
        tpb = _dim_product(block3)
        if tpb > MAX_THREADS_PER_BLOCK:
            raise LaunchError(
                f"{self.name}: {tpb} threads per block exceeds the CUDA"
                f" limit of {MAX_THREADS_PER_BLOCK}"
            )
        return ConfiguredKernel(self, grid3, block3)

    def bind_args(self, args: tuple[Any, ...]) -> KernelLaunch:
        """Validate ``args`` against the signature; package a launch."""
        params = self.signature.parameters
        if len(args) != len(params):
            raise LaunchError(
                f"{self.name}: expected {len(params)} arguments"
                f" ({self.signature.raw}), got {len(args)}"
            )
        array_args: list[tuple[DeviceArray, AccessKind]] = []
        scalar_args: list[Any] = []
        for arg, param in zip(args, params):
            if param.is_pointer:
                # Duck-typed: single-GPU DeviceArray and the multi-GPU
                # array both expose the device-pointer protocol.
                if not (
                    hasattr(arg, "kernel_view") and hasattr(arg, "nbytes")
                ):
                    raise LaunchError(
                        f"{self.name}: parameter {param.name!r} is a"
                        f" pointer; got {type(arg).__name__}"
                    )
                array_args.append((arg, param.access))
            else:
                if isinstance(arg, DeviceArray):
                    raise LaunchError(
                        f"{self.name}: parameter {param.name!r} is a"
                        f" scalar; got a DeviceArray"
                    )
                scalar_args.append(arg)
        # Bind a placeholder geometry; ConfiguredKernel overrides it.
        return KernelLaunch(
            kernel=self,
            grid=(1, 1, 1),
            block=(1, 1, 1),
            args=tuple(args),
            array_args=tuple(array_args),
            scalar_args=tuple(scalar_args),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name}({self.signature.raw})>"


@dataclass(frozen=True)
class ConfiguredKernel:
    """A kernel with its launch geometry fixed; calling it launches."""

    kernel: Kernel
    grid: Dim
    block: Dim

    def __call__(self, *args: Any) -> KernelLaunch:
        launch = self.kernel.bind_args(args)
        launch = KernelLaunch(
            kernel=launch.kernel,
            grid=self.grid,
            block=self.block,
            args=launch.args,
            array_args=launch.array_args,
            scalar_args=launch.scalar_args,
        )
        self.kernel.launch_count += 1
        if self.kernel.launch_handler is None:
            raise LaunchError(
                f"kernel {self.kernel.name} is not attached to a runtime"
            )
        self.kernel.launch_handler(launch)
        return launch
