"""Kernel registry and the ``build_kernel`` entry point.

GrCUDA's ``buildkernel(code, name, signature)`` compiles CUDA source with
NVRTC.  Our "source" is either a Python callable (the functional
implementation) or the name of an implementation previously registered in
a :class:`KernelRegistry` — which is how the workload suite ships its 33
kernels.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import LaunchError
from repro.kernels.kernel import Kernel, LaunchHandler
from repro.kernels.profile import CostModel, LinearCostModel
from repro.kernels.signature import parse_signature


class KernelRegistry:
    """Named kernel implementations with their default cost models."""

    def __init__(self) -> None:
        self._impls: dict[str, tuple[Callable[..., None], CostModel]] = {}

    def register(
        self,
        name: str,
        compute_fn: Callable[..., None],
        cost_model: CostModel | None = None,
    ) -> None:
        if name in self._impls:
            raise ValueError(f"kernel {name!r} already registered")
        self._impls[name] = (compute_fn, cost_model or LinearCostModel())

    def __contains__(self, name: str) -> bool:
        return name in self._impls

    def get(self, name: str) -> tuple[Callable[..., None], CostModel]:
        try:
            return self._impls[name]
        except KeyError:
            raise LaunchError(
                f"no kernel implementation registered under {name!r}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._impls)


#: Process-wide registry used by build_kernel when given a string "code".
GLOBAL_REGISTRY = KernelRegistry()


def build_kernel(
    code: Callable[..., None] | str,
    name: str,
    signature: str,
    cost_model: CostModel | None = None,
    launch_handler: LaunchHandler | None = None,
    registry: KernelRegistry | None = None,
) -> Kernel:
    """Build a launchable kernel, mirroring GrCUDA's ``buildkernel``.

    Parameters
    ----------
    code:
        Either the functional implementation itself (a callable taking
        numpy views and scalars), or the name of a registered
        implementation.
    name:
        Kernel name, as it appears in timelines and metrics.
    signature:
        NIDL signature string, e.g. ``"const ptr, ptr, sint32"``.
    cost_model:
        Roofline cost model; defaults to the registered model (for string
        codes) or a generic :class:`LinearCostModel`.
    launch_handler:
        Where launches are sent; the runtime fills this in.
    registry:
        Registry for string lookups; defaults to the global one.
    """
    sig = parse_signature(signature)
    if isinstance(code, str):
        reg = registry or GLOBAL_REGISTRY
        compute_fn, registered_model = reg.get(code)
        model = cost_model or registered_model
    else:
        compute_fn = code
        model = cost_model or LinearCostModel()
    return Kernel(
        name=name,
        signature=sig,
        compute_fn=compute_fn,
        cost_model=model,
        launch_handler=launch_handler,
    )
