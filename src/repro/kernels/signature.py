"""NIDL kernel-signature parsing.

GrCUDA specifies kernel signatures with the Native Interface Definition
Language (NIDL) or Truffle NFI: a comma-separated list of parameter
types, optionally named, with access qualifiers.  Examples from the paper
(Fig. 4)::

    "ptr, sint32"
    "const ptr, const ptr, ptr, sint32"

and the named form::

    "x: inout pointer float, n: sint32"

Access qualifiers drive the scheduler's read-only dependency rules
(section IV-D): ``const`` and ``in`` mark a pointer read-only, ``out``
write-only, and unqualified pointers are treated as read-write —
"not specifying arguments as read-only does not affect correctness, but
might limit the scheduler from performing further optimizations."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SignatureError
from repro.memory.array import AccessKind

_SCALAR_TYPES = {
    "sint8", "sint16", "sint32", "sint64",
    "uint8", "uint16", "uint32", "uint64",
    "char", "float", "double", "float32", "float64",
    "sll64", "bool",
}

_POINTER_TYPES = {"ptr", "pointer"}

_QUALIFIERS = {
    "const": AccessKind.READ,
    "in": AccessKind.READ,
    "out": AccessKind.WRITE,
    "inout": AccessKind.READ_WRITE,
}


class ParamKind(enum.Enum):
    POINTER = "pointer"
    SCALAR = "scalar"


@dataclass(frozen=True)
class Parameter:
    """One kernel parameter.

    ``access`` is only meaningful for pointers; scalars are passed by
    value and never create dependencies (Fig. 4: "scalar value passed by
    copy, ignored for dependencies").
    """

    name: str
    kind: ParamKind
    access: AccessKind
    type_name: str
    position: int

    @property
    def is_pointer(self) -> bool:
        return self.kind is ParamKind.POINTER

    @property
    def read_only(self) -> bool:
        return self.is_pointer and self.access is AccessKind.READ


@dataclass(frozen=True)
class Signature:
    """A parsed NIDL signature."""

    parameters: tuple[Parameter, ...]
    raw: str

    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self):
        return iter(self.parameters)

    def __getitem__(self, i: int) -> Parameter:
        return self.parameters[i]

    @property
    def pointer_parameters(self) -> tuple[Parameter, ...]:
        return tuple(p for p in self.parameters if p.is_pointer)

    @property
    def scalar_parameters(self) -> tuple[Parameter, ...]:
        return tuple(p for p in self.parameters if not p.is_pointer)


def _parse_parameter(token: str, position: int) -> Parameter:
    token = token.strip()
    if not token:
        raise SignatureError(f"empty parameter at position {position}")
    name = f"arg{position}"
    if ":" in token:
        name_part, _, token = token.partition(":")
        name = name_part.strip()
        if not name.isidentifier():
            raise SignatureError(
                f"invalid parameter name {name!r} at position {position}"
            )
        token = token.strip()

    words = token.split()
    if not words:
        raise SignatureError(f"missing type at position {position}")

    access = AccessKind.READ_WRITE
    if words[0] in _QUALIFIERS:
        access = _QUALIFIERS[words[0]]
        words = words[1:]
        if not words:
            raise SignatureError(
                f"qualifier without type at position {position}"
            )

    base = words[0]
    if base in _POINTER_TYPES:
        # Optional element type, e.g. "pointer float".
        elem = words[1] if len(words) > 1 else "float"
        if len(words) > 2:
            raise SignatureError(
                f"trailing tokens {words[2:]} at position {position}"
            )
        if elem not in _SCALAR_TYPES:
            raise SignatureError(
                f"unknown element type {elem!r} at position {position}"
            )
        return Parameter(
            name=name,
            kind=ParamKind.POINTER,
            access=access,
            type_name=elem,
            position=position,
        )

    if base in _SCALAR_TYPES:
        if len(words) > 1:
            raise SignatureError(
                f"trailing tokens {words[1:]} at position {position}"
            )
        if access is not AccessKind.READ_WRITE:
            raise SignatureError(
                f"scalar parameter at position {position} cannot carry an"
                f" access qualifier (scalars are passed by copy)"
            )
        return Parameter(
            name=name,
            kind=ParamKind.SCALAR,
            access=AccessKind.READ,
            type_name=base,
            position=position,
        )

    raise SignatureError(
        f"unknown type {base!r} at position {position}"
        f" (expected one of {sorted(_POINTER_TYPES | _SCALAR_TYPES)})"
    )


def parse_signature(text: str) -> Signature:
    """Parse a NIDL signature string into a :class:`Signature`.

    Raises
    ------
    SignatureError
        On any malformed input; the message pinpoints the parameter.
    """
    if not text or not text.strip():
        raise SignatureError("signature must not be empty")
    params = tuple(
        _parse_parameter(tok, i) for i, tok in enumerate(text.split(","))
    )
    return Signature(parameters=params, raw=text)
