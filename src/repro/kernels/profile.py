"""Kernel cost models.

Each kernel carries a cost model that converts a concrete launch (grid,
block, argument sizes) into a :class:`KernelResourceRequest` consumed by
the simulator's roofline/contention model.  Workloads parameterize these
per kernel; tests pin them against hand-computed values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.gpusim.ops import KernelResourceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.kernel import KernelLaunch


class CostModel(Protocol):
    """Anything that prices a kernel launch."""

    def resources(self, launch: "KernelLaunch") -> KernelResourceRequest:
        """Resource footprint of the launch (fault_bytes left at 0; the
        execution context fills it in from coherence state)."""
        ...


@dataclass(frozen=True)
class LinearCostModel:
    """Costs linear in a work-item count.

    ``items_fn`` extracts the item count from the launch; by default it is
    the element count of the largest array argument, which matches the
    elementwise kernels that dominate the suite.  Per-item coefficients
    then give FLOPs, DRAM traffic, L2 traffic and instructions.

    A fixed ``*_base`` term covers launch-constant work (e.g. a reduction
    tree's final passes).
    """

    flops_per_item: float = 0.0
    dram_bytes_per_item: float = 0.0
    l2_bytes_per_item: float = 0.0
    instructions_per_item: float = 10.0
    flops_base: float = 0.0
    dram_bytes_base: float = 0.0
    fp64: bool = False
    sm_fraction_cap: float = 1.0
    items_fn: Callable[["KernelLaunch"], float] | None = None

    def _items(self, launch: "KernelLaunch") -> float:
        if self.items_fn is not None:
            return float(self.items_fn(launch))
        sizes = [a.size for a, _ in launch.array_args]
        if not sizes:
            return float(launch.threads_total)
        return float(max(sizes))

    def resources(self, launch: "KernelLaunch") -> KernelResourceRequest:
        n = self._items(launch)
        return KernelResourceRequest(
            flops=self.flops_per_item * n + self.flops_base,
            fp64=self.fp64,
            dram_bytes=self.dram_bytes_per_item * n + self.dram_bytes_base,
            l2_bytes=self.l2_bytes_per_item * n,
            instructions=self.instructions_per_item * n,
            threads_total=launch.threads_total,
            sm_fraction_cap=self.sm_fraction_cap,
        )


@dataclass(frozen=True)
class FixedCostModel:
    """A launch-size-independent footprint (for tests and micro-kernels)."""

    flops: float = 0.0
    dram_bytes: float = 0.0
    l2_bytes: float = 0.0
    instructions: float = 0.0
    fp64: bool = False

    def resources(self, launch: "KernelLaunch") -> KernelResourceRequest:
        return KernelResourceRequest(
            flops=self.flops,
            fp64=self.fp64,
            dram_bytes=self.dram_bytes,
            l2_bytes=self.l2_bytes,
            instructions=self.instructions,
            threads_total=launch.threads_total,
        )


def combine_resources(
    base: KernelResourceRequest, fault_bytes: float
) -> KernelResourceRequest:
    """Return ``base`` with on-demand migration bytes attached.

    The execution context calls this when a kernel runs without its
    inputs resident and without prefetching (the page-fault path).
    """
    return KernelResourceRequest(
        flops=base.flops,
        fp64=base.fp64,
        dram_bytes=base.dram_bytes,
        l2_bytes=base.l2_bytes,
        instructions=base.instructions,
        threads_total=base.threads_total,
        fault_bytes=fault_bytes,
        sm_fraction_cap=base.sm_fraction_cap,
    )
