"""Kernel substrate: signatures, cost profiles and launchable kernels.

GrCUDA builds kernels from CUDA source via NVRTC and a NIDL signature
string (section IV-D).  Here the "device code" is a Python function
operating on numpy views (functional behaviour), paired with a roofline
cost model (timing behaviour).  The NIDL signature — including the
``const``/``in``/``out`` access annotations the scheduler exploits — is
parsed exactly as in the paper.
"""

from repro.kernels.signature import (
    Signature,
    Parameter,
    ParamKind,
    parse_signature,
)
from repro.kernels.profile import (
    CostModel,
    LinearCostModel,
    FixedCostModel,
    combine_resources,
)
from repro.kernels.kernel import (
    Kernel,
    ConfiguredKernel,
    KernelLaunch,
    normalize_dim,
)
from repro.kernels.registry import KernelRegistry, build_kernel

__all__ = [
    "Signature",
    "Parameter",
    "ParamKind",
    "parse_signature",
    "CostModel",
    "LinearCostModel",
    "FixedCostModel",
    "combine_resources",
    "Kernel",
    "ConfiguredKernel",
    "KernelLaunch",
    "normalize_dim",
    "KernelRegistry",
    "build_kernel",
]
