"""``repro.Session`` — one runtime entry point for every device count.

The paper's core promise is that the host program never changes: the
runtime transparently decides scheduling, placement and data movement.
:class:`Session` is that promise at the API layer::

    from repro import Session, SchedulerConfig, MovementPolicy

    sess = Session(gpus=2, config=SchedulerConfig(
        movement=MovementPolicy.PAGE_FAULT,
    ))
    x = sess.array(1_000_000)
    square = sess.build_kernel(lambda a, n: np.square(a, out=a),
                               "square", "ptr, sint32")
    square(256, 256)(x, 1_000_000)
    value = x[0]          # host access; the scheduler syncs just enough

The same six calls — :meth:`~Session.array`,
:meth:`~Session.build_kernel`, :meth:`~Session.library_call`,
:meth:`~Session.sync`, :meth:`~Session.timeline`,
:meth:`~Session.metrics` — drive a single GPU (``gpus=1``: the serial or
parallel execution context of section IV-B), a multi-GPU fleet
(``gpus>1``: the device-placement scheduler of section VI) and, through
:mod:`repro.serve`, a serving fleet (a pool of Sessions behind admission
control).  Device count and every policy — execution, streams,
movement, placement, admission — live in one
:class:`~repro.core.policies.SchedulerConfig`; nothing is selected by
class.

The legacy entry points (``GrCUDARuntime``, ``MultiGpuScheduler``)
remain as deprecation shims over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.context import (
    ExecutionContext,
    ParallelExecutionContext,
    SerialExecutionContext,
)
from repro.core.element import LibraryCallElement
from repro.core.policies import ExecutionPolicy, SchedulerConfig
from repro.errors import ConfigError
from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.timeline import Timeline
from repro.kernels.kernel import Kernel
from repro.kernels.profile import CostModel
from repro.kernels.registry import KernelRegistry, build_kernel
from repro.memory.array import AccessKind, DeviceArray
from repro.multigpu.array import MultiGpuArray
from repro.multigpu.context import MultiGpuExecutionContext
from repro.obs.counters import CounterRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class SessionMetrics:
    """One session's execution counters, from :meth:`Session.metrics`."""

    gpus: int
    #: device execution time: first scheduling to last completion (the
    #: paper's execution-time definition)
    makespan: float
    #: total virtual time including host-side waits and overheads
    host_clock: float
    kernels_launched: int
    #: kernels executed per GPU (placement/load-balance introspection)
    device_kernel_counts: tuple[int, ...]
    #: engine-issued migration/writeback operations
    transfer_ops: int
    #: bytes moved by engine-issued HtoD/DtoD migrations
    migrated_bytes: float
    #: bytes left to the page-fault engine (charged inside kernels)
    fault_bytes: float
    #: bytes written back to the host on CPU accesses
    writeback_bytes: float
    #: transfers saved by BATCHED coalescing
    coalesced_transfers: int
    #: flat namespaced counter snapshot (``engine.*`` + ``coherence.*``)
    #: from the observability registry — the superset the scalar fields
    #: above are drawn from
    counters: dict = dataclass_field(default_factory=dict)


class Session:
    """One runtime instance: N simulated devices + engine + scheduler.

    ``gpus`` is the device count; ``gpu`` names the model (one name for
    a homogeneous session, or a sequence of ``gpus`` names/specs for a
    heterogeneous one).  All policy lives in ``config``.
    """

    def __init__(
        self,
        gpus: int = 1,
        gpu: str | GPUSpec | Sequence[str | GPUSpec] = "GTX 1660 Super",
        config: SchedulerConfig | None = None,
        registry: KernelRegistry | None = None,
        serving: bool = False,
        tracer: Tracer | None = None,
        _force_multi: bool = False,
    ) -> None:
        if not isinstance(gpu, (str, GPUSpec)):
            gpu_list = list(gpu)
            if not gpu_list:
                raise ConfigError("gpu list must not be empty")
            if gpus == 1 and len(gpu_list) > 1:
                gpus = len(gpu_list)  # infer the count from the list
        else:
            gpu_list = None
        self.config = config or SchedulerConfig()
        self.config.validate(gpus=gpus, serving=serving)
        if gpu_list is None:
            gpu_list = [gpu] * gpus
        elif gpus != len(gpu_list):
            raise ConfigError(
                f"gpus={gpus} but {len(gpu_list)} GPU specs were given"
            )
        self._multi = gpus > 1 or _force_multi
        if self._multi and self.config.execution is ExecutionPolicy.SERIAL:
            raise ConfigError(
                "the serial scheduler is single-GPU (the original GrCUDA"
                " scheduler predates device placement); use"
                " ExecutionPolicy.PARALLEL with gpus > 1"
            )
        self.gpus = gpus
        self.specs = tuple(
            gpu_by_name(g) if isinstance(g, str) else g for g in gpu_list
        )
        self.spec = self.specs[0]
        self.devices = tuple(Device(s) for s in self.specs)
        self.device = self.devices[0]
        # Without an explicit tracer the engine resolves the ambient
        # default itself; omitting the kwarg also keeps engine
        # substitutes with the pre-obs constructor signature working.
        if tracer is None:
            self.engine = SimEngine(list(self.devices))
        else:
            self.engine = SimEngine(list(self.devices), tracer=tracer)
        self.registry = registry
        self.context: ExecutionContext = self._build_context()
        self._arrays: list[DeviceArray | MultiGpuArray] = []
        #: contexts retired by :meth:`renew_context` (re-entrancy count)
        self.context_generation = 0

    def _build_context(self) -> ExecutionContext:
        if self._multi:
            return MultiGpuExecutionContext(self.engine, self.config)
        if self.config.execution is ExecutionPolicy.SERIAL:
            return SerialExecutionContext(self.engine, self.config)
        return ParallelExecutionContext(self.engine, self.config)

    def renew_context(
        self, op_tags: dict | None = None, drain: bool = True
    ) -> ExecutionContext:
        """Replace the execution context with a fresh one (re-entrant use).

        A long-lived session serving many independent task graphs (see
        :mod:`repro.serve`) reuses the device and engine while giving
        each admitted graph its own DAG, stream manager and kernel
        history — the isolation a tenant would get from a private
        session, without re-building the device.  By default the old
        context is drained first and its streams are reclaimed from the
        engine, so the scheduling loop does not scan ever-growing
        dead-stream lists; arrays still registered with the session are
        re-attached to the new context.

        ``drain=False`` swaps contexts *without* synchronizing: the old
        context's submitted work stays in flight and its arrays keep
        their hooks, so several contexts can coexist on the engine (the
        serving layer's batch path).  The caller then owns draining the
        engine and reclaiming the retired contexts' streams.

        ``op_tags`` (e.g. ``{"tenant": "a"}``) are merged into every op
        the new context submits, keeping shared-engine timeline records
        attributable.
        """
        if drain:
            self.context.sync()
            self.engine.reclaim_streams(
                self.context.reclaimable_streams()
            )
        ctx = self._build_context()
        if op_tags:
            ctx.op_tags.update(op_tags)
        if drain:
            for arr in self._arrays:
                ctx.attach(arr)
        self.context = ctx
        self.context_generation += 1
        return ctx

    def _dispatch_launch(self, launch) -> None:
        """Route a kernel launch to the *current* context.

        Kernels keep working across :meth:`renew_context` because they
        bind this dispatcher rather than one context's ``launch``."""
        self.context.launch(launch)

    # -- arrays ---------------------------------------------------------------

    def array(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float32,
        name: str = "",
        materialize: bool = True,
    ) -> DeviceArray | MultiGpuArray:
        """Allocate a UM-backed array managed by this session.

        A single-GPU session returns a
        :class:`~repro.memory.array.DeviceArray`; a multi-GPU session a
        :class:`~repro.multigpu.array.MultiGpuArray` with a per-device
        location set.  Both expose the same host surface, so calling
        code never branches on device count.

        ``materialize=False`` declares the geometry without backing host
        memory — for timing-only sweeps at scales that would not fit in
        host RAM.  All scheduling and transfer costs stay exact.
        """
        arr: DeviceArray | MultiGpuArray
        if self._multi:
            arr = MultiGpuArray(
                shape,
                dtype=dtype,
                devices=self.devices,
                name=name,
                materialize=materialize,
            )
        else:
            arr = DeviceArray(
                shape,
                dtype=dtype,
                device=self.device,
                name=name,
                materialize=materialize,
            )
        self.context.attach(arr)
        self._arrays.append(arr)
        return arr

    def adopt_array(self, arr: DeviceArray) -> None:
        """Track an externally-created array on this session's device so
        :meth:`free_arrays` releases it (used by executors that manage
        coherence manually, e.g. the serving layer's replay path)."""
        self._arrays.append(arr)

    def free_arrays(self) -> None:
        """Release every array allocated through this session."""
        for arr in self._arrays:
            arr.free()
        self._arrays.clear()

    # -- kernels --------------------------------------------------------------

    def build_kernel(
        self,
        code: Callable[..., None] | str,
        name: str,
        signature: str,
        cost_model: CostModel | None = None,
    ) -> Kernel:
        """GrCUDA's ``buildkernel``: bind code + NIDL signature to this
        session's scheduler (single- or multi-GPU alike)."""
        return build_kernel(
            code,
            name,
            signature,
            cost_model=cost_model,
            launch_handler=self._dispatch_launch,
            registry=self.registry,
        )

    # -- library functions -----------------------------------------------------

    def library_call(
        self,
        fn: Callable[[], None],
        accesses: list[tuple[DeviceArray, AccessKind]],
        label: str = "library",
        stream_aware: bool = True,
        cost_seconds: float = 0.0,
    ) -> None:
        """Invoke a pre-registered library function (section IV-A)."""
        element = LibraryCallElement(
            fn=fn,
            accesses=accesses,
            label=label,
            stream_aware=stream_aware,
            cost_seconds=cost_seconds,
        )
        ctx = self.context
        if isinstance(
            ctx, (ParallelExecutionContext, MultiGpuExecutionContext)
        ):
            ctx.library_call(element)
        else:
            ctx.sync()
            self.engine.charge_host_time(cost_seconds)
            fn()

    # -- execution control ---------------------------------------------------------

    def sync(self) -> None:
        """Wait for all in-flight GPU work (``cudaDeviceSynchronize``)."""
        self.context.sync()

    @property
    def timeline(self) -> Timeline:
        """The engine's operation timeline (kernels, transfers, events).

        A property that is also callable (``Timeline.__call__`` returns
        itself), so the canonical ``sess.timeline()`` spelling and the
        legacy ``rt.timeline`` attribute both work on every session."""
        return self.engine.timeline

    def metrics(self) -> SessionMetrics:
        """Execution counters so far (no synchronization is forced)."""
        coherence = self.context.coherence
        if isinstance(self.context, MultiGpuExecutionContext):
            per_device = tuple(self.context.device_kernel_counts())
        else:
            per_device = (len(self.engine.timeline.kernels()),)
        return SessionMetrics(
            gpus=self.gpus,
            makespan=self.engine.timeline.makespan,
            host_clock=self.engine.clock,
            kernels_launched=self.context.kernel_count,
            device_kernel_counts=per_device,
            transfer_ops=coherence.transfer_ops,
            migrated_bytes=coherence.migrated_bytes_total,
            fault_bytes=coherence.fault_bytes_total,
            writeback_bytes=coherence.writeback_bytes_total,
            coalesced_transfers=coherence.coalesced_transfers,
            counters=self.counters(),
        )

    def counters(self) -> dict:
        """Flat namespaced counter snapshot across this session's layers
        (``engine.*`` from the simulator core, ``coherence.*`` from the
        *current* context's coherence engine)."""
        merged = CounterRegistry()
        engine_counters = getattr(self.engine, "counters", None)
        if engine_counters is not None:
            merged.merge(engine_counters)
        merged.merge(self.context.coherence.counters)
        return merged.snapshot()

    @property
    def tracer(self) -> Tracer:
        """The tracer this session's engine reports to."""
        return getattr(self.engine, "tracer", NULL_TRACER)

    @property
    def clock(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.clock

    @property
    def dag(self):
        return self.context.dag

    @property
    def history(self):
        """Per-kernel execution history (section IV-A); use
        ``history.recommend_block_size(...)`` for the section-VI
        block-size heuristic."""
        return self.context.history

    def elapsed(self) -> float:
        """Device execution time so far: first scheduling to last
        completion (the paper's execution-time definition)."""
        return self.engine.timeline.makespan

    def reset_measurement(self) -> None:
        """Clear the timeline (e.g. after a warm-up iteration)."""
        self.sync()
        self.engine.timeline.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = (
            f"{self.gpus}x {self.spec.name}"
            if self.gpus > 1
            else self.spec.name
        )
        return f"<Session {kind} {self.config.execution.value}>"
