"""Cluster-level placement: which *node* serves an admitted graph.

This is the top of the three-level placement stack — the k8s-style
scheduler of the ROADMAP item.  The cluster admits tenant requests once
globally, this module picks the node, the node's
:class:`~repro.serve.fleet.GpuFleet` policy picks the slot, and the
slot's in-slot :class:`~repro.core.policies.DevicePlacementPolicy`
picks the GPU per kernel.

Policies (:class:`ClusterPlacementPolicy`):

* ``BIN_PACK`` — fill nodes in id order, moving on only when a node's
  per-round budget (``pack_per_gpu`` × its GPUs) is consumed.  The
  consolidating scheduler: fewest nodes touched, best capture/warmth
  locality per node, most headroom left for later arrivals.
* ``SPREAD`` — level load: cheapest (per-GPU staged bytes, node clock,
  id) wins.  The latency scheduler: every node's queue stays shallow.
* ``AFFINITY`` — tenant-sticky and warm-capture-aware: a tenant keeps
  landing on its node while that node admits; a new (or displaced)
  tenant prefers a node whose capture cache already holds a plan for
  the graph's (topology, slot-shape) key, falling back to SPREAD.

Every key ends in the node id, so equal-cost nodes resolve in id order
and placements replay deterministically — the same property the slot
and in-slot levels already guarantee.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError
from repro.serve.request import GraphRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import ClusterNode


class ClusterPlacementPolicy(enum.Enum):
    """How the cluster scheduler maps admitted graphs to nodes."""

    BIN_PACK = "bin-pack"
    SPREAD = "spread"
    AFFINITY = "affinity"

    @classmethod
    def coerce(
        cls, value: "ClusterPlacementPolicy | str"
    ) -> "ClusterPlacementPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ConfigError(
                f"unknown cluster policy {value!r}; choose from"
                f" {[p.value for p in cls]}"
            ) from None


class ClusterScheduler:
    """Stateful node chooser: per-round load tallies + tenant affinity.

    Load is tracked per placement *round* (the cluster places a wave of
    requests, drains every node, then starts the next wave), so the
    tallies describe exactly the work the nodes have not yet executed;
    between rounds the node clocks carry the history.
    """

    def __init__(
        self,
        policy: "ClusterPlacementPolicy | str" = (
            ClusterPlacementPolicy.SPREAD
        ),
        pack_per_gpu: int = 8,
    ) -> None:
        self.policy = ClusterPlacementPolicy.coerce(policy)
        if pack_per_gpu <= 0:
            raise ConfigError(
                f"pack_per_gpu must be positive, got {pack_per_gpu}"
            )
        self.pack_per_gpu = pack_per_gpu
        #: requests assigned this round, by node index
        self._assigned: dict[int, int] = {}
        #: staged bytes assigned this round, by node index
        self._assigned_bytes: dict[int, int] = {}
        #: tenant -> node index (AFFINITY stickiness; survives rounds)
        self.affinity: dict[str, int] = {}

    def reset_round(self) -> None:
        """Forget this round's tallies (the nodes executed the work —
        their clocks now carry it)."""
        self._assigned.clear()
        self._assigned_bytes.clear()

    def assigned(self, node_index: int) -> int:
        return self._assigned.get(node_index, 0)

    def place(
        self, request: GraphRequest, nodes: "Sequence[ClusterNode]"
    ) -> "ClusterNode":
        """Pick the node that serves ``request`` and record the load."""
        if not nodes:
            raise ValueError("no eligible nodes to place on")
        node = self._choose(request, nodes)
        self._assigned[node.index] = self._assigned.get(
            node.index, 0
        ) + 1
        self._assigned_bytes[node.index] = (
            self._assigned_bytes.get(node.index, 0)
            + request.graph.total_bytes
        )
        if self.policy is ClusterPlacementPolicy.AFFINITY:
            self.affinity[request.tenant] = node.index
        return node

    # -- policy kernels -----------------------------------------------------

    def _choose(
        self, request: GraphRequest, nodes: "Sequence[ClusterNode]"
    ) -> "ClusterNode":
        if self.policy is ClusterPlacementPolicy.BIN_PACK:
            for node in nodes:  # nodes arrive in id order
                budget = self.pack_per_gpu * node.total_gpus
                if self._assigned.get(node.index, 0) < budget:
                    return node
            # Every budget consumed: densest-first overflow, still
            # deterministic (per-GPU count, then id).
            return min(
                nodes,
                key=lambda n: (
                    self._assigned.get(n.index, 0) / n.total_gpus,
                    n.index,
                ),
            )
        if self.policy is ClusterPlacementPolicy.AFFINITY:
            sticky = self.affinity.get(request.tenant)
            if sticky is not None:
                for node in nodes:
                    if node.index == sticky:
                        return node
            warm = [n for n in nodes if n.warm_for(request.graph)]
            if warm:
                return self._spread(warm)
            return self._spread(nodes)
        return self._spread(nodes)

    def _spread(
        self, nodes: "Sequence[ClusterNode]"
    ) -> "ClusterNode":
        return min(
            nodes,
            key=lambda n: (
                self._assigned_bytes.get(n.index, 0) / n.total_gpus,
                n.clock,
                n.index,
            ),
        )


__all__ = ["ClusterPlacementPolicy", "ClusterScheduler"]
