"""Multi-node serving: a cluster of fleets behind one admission point.

The top layer of the stack.  A :class:`Cluster` owns N
:class:`ClusterNode` s — each a full, private
:class:`~repro.serve.service.SchedulerService` over a real
:class:`~repro.serve.fleet.GpuFleet` with its own topology — joined by
a :class:`~repro.cluster.network.ClusterNetwork` whose host-to-host
links price cross-node input staging and result readback on the same
virtual timeline the intra-node simulators advance.

Tenant requests are admitted **once, globally** (the cluster's own
admission queue), placed on nodes by the
:class:`~repro.cluster.scheduler.ClusterScheduler`, then flow through
the untouched single-node machinery: service-level slot placement,
batching, capture replay, in-slot device placement.  Placement runs in
synchronous rounds — place every queued request, drain every node in id
order, re-place what a downed node could not serve — so the whole run
is a pure function of (submissions, seed, fault plan) and replays
bit-identically.

Fault scope is lifted from slots to nodes (``node=`` specs in a
:class:`~repro.faults.FaultPlan`): a node-scoped CRASH / RESTART /
DEGRADE is translated into per-slot specs for that node's local plan
(the node's service already knows how to retry, back off and shed), a
DRAIN stops cluster placements while local work finishes, and a
TRANSFER_FAULT is consumed at *cluster* placement — the failed staging
attempt burns link time before the re-stage.  Work a downed node shed
or failed re-enters the global queue with exponential backoff and lands
on survivors, so every submission still reaches a terminal status.

Correctness invariant (same as single-node serving, enforced by the
cluster tests): every COMPLETED request's outputs are bit-identical to
executing its graph alone on a private serial runtime.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults import FaultKind, FaultPlan, FaultSpec, SlotLifecycle
from repro.gpusim.specs import GPUSpec
from repro.metrics.service import ServiceMetrics, compute_service_metrics
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.cluster.network import ClusterNetwork, LinkSpec
from repro.cluster.scheduler import (
    ClusterPlacementPolicy,
    ClusterScheduler,
)
from repro.serve.admission import make_queue
from repro.serve.fleet import parse_fleet_spec
from repro.serve.request import (
    GraphRequest,
    GraphResult,
    RequestStatus,
    TaskGraph,
)
from repro.serve.service import (
    SchedulerService,
    ServeConfig,
    ServiceReport,
    fingerprint_results,
)


def parse_cluster_spec(text: str) -> list[list[int]]:
    """Parse a CLI cluster spec like ``"2,2,1,1|4|2,2"``: ``|``-separated
    per-node fleet topologies, each a :func:`parse_fleet_spec` spec."""
    segments = [s for s in text.split("|") if s.strip()]
    if not segments:
        raise ConfigError(
            f"cluster spec {text!r} needs at least one node topology,"
            " e.g. '2,2,1,1|4|2,2'"
        )
    return [parse_fleet_spec(segment) for segment in segments]


def _node_slot_plan(
    plan: FaultPlan, node: int, slots: int
) -> FaultPlan | None:
    """Translate a node's node-scoped specs into the slot-scoped plan
    its local service executes.

    CRASH / RESTART / DEGRADE strike every slot of the node — the
    machine died, came back, or throttled as a whole.  DRAIN and
    TRANSFER_FAULT stay cluster-level: a drain only stops *placements*
    (local in-flight work finishes untouched), and a transfer fault is
    a staging failure on the host-to-host link, not inside the node.
    """
    specs: list[FaultSpec] = []
    for spec in plan.for_node(node):
        if spec.kind in (
            FaultKind.CRASH, FaultKind.RESTART, FaultKind.DEGRADE
        ):
            specs.extend(
                FaultSpec(
                    spec.kind,
                    j,
                    spec.at,
                    factor=spec.factor,
                    warmup=spec.warmup,
                )
                for j in range(slots)
            )
    return FaultPlan(specs=tuple(specs)) if specs else None


@dataclass
class ClusterConfig:
    """Configuration of one :class:`Cluster`."""

    #: node-placement policy (see :class:`ClusterPlacementPolicy`)
    policy: "ClusterPlacementPolicy | str" = (
        ClusterPlacementPolicy.SPREAD
    )
    #: host-to-host link model or preset name (see
    #: :data:`~repro.cluster.network.INTERCONNECTS`)
    interconnect: "LinkSpec | str" = "ethernet-100g"
    #: node-scoped fault plan (or its DSL form, e.g.
    #: ``"crash:node=1,at=2e-3"``); None runs fault-free
    faults: "FaultPlan | str | None" = None
    #: BIN_PACK per-round budget: requests per node GPU before spilling
    pack_per_gpu: int = 8
    #: template for every node's local service configuration
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        self.policy = ClusterPlacementPolicy.coerce(self.policy)
        if isinstance(self.faults, str):
            self.faults = FaultPlan.parse(self.faults)
        if self.faults is not None and self.faults.slot_scoped():
            raise ConfigError(
                "a cluster fault plan must be node-scoped (node=...);"
                " put slot-scoped specs on a single fleet's ServeConfig"
            )
        if self.serve.faults is not None:
            raise ConfigError(
                "the cluster's ServeConfig template cannot carry its own"
                " fault plan; use ClusterConfig.faults with node= scope"
            )


class ClusterNode:
    """One node: a private scheduler service + fleet, plus the node's
    own health lifecycle (the slot state machine, lifted one level)."""

    def __init__(
        self,
        index: int,
        topology: list[int],
        gpu: "str | GPUSpec",
        config: ClusterConfig,
        tracer: Tracer,
    ) -> None:
        self.index = index
        self.topology = list(topology)
        slot_plan = (
            _node_slot_plan(config.faults, index, len(topology))
            if config.faults is not None
            else None
        )
        self.service = SchedulerService(
            fleet_topology=self.topology,
            gpu=gpu,
            config=dataclasses.replace(config.serve, faults=slot_plan),
            tracer=tracer,
        )
        # Per-device export tracks carry the node, not just the slot.
        for j, slot in enumerate(self.service.fleet.slots):
            slot.session.engine._obs_name = f"node{index}/slot{j}"
        node_specs = (
            config.faults.for_node(index)
            if config.faults is not None
            else ()
        )
        #: the node's admission lifecycle (DRAIN/CRASH stop placements)
        self.lifecycle = SlotLifecycle(index, node_specs)
        #: how many results the cluster has already collected
        self.result_cursor = 0

    @property
    def fleet(self):
        return self.service.fleet

    @property
    def total_gpus(self) -> int:
        return self.fleet.total_gpus

    @property
    def clock(self) -> float:
        """Virtual time by which the node's fleet has drained."""
        return self.fleet.makespan

    @property
    def admitting(self) -> bool:
        return self.lifecycle.admitting

    def advance_lifecycle(self, now: float):
        """Advance the node lifecycle monotonically: a node that has
        simulated to its own clock has experienced every event up to
        it, and lifecycles never rewind."""
        return self.lifecycle.advance(
            max(now, self.lifecycle.now, self.clock)
        )

    def warm_for(self, graph: TaskGraph) -> bool:
        """Whether this node's capture cache already holds a plan for
        ``graph`` on any of its slot shapes (AFFINITY warmth)."""
        cache = self.service.cache
        return any(
            cache.peek(graph, slot.shape_key)
            for slot in self.fleet.slots
        )

    def describe(self) -> str:
        return f"node{self.index}:{self.fleet.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusterNode {self.index} {self.fleet.describe()}"
            f" {self.lifecycle.state.value}>"
        )


@dataclass
class ClusterReport:
    """Everything a cluster run produced, rolled up across nodes."""

    results: list[GraphResult]
    metrics: ServiceMetrics
    #: node index -> that node's own ServiceReport (absent for nodes
    #: that never served a request)
    per_node: dict[int, ServiceReport]
    #: node descriptions, id order (topology survives even if a node
    #: served nothing)
    nodes: list[str]
    config: ClusterConfig
    #: flat roll-up: ``cluster.*`` (placement + network) plus every
    #: node's ``serve.* / faults.* / engine.* / coherence.*``
    counters: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Canonical replay-determinism digest (results incl. node
        placements + the full counter roll-up)."""
        return fingerprint_results(self.results, self.counters)

    def render(self) -> str:
        """ASCII summary (the ``serve-bench --cluster`` CLI output)."""
        m = self.metrics
        link = self.config.interconnect
        link_name = link if isinstance(link, str) else link.name
        staged = self.counters.get("cluster.net_stage_bytes", 0)
        readback = self.counters.get("cluster.net_readback_bytes", 0)
        lines = [
            "Cluster serving report",
            "======================",
            f"policy={self.config.policy.value}"
            f"  interconnect={link_name}",
            "nodes: " + "  ".join(self.nodes),
            f"requests={m.completed}  tenants={m.tenants}"
            f"  makespan={m.makespan * 1e3:.3f} ms"
            f"  throughput={m.throughput_rps:.1f} req/s",
        ]
        if m.shed or m.timed_out or m.failed:
            lines.append(
                f"degraded: shed={m.shed}  timed-out={m.timed_out}"
                f"  failed={m.failed}"
                f"  (replacements="
                f"{self.counters.get('cluster.replacements', 0)})"
            )
        lines += [
            f"latency ms: p50={m.latency.p50 * 1e3:.3f}"
            f"  p95={m.latency.p95 * 1e3:.3f}"
            f"  p99={m.latency.p99 * 1e3:.3f}"
            f"  worst={m.latency.worst * 1e3:.3f}",
            f"network: ops={self.counters.get('cluster.net_ops', 0):.0f}"
            f"  bytes={self.counters.get('cluster.net_bytes', 0):.0f}"
            f"  staged={staged:.0f}  readback={readback:.0f}",
            "per-node requests: " + "  ".join(
                f"node{i}={len(r.results)}"
                for i, r in sorted(self.per_node.items())
            ),
        ]
        return "\n".join(lines)


class Cluster:
    """N serving nodes behind one global admission queue."""

    def __init__(
        self,
        topologies: "str | list[list[int]]",
        *,
        gpu: "str | GPUSpec" = "GTX 1660 Super",
        config: ClusterConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        if isinstance(topologies, str):
            topologies = parse_cluster_spec(topologies)
        if not topologies:
            raise ConfigError("a cluster needs at least one node")
        if self.config.faults is not None:
            top = self.config.faults.max_node()
            if top >= len(topologies):
                raise ConfigError(
                    f"fault plan targets node {top} but the cluster has"
                    f" only {len(topologies)} node(s)"
                )
        self.tracer = current_tracer() if tracer is None else tracer
        self.counters = CounterRegistry()
        self.network = ClusterNetwork(
            self.config.interconnect, counters=self.counters
        )
        self.scheduler = ClusterScheduler(
            self.config.policy, pack_per_gpu=self.config.pack_per_gpu
        )
        self.nodes = [
            ClusterNode(i, topo, gpu, self.config, self.tracer)
            for i, topo in enumerate(topologies)
        ]
        self.queue = make_queue(self.config.serve.admission)
        self.results: list[GraphResult] = []
        #: cluster-owned request-id allocation (node services never
        #: allocate — they receive whole request objects), so
        #: concurrent clusters/services cannot interleave ids
        self._request_ids = itertools.count(1)
        #: every request the cluster admitted, by id (re-placement and
        #: readback need the graph back from a result)
        self._requests: dict[int, GraphRequest] = {}
        #: terminal record per request id; re-placements overwrite
        self._final: dict[int, GraphResult] = {}
        self._priorities: dict[str, int] = {}
        self._now = 0.0
        self._injected: set[int] = set()
        self._c_placements = self.counters.counter("cluster.placements")
        self._c_replacements = self.counters.counter(
            "cluster.replacements"
        )
        self._c_net_retries = self.counters.counter(
            "cluster.net_retries"
        )
        self._c_shed = self.counters.counter("cluster.shed")

    # -- tenant/submission API ---------------------------------------------

    def register_tenant(self, name: str, priority: int = 0) -> None:
        self._priorities[name] = priority

    def submit(
        self,
        tenant: str,
        graph: TaskGraph,
        priority: int | None = None,
        arrival_time: float = 0.0,
        deadline: float | None = None,
    ) -> int:
        """Admit one task graph globally; returns the request id."""
        if deadline is not None and deadline < arrival_time:
            raise ValueError(
                f"deadline {deadline:g} precedes arrival {arrival_time:g}"
            )
        request = GraphRequest(
            request_id=next(self._request_ids),
            tenant=tenant,
            graph=graph,
            priority=(
                self._priorities.get(tenant, 0)
                if priority is None
                else priority
            ),
            arrival_time=arrival_time,
            deadline=deadline,
        )
        self._requests[request.request_id] = request
        self.queue.push(request)
        self.counters.set_max(
            "cluster.queue_depth_peak", len(self.queue)
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "admit",
                track="cluster",
                vt=arrival_time,
                tenant=tenant,
                request=request.request_id,
                queue_depth=len(self.queue),
            )
        return request.request_id

    # -- the cluster loop ---------------------------------------------------

    def run(self) -> ClusterReport:
        """Serve every admitted request to a terminal status, price the
        result readbacks, and roll up the report."""
        try:
            while len(self.queue):
                self._placement_round()
                self._drain_round()
                self.scheduler.reset_round()
            self._readback()
            # Final advance so every injected node fault is counted
            # even if it struck after the queue drained.
            for node in self.nodes:
                made = node.advance_lifecycle(self._now)
                self._count_node_transitions(node, made)
            return self.report()
        finally:
            self.close()

    def close(self) -> None:
        """Release every node service's execution-strategy resources
        (worker processes under ``serve.parallel="process"``);
        idempotent."""
        for node in self.nodes:
            node.service.close()

    def _placement_round(self) -> None:
        """Pop every queued request in admission order, stage its inputs
        over the network and enqueue it on the chosen node."""
        while len(self.queue):
            head = self.queue.pop()
            assert head is not None
            now = max(self._now, head.dispatch_floor)
            for node in self.nodes:
                made = node.advance_lifecycle(now)
                self._count_node_transitions(node, made)
            eligible = [n for n in self.nodes if n.admitting]
            if not eligible:
                revive = self._earliest_revival(now)
                if revive is None:
                    # Permanent cluster-wide outage: shed the head and
                    # everything still queued instead of deadlocking.
                    self._record_dropped(head, now, RequestStatus.SHED)
                    while len(self.queue):
                        r = self.queue.pop()
                        assert r is not None
                        self._record_dropped(
                            r, now, RequestStatus.SHED
                        )
                    return
                now = max(now, revive)
                for node in self.nodes:
                    made = node.advance_lifecycle(now)
                    self._count_node_transitions(node, made)
                eligible = [n for n in self.nodes if n.admitting]
                assert eligible, "revived node must admit"
            self._now = now
            if head.deadline is not None and now > head.deadline:
                self._record_dropped(head, now, RequestStatus.TIMEOUT)
                continue
            node = self.scheduler.place(head, eligible)
            self._c_placements.value += 1
            staged = self._stage(node, head, now)
            head.not_before = max(head.not_before, staged)
            if self.tracer.enabled:
                self.tracer.instant(
                    "place",
                    track="cluster",
                    vt=now,
                    policy=self.scheduler.policy.value,
                    tenant=head.tenant,
                    request=head.request_id,
                    node=node.index,
                    staged=staged,
                )
            node.service.enqueue(head)

    def _stage(
        self, node: ClusterNode, request: GraphRequest, now: float
    ) -> float:
        """Move the request's host inputs onto the node; returns the
        virtual arrival time (the request's new dispatch floor)."""
        nbytes = request.graph.input_bytes
        if node.lifecycle.take_transfer_fault(now):
            # The first staging attempt fails on the wire: its link
            # time is burned, then the transfer is retried whole.
            wasted = self.network.transfer(node.index, nbytes, now)
            self._c_net_retries.value += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "stage-retry",
                    track="cluster",
                    vt=now,
                    node=node.index,
                    request=request.request_id,
                )
            return self.network.transfer(node.index, nbytes, wasted)
        return self.network.transfer(node.index, nbytes, now)

    def _drain_round(self) -> None:
        """Drain every node in id order, collect the new results, and
        re-queue work a non-admitting node shed or failed."""
        for node in self.nodes:
            node.service.drain()
            fresh = node.service.results[node.result_cursor:]
            node.result_cursor = len(node.service.results)
            made = node.advance_lifecycle(self._now)
            self._count_node_transitions(node, made)
            for result in fresh:
                result.node_index = node.index
                if (
                    result.status
                    in (RequestStatus.SHED, RequestStatus.FAILED)
                    and not node.admitting
                    and self._replace(result, node)
                ):
                    continue
                self._final[result.request_id] = result

    def _replace(
        self, result: GraphResult, node: ClusterNode
    ) -> bool:
        """Re-queue a request its (now non-admitting) node could not
        serve; False once its retry budget is exhausted (the node's
        terminal record stands)."""
        request = self._requests[result.request_id]
        request.attempts += 1
        if request.attempts > self.config.serve.max_retries:
            return False
        backoff = (
            self.config.serve.retry_backoff_us
            * 1e-6
            * (2 ** (request.attempts - 1))
        )
        request.not_before = max(
            request.not_before, result.finish_time + backoff
        )
        request.last_slot = None
        self._c_replacements.value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "replace",
                track="cluster",
                vt=result.finish_time,
                tenant=request.tenant,
                request=request.request_id,
                node=node.index,
                attempt=request.attempts,
            )
        self.queue.push(request)
        return True

    def _readback(self) -> None:
        """Price every completed request's result readback over the
        network, in deterministic (finish, id) order; a readback that
        lands past the deadline turns the request TIMEOUT."""
        completed = sorted(
            (
                r
                for r in self._final.values()
                if r.status is RequestStatus.COMPLETED
            ),
            key=lambda r: (r.finish_time, r.request_id),
        )
        for result in completed:
            request = self._requests[result.request_id]
            done = self.network.transfer(
                result.node_index,
                request.graph.output_bytes,
                result.finish_time,
                direction="out",
            )
            result.finish_time = done
            if request.deadline is not None and done > request.deadline:
                result.status = RequestStatus.TIMEOUT
                result.outputs = {}

    # -- fault plumbing -----------------------------------------------------

    def _earliest_revival(self, now: float) -> float | None:
        times = [
            t
            for n in self.nodes
            if (t := n.lifecycle.earliest_admit(now)) is not None
        ]
        return min(times) if times else None

    def _count_node_transitions(
        self, node: ClusterNode, made
    ) -> None:
        for t in made:
            if id(t.spec) not in self._injected:
                self._injected.add(id(t.spec))
                self.counters.counter(
                    "cluster.node_faults_injected"
                ).value += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "node-fault",
                    track="cluster",
                    vt=t.time,
                    node=node.index,
                    kind=t.spec.kind.value,
                    before=t.before.value,
                    after=t.after.value,
                )

    def _record_dropped(
        self, request: GraphRequest, now: float, status: RequestStatus
    ) -> None:
        """Terminal cluster-level drop: the request never reached (or
        never again reaches) a node."""
        if status is RequestStatus.SHED:
            self._c_shed.value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                status.value,
                track="cluster",
                vt=now,
                tenant=request.tenant,
                request=request.request_id,
            )
        self._final[request.request_id] = GraphResult(
            request_id=request.request_id,
            tenant=request.tenant,
            graph_name=request.graph.name,
            outputs={},
            arrival_time=request.arrival_time,
            start_time=now,
            finish_time=now,
            device_index=-1,
            batch_id=0,
            batch_size=1,
            replayed=False,
            status=status,
            attempts=request.attempts,
            node_index=-1,
        )

    # -- reporting ----------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max(n.clock for n in self.nodes)

    def counters_snapshot(self) -> dict:
        """Cluster-wide roll-up: ``cluster.*`` plus every node's own
        service snapshot (peaks keep their high watermark, everything
        else accumulates)."""
        merged = CounterRegistry()
        merged.merge(self.counters)
        for node in self.nodes:
            for name, value in node.service.counters_snapshot().items():
                if name.endswith("_peak"):
                    merged.set_max(name, value)
                else:
                    merged.counter(name).value += value
        return merged.snapshot()

    def report(self) -> ClusterReport:
        if not self._final:
            raise ValueError("no served requests to report on")
        self.results = sorted(
            self._final.values(), key=lambda r: r.request_id
        )
        per_node: dict[int, ServiceReport] = {
            node.index: node.service.report()
            for node in self.nodes
            if node.service.results
        }
        metrics = compute_service_metrics(
            self.results,
            [
                slot.engine.timeline
                for node in self.nodes
                for slot in node.fleet.slots
            ],
            batches=sum(n.service._batches for n in self.nodes),
            capture_hits=sum(
                n.service.cache.hits for n in self.nodes
            ),
            capture_misses=sum(
                n.service.cache.misses for n in self.nodes
            ),
        )
        return ClusterReport(
            results=list(self.results),
            metrics=metrics,
            per_node=per_node,
            nodes=[n.describe() for n in self.nodes],
            config=self.config,
            counters=self.counters_snapshot(),
        )


__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterNode",
    "ClusterReport",
    "parse_cluster_spec",
]
