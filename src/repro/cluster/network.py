"""The simulated host-to-host cluster interconnect.

Intra-node data movement is priced by the coherence engine over the
slot's PCIe/NVLink model; *cross-node* placement pays a different
price — host-to-host links are slower, shared and have real latency.
:class:`ClusterNetwork` reuses the coherence engine's transfer-pricing
idiom (``latency + bytes / bandwidth``, serialized per link direction)
one layer up: staging a graph's input arrays onto its node and reading
its outputs back both land on the virtual timeline, so a scheduler that
ignores locality visibly loses.

The model is a star: every node hangs off the submitting host by one
full-duplex link of the chosen :class:`LinkSpec`.  Each ``(node,
direction)`` pair keeps a busy cursor — two transfers to the same node
serialize, transfers to different nodes (or opposite directions)
overlap — which is exactly the per-channel DMA-engine treatment the
intra-node simulator applies to HtoD/DtoH copies.

Everything is a pure function of submission order and virtual time:
replaying a run replays every transfer bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.counters import CounterRegistry


@dataclass(frozen=True)
class LinkSpec:
    """One host-to-host link model."""

    name: str
    #: peak bandwidth in GB/s (``float("inf")`` = free transfers)
    bandwidth_gbs: float
    #: one-way latency in seconds, paid once per transfer
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigError(
                f"link bandwidth must be positive, got"
                f" {self.bandwidth_gbs}"
            )
        if self.latency_s < 0:
            raise ConfigError(
                f"link latency must be >= 0, got {self.latency_s}"
            )

    def serialize_time(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` (no latency, no queueing)."""
        if self.bandwidth_gbs == float("inf"):
            return 0.0
        return nbytes / (self.bandwidth_gbs * 1e9)


#: Named interconnect presets for the ``--interconnect`` axis.  The
#: ``loopback`` link is free — it makes a cluster run's *timeline*
#: comparable to single-fleet serving while keeping placement behaviour.
INTERCONNECTS: dict[str, LinkSpec] = {
    "ethernet-10g": LinkSpec("ethernet-10g", 1.25, 50e-6),
    "ethernet-100g": LinkSpec("ethernet-100g", 12.5, 10e-6),
    "infiniband-hdr": LinkSpec("infiniband-hdr", 25.0, 1.5e-6),
    "loopback": LinkSpec("loopback", float("inf"), 0.0),
}


def resolve_interconnect(link: "LinkSpec | str") -> LinkSpec:
    """A preset name or an explicit spec -> the spec."""
    if isinstance(link, LinkSpec):
        return link
    spec = INTERCONNECTS.get(link)
    if spec is None:
        raise ConfigError(
            f"unknown interconnect {link!r}; choose from"
            f" {sorted(INTERCONNECTS)}"
        )
    return spec


class ClusterNetwork:
    """Star-topology host-to-host network with per-link-direction
    serialization and priced, counted transfers."""

    def __init__(
        self,
        link: "LinkSpec | str" = "ethernet-100g",
        counters: CounterRegistry | None = None,
    ) -> None:
        self.link = resolve_interconnect(link)
        self.counters = counters if counters is not None else (
            CounterRegistry()
        )
        #: (node, direction) -> virtual time the link half frees up
        self._free: dict[tuple[int, str], float] = {}
        self._c_bytes = self.counters.counter("cluster.net_bytes")
        self._c_ops = self.counters.counter("cluster.net_ops")
        self._c_stage = self.counters.counter("cluster.net_stage_bytes")
        self._c_readback = self.counters.counter(
            "cluster.net_readback_bytes"
        )

    def busy_until(self, node: int, direction: str = "in") -> float:
        return self._free.get((node, direction), 0.0)

    def transfer(
        self, node: int, nbytes: int, now: float, direction: str = "in"
    ) -> float:
        """Price one transfer; returns the virtual arrival time.

        ``direction="in"`` stages request inputs host->node,
        ``"out"`` reads results back node->host.  The transfer starts
        at ``max(now, link free)``, pays latency once plus wire time,
        and occupies its link half for the wire time (latency is on the
        wire, not the NIC — back-to-back transfers pipeline behind it).
        Zero-byte transfers still pay latency: placement control
        traffic is not free, and a graph with no host inputs still
        round-trips its admission.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {nbytes}")
        key = (node, direction)
        start = max(now, self._free.get(key, 0.0))
        serialize = self.link.serialize_time(nbytes)
        self._free[key] = start + serialize
        done = start + self.link.latency_s + serialize
        self._c_bytes.value += nbytes
        self._c_ops.value += 1
        if direction == "in":
            self._c_stage.value += nbytes
        else:
            self._c_readback.value += nbytes
        return done


__all__ = [
    "ClusterNetwork",
    "INTERCONNECTS",
    "LinkSpec",
    "resolve_interconnect",
]
