"""Multi-node serving: a cluster of fleets over a simulated network.

The top layer of the stack — cluster → node → fleet → slot/Session →
engine.  See :mod:`repro.cluster.cluster` for the serving loop,
:mod:`repro.cluster.network` for the host-to-host link model and
:mod:`repro.cluster.scheduler` for the node-placement policies.
"""

from repro.cluster.cluster import (
    Cluster,
    ClusterConfig,
    ClusterNode,
    ClusterReport,
    parse_cluster_spec,
)
from repro.cluster.network import (
    INTERCONNECTS,
    ClusterNetwork,
    LinkSpec,
    resolve_interconnect,
)
from repro.cluster.scheduler import (
    ClusterPlacementPolicy,
    ClusterScheduler,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterNetwork",
    "ClusterNode",
    "ClusterPlacementPolicy",
    "ClusterReport",
    "ClusterScheduler",
    "INTERCONNECTS",
    "LinkSpec",
    "parse_cluster_spec",
    "resolve_interconnect",
]
