"""Hand-tuned CUDA-events baseline.

Direct multi-stream execution with full manual control over data
movement — the paper's strongest baseline, built "to have full control
over data movement and simulate CUDA Graphs' performance if it supported
data prefetching".  Per-kernel launch overhead is paid on every launch
(nothing is amortized), but the programmer prefetches explicitly and
places every kernel on exactly the stream a skilled CUDA developer
would.
"""

from __future__ import annotations

from typing import Any

from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import KernelOp
from repro.gpusim.stream import SimEvent, SimStream
from repro.kernels.kernel import Kernel, KernelLaunch, normalize_dim
from repro.kernels.profile import combine_resources
from repro.memory.array import DeviceArray
from repro.memory.coherence import CoherenceEngine, MovementPolicy

#: Host cost of one kernel launch through the driver API.
LAUNCH_OVERHEAD_US = 5.0


class HandTunedScheduler:
    """Expert-written host code: explicit streams, events and prefetch.

    The expert also gets the cross-stream prefetch hazard right: a
    kernel reading an array whose migration was issued on a *different*
    stream waits on the migration's event (the migration tracker), just
    like the automatic scheduler does.
    """

    def __init__(self, engine: SimEngine) -> None:
        self.engine = engine
        self._streams: list[SimStream] = []
        # Explicit prefetches come from the programmer; anything they
        # forget falls back to lazy movement (faults on Pascal+, eager
        # copies on Maxwell) — same rules as every other execution mode.
        self.coherence = CoherenceEngine(
            engine, policy=MovementPolicy.PAGE_FAULT
        )

    # -- stream / event plumbing -------------------------------------------

    def stream(self) -> SimStream:
        s = self.engine.create_stream(label=f"ht-{len(self._streams)}")
        self._streams.append(s)
        return s

    def record_event(self, stream: SimStream) -> SimEvent:
        return self.engine.record_event(stream)

    def wait_event(self, stream: SimStream, event: SimEvent) -> None:
        self.engine.wait_event(stream, event)

    def sync(self) -> None:
        self.engine.sync_all()

    # -- data movement ------------------------------------------------------

    def prefetch(self, array: DeviceArray, stream: SimStream) -> None:
        """``cudaMemPrefetchAsync``: move a stale array to the device."""
        self.coherence.prefetch(array, stream)

    # -- kernel launches --------------------------------------------------------

    def launch(
        self,
        stream: SimStream,
        kernel: Kernel,
        grid: int | tuple[int, ...],
        block: int | tuple[int, ...],
        args: tuple[Any, ...],
    ) -> None:
        """Launch ``kernel`` on ``stream``.

        Arrays the programmer forgot to prefetch fall back to page
        faults (Pascal+) or eager copies (Maxwell) — same rules as every
        other execution mode.
        """
        self.engine.charge_host_time(LAUNCH_OVERHEAD_US * 1e-6)
        launch = kernel.bind_args(tuple(args))
        launch = KernelLaunch(
            kernel=launch.kernel,
            grid=normalize_dim(grid),
            block=normalize_dim(block),
            args=launch.args,
            array_args=launch.array_args,
            scalar_args=launch.scalar_args,
        )
        plan = self.coherence.acquire(
            list(launch.array_args), stream, label=launch.label
        )
        resources = launch.resources()
        if plan.fault_bytes > 0:
            resources = combine_resources(resources, plan.fault_bytes)
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        op.info["reads"] = frozenset(
            id(a) for a, k in launch.array_args if k.reads
        )
        op.info["writes"] = frozenset(
            id(a) for a, k in launch.array_args if k.writes
        )
        op.info["array_names"] = {
            id(a): a.name for a, _ in launch.array_args
        }
        self.coherence.release(plan, op)
        self.engine.submit(stream, op)
