"""Static stream planning shared by the baseline executors.

Given the dependency structure of a static kernel sequence, assign each
node a stream and derive the cross-stream event waits — the schedule a
skilled CUDA programmer writes by hand (the Fig. 6 coloring):

* the first child of a node inherits its stream (no event needed);
* otherwise reuse a stream whose current tail is an *ancestor* of the
  node — work there is already ordered before us, so the stream is
  logically free (this is what keeps iterated pipelines like HITS on two
  streams instead of leaking one stream per iteration);
* otherwise open a new stream.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamPlanStep:
    """Planned placement for one node of a static schedule."""

    index: int
    stream: int
    waits: tuple[int, ...]
    record_event: bool


def plan_streams(parents_of: list[list[int]]) -> list[StreamPlanStep]:
    """Assign streams/events for nodes with the given parent lists.

    ``parents_of[i]`` holds indices ``< i`` (the list must be in
    topological/insertion order).
    """
    n = len(parents_of)
    stream_of: list[int] = [0] * n
    ancestors: list[set[int]] = [set() for _ in range(n)]
    children_seen = [0] * n
    tails: list[int | None] = []  # per stream: last node placed on it

    for i in range(n):
        for p in parents_of[i]:
            ancestors[i] |= ancestors[p]
            ancestors[i].add(p)

        stream = -1
        for p in parents_of[i]:
            if children_seen[p] == 0:
                stream = stream_of[p]
                break
        if stream < 0:
            # Reuse the oldest stream whose tail is already ordered
            # before this node; else open a new one.
            for s, tail in enumerate(tails):
                if tail is None or tail in ancestors[i]:
                    stream = s
                    break
            else:
                stream = len(tails)
                tails.append(None)

        # Stream FIFO ordering adds an implicit edge from the tail.
        tail = tails[stream]
        if tail is not None:
            ancestors[i] |= ancestors[tail]
            ancestors[i].add(tail)
        tails[stream] = i
        stream_of[i] = stream
        for p in parents_of[i]:
            children_seen[p] += 1

    steps: list[StreamPlanStep] = []
    needs_event = [False] * n
    waits_of: list[tuple[int, ...]] = []
    for i in range(n):
        waits = tuple(
            sorted(
                p
                for p in set(parents_of[i])
                if stream_of[p] != stream_of[i]
            )
        )
        waits_of.append(waits)
        for p in waits:
            needs_event[p] = True
    for i in range(n):
        steps.append(
            StreamPlanStep(
                index=i,
                stream=stream_of[i],
                waits=waits_of[i],
                record_event=needs_event[i],
            )
        )
    return steps
