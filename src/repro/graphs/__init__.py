"""Baselines: the C++ CUDA Graphs API and hand-tuned event scheduling.

Section V-D compares the GrCUDA scheduler against three hand-optimized
baselines, all re-implemented here on the simulator:

* **CUDA Graphs + manual dependencies** — the Graph API: nodes and edges
  specified explicitly, instantiated once, replayed cheaply.
* **CUDA Graphs + stream capture** — hand-optimized multi-stream host
  code with events, recorded into a graph via stream capture.
* **Hand-tuned CUDA events** — the same multi-stream schedule executed
  directly, with explicit data prefetching ("to simulate CUDA Graphs'
  performance if it supported data prefetching").

The first two cannot prefetch unified memory (the paper observes the
CUDA Graphs API "seems unable to perform" prefetching), which is what
GrCUDA's automatic prefetcher beats on Pascal+ GPUs.
"""

from repro.graphs.graph import (
    CudaGraph,
    ExecutableGraph,
    GraphNode,
    NodeKind,
)
from repro.graphs.capture import StreamCapture
from repro.graphs.handtuned import HandTunedScheduler

__all__ = [
    "CudaGraph",
    "ExecutableGraph",
    "GraphNode",
    "NodeKind",
    "StreamCapture",
    "HandTunedScheduler",
]
