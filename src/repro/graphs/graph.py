"""The CUDA Graphs API on the simulator.

Mirrors the C++ API shape: build a graph of kernel/memcpy nodes with
explicit dependencies (``cudaGraphAddKernelNode``), ``instantiate()``
once — computing the stream plan and amortizing setup — then ``launch()``
it many times with near-zero host overhead.

Unified-memory behaviour matches the paper's observation: a launched
graph does *not* prefetch; stale arrays reach the GPU through page
faults (Pascal+) or are moved eagerly ahead of each kernel (Maxwell,
which has no fault mechanism).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import KernelOp
from repro.gpusim.stream import SimEvent, SimStream
from repro.kernels.kernel import Kernel, KernelLaunch, normalize_dim
from repro.kernels.profile import combine_resources
from repro.memory.coherence import CoherenceEngine, MovementPolicy

_node_counter = itertools.count()

#: One-time host cost of launching an instantiated graph.  Tiny: the
#: whole point of CUDA Graphs is that per-kernel launch overhead is paid
#: at instantiation, not per launch.
GRAPH_LAUNCH_OVERHEAD_US = 3.0

#: One-time cost of building + instantiating a graph (section II notes
#: "initialization overheads due to graph creation"); amortized over many
#: launches in the paper's setup.
GRAPH_INSTANTIATE_OVERHEAD_US = 300.0


class NodeKind(enum.Enum):
    KERNEL = "kernel"
    EMPTY = "empty"


@dataclass
class GraphNode:
    """One node of a CUDA graph."""

    kind: NodeKind
    label: str
    launch: KernelLaunch | None = None
    deps: tuple["GraphNode", ...] = ()
    node_id: int = field(default_factory=lambda: next(_node_counter))
    # Filled by instantiate():
    stream_index: int = -1
    needs_event: bool = False

    def __hash__(self) -> int:
        return self.node_id


class CudaGraph:
    """A graph under construction (``cudaGraphCreate``)."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[GraphNode] = []
        self._node_set: set[int] = set()

    def add_kernel_node(
        self,
        kernel: Kernel,
        grid: int | tuple[int, ...],
        block: int | tuple[int, ...],
        args: tuple[Any, ...],
        deps: list[GraphNode] | tuple[GraphNode, ...] = (),
    ) -> GraphNode:
        """``cudaGraphAddKernelNode``: explicit dependencies, no capture."""
        launch = kernel.bind_args(tuple(args))
        launch = KernelLaunch(
            kernel=launch.kernel,
            grid=normalize_dim(grid),
            block=normalize_dim(block),
            args=launch.args,
            array_args=launch.array_args,
            scalar_args=launch.scalar_args,
        )
        return self._add(
            GraphNode(
                kind=NodeKind.KERNEL,
                label=kernel.name,
                launch=launch,
                deps=tuple(deps),
            )
        )

    def add_empty_node(
        self, deps: list[GraphNode] | tuple[GraphNode, ...] = ()
    ) -> GraphNode:
        """``cudaGraphAddEmptyNode``: a pure synchronization point."""
        return self._add(
            GraphNode(kind=NodeKind.EMPTY, label="empty", deps=tuple(deps))
        )

    def _add(self, node: GraphNode) -> GraphNode:
        for dep in node.deps:
            if dep.node_id not in self._node_set:
                raise GraphError(
                    f"dependency {dep.label!r} is not part of graph"
                    f" {self.name!r}"
                )
        self.nodes.append(node)
        self._node_set.add(node.node_id)
        return node

    def instantiate(self) -> "ExecutableGraph":
        """``cudaGraphInstantiate``: freeze the stream plan.

        Stream assignment uses the shared static planner (the same
        first-child-inherits / ancestor-reuse rules a skilled programmer
        applies — and that the paper's runtime scheduler converges to).
        Nodes with cross-stream children are flagged to record an event.
        """
        if not self.nodes:
            raise GraphError(f"graph {self.name!r} is empty")
        from repro.graphs.planner import plan_streams

        index_of = {n.node_id: i for i, n in enumerate(self.nodes)}
        parents_of = [
            [index_of[d.node_id] for d in n.deps] for n in self.nodes
        ]
        plan = plan_streams(parents_of)
        for node, step in zip(self.nodes, plan):
            node.stream_index = step.stream
            node.needs_event = step.record_event
        return ExecutableGraph(self)


class ExecutableGraph:
    """An instantiated graph, launchable many times (``cudaGraphLaunch``).

    The first launch on an engine charges the instantiation overhead;
    subsequent launches only pay the (tiny) replay cost — exactly the
    amortization the paper grants the CUDA Graphs baselines.
    """

    def __init__(self, graph: CudaGraph) -> None:
        self.graph = graph
        self.stream_count = 1 + max(n.stream_index for n in graph.nodes)
        self._engine_streams: dict[int, list[SimStream]] = {}
        # One coherence engine per sim engine, persistent across
        # launches: transitions commit at op completion, so a per-launch
        # engine would re-plan movement a still-in-flight previous
        # launch already has on the wire (launch() is asynchronous).
        self._engine_coherence: dict[int, CoherenceEngine] = {}
        self.launch_count = 0

    def _streams_for(self, engine: SimEngine) -> list[SimStream]:
        key = id(engine)
        if key not in self._engine_streams:
            self._engine_streams[key] = [
                engine.create_stream(label=f"{self.graph.name}-{i}")
                for i in range(self.stream_count)
            ]
            engine.charge_host_time(GRAPH_INSTANTIATE_OVERHEAD_US * 1e-6)
        return self._engine_streams[key]

    def launch(self, engine: SimEngine) -> None:
        """Replay the graph once on ``engine`` (asynchronous).

        A launched graph does not prefetch: data movement runs under the
        ``PAGE_FAULT`` policy (degrading to eager copies on pre-Pascal
        devices, where the coherence engine issues the shared-input
        copies on the first reader's stream and orders later readers on
        other streams behind the migration event — the same hazard every
        other mode faces).
        """
        streams = self._streams_for(engine)
        engine.charge_host_time(GRAPH_LAUNCH_OVERHEAD_US * 1e-6)
        self.launch_count += 1
        events: dict[int, SimEvent] = {}
        coherence = self._engine_coherence.get(id(engine))
        if coherence is None:
            coherence = CoherenceEngine(
                engine, policy=MovementPolicy.PAGE_FAULT
            )
            self._engine_coherence[id(engine)] = coherence
        for node in self.graph.nodes:
            stream = streams[node.stream_index]
            for dep in node.deps:
                if dep.stream_index != node.stream_index:
                    engine.wait_event(stream, events[dep.node_id])
            if node.kind is NodeKind.KERNEL:
                assert node.launch is not None
                self._submit_kernel(engine, stream, node.launch, coherence)
            if node.needs_event:
                events[node.node_id] = engine.record_event(
                    stream, label=f"g:{node.label}"
                )

    @staticmethod
    def _submit_kernel(
        engine: SimEngine,
        stream: SimStream,
        launch: KernelLaunch,
        coherence: CoherenceEngine,
    ) -> None:
        """Submit one kernel with graph-style (prefetch-less) UM."""
        plan = coherence.acquire(
            list(launch.array_args), stream, label=launch.label
        )
        resources = launch.resources()
        if plan.fault_bytes > 0:
            resources = combine_resources(resources, plan.fault_bytes)
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        op.info["reads"] = frozenset(
            id(a) for a, k in launch.array_args if k.reads
        )
        op.info["writes"] = frozenset(
            id(a) for a, k in launch.array_args if k.writes
        )
        op.info["array_names"] = {
            id(a): a.name for a, _ in launch.array_args
        }
        coherence.release(plan, op)
        engine.submit(stream, op)
