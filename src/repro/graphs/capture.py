"""Stream capture: record multi-stream host code into a CUDA graph.

``cudaStreamBeginCapture`` semantics: operations issued to capturing
streams are recorded — not executed — together with their cross-stream
event dependencies, producing a :class:`CudaGraph`.  This is the paper's
second baseline: "stream-capture to wrap hand-optimized multi-stream
scheduling synchronized with CUDA events".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError
from repro.graphs.graph import CudaGraph, GraphNode
from repro.kernels.kernel import Kernel

_capture_ids = itertools.count()


@dataclass
class CaptureStream:
    """A stream handle inside a capture region."""

    index: int
    last_node: GraphNode | None = None
    pending_deps: list[GraphNode] = field(default_factory=list)


@dataclass(frozen=True)
class CaptureEvent:
    """An event recorded during capture; resolves to the recording
    stream's latest node."""

    node: GraphNode | None
    event_id: int = field(default_factory=lambda: next(_capture_ids))


class StreamCapture:
    """Records hand-optimized stream/event host code into a graph."""

    def __init__(self, name: str = "captured") -> None:
        self.graph = CudaGraph(name=name)
        self._streams: list[CaptureStream] = []
        self._ended = False

    def stream(self) -> CaptureStream:
        """Open one capturing stream."""
        self._check_open()
        s = CaptureStream(index=len(self._streams))
        self._streams.append(s)
        return s

    def launch(
        self,
        stream: CaptureStream,
        kernel: Kernel,
        grid: int | tuple[int, ...],
        block: int | tuple[int, ...],
        args: tuple[Any, ...],
    ) -> GraphNode:
        """Record one kernel launch on ``stream``."""
        self._check_open()
        deps: list[GraphNode] = []
        if stream.last_node is not None:
            deps.append(stream.last_node)
        deps.extend(stream.pending_deps)
        stream.pending_deps.clear()
        node = self.graph.add_kernel_node(
            kernel, grid, block, tuple(args), deps=deps
        )
        stream.last_node = node
        return node

    def record_event(self, stream: CaptureStream) -> CaptureEvent:
        """``cudaEventRecord`` inside capture: snapshots stream state."""
        self._check_open()
        return CaptureEvent(node=stream.last_node)

    def wait_event(self, stream: CaptureStream, event: CaptureEvent) -> None:
        """``cudaStreamWaitEvent`` inside capture: adds a dependency to
        the next node recorded on ``stream``."""
        self._check_open()
        if event.node is not None:
            stream.pending_deps.append(event.node)

    def end_capture(self) -> CudaGraph:
        """``cudaStreamEndCapture``: returns the recorded graph."""
        self._check_open()
        if not self.graph.nodes:
            raise GraphError("capture recorded no operations")
        self._ended = True
        return self.graph

    def _check_open(self) -> None:
        if self._ended:
            raise GraphError("capture already ended")
