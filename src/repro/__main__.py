"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list
    python -m repro figure7 --scales 2 --iterations 3
    python -m repro table1
    python -m repro all --scales 1
    python -m repro serve-bench --tenants 4 --requests 100 \
        --fleet-size 2 --admission fair-share --placement least-loaded
    python -m repro serve-bench --cluster "2,1|2" --cluster-policy \
        spread --validate --serve-out BENCH_cluster.json
    python -m repro movement-bench --gpu "GTX 1660 Super" \
        --iterations 4 --fleet-gpus 2
    python -m repro trace serve-bench --trace-out trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import (
    figure1,
    figure2,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    movement_bench,
    parallel_bench,
    serve_bench,
    sim_bench,
    table1,
)
from repro.parallel import STRATEGIES

_SCALED = {"figure7", "figure8", "figure9"}
_ITERATED = {
    "figure1", "figure7", "figure8", "figure9", "figure10",
    "figure11", "figure12",
}

EXPERIMENTS = {
    "figure1": (figure1, "hand-tuned CUDA speedup vs serial (motivation)"),
    "figure2": (figure2, "inferred DAG + stream assignment (ML pipeline)"),
    "table1": (table1, "memory footprints per benchmark per GPU"),
    "figure7": (figure7, "parallel vs serial GrCUDA speedup (headline)"),
    "figure8": (figure8, "GrCUDA vs CUDA Graphs baselines"),
    "figure9": (figure9, "fraction of contention-free peak"),
    "figure10": (figure10, "ML execution timeline with overlaps"),
    "figure11": (figure11, "CT/TC/CC/TOT overlap fractions"),
    "figure12": (figure12, "hardware metrics, serial vs parallel"),
    "serve-bench": (
        serve_bench,
        "multi-tenant serving throughput over a simulated GPU fleet",
    ),
    "movement-bench": (
        movement_bench,
        "data-movement x placement policy grid over the workloads"
        " (single GPU + fleet)",
    ),
    "sim-bench": (
        sim_bench,
        "engine micro-benchmarks: near-linear scaling + repricing bounds",
    ),
    "parallel-bench": (
        parallel_bench,
        "execution-strategy matrix: fingerprint equality + speedups"
        " across sequential/threading/process",
    ),
}

#: experiments that can run under the span tracer (the ``trace``
#: meta-experiment delegates to one of these with tracing forced on)
TRACEABLE = ("serve-bench", "sim-bench", "movement-bench")

#: per-experiment default Chrome-trace artifact paths (bare ``--trace``)
DEFAULT_TRACE_PATHS = {
    "serve-bench": "TRACE_serving.json",
    "sim-bench": "TRACE_simulator.json",
    "movement-bench": "TRACE_movement.json",
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'DAG-based Scheduling"
            " with Resource Sharing for Multi-task Applications in a"
            " Polyglot GPU Runtime' (IPDPS 2021) on the simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "trace", "all", "list"],
        help="which experiment to run ('list' to enumerate; 'trace'"
        " runs a traceable experiment with span recording on)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment the 'trace' meta-experiment delegates to"
        " (default serve-bench)",
    )
    parser.add_argument(
        "--scales",
        type=int,
        default=2,
        metavar="N",
        help="paper scale points per GPU for the sweep figures"
        " (default 2; the paper uses up to 5)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=3,
        metavar="N",
        help="iterations per benchmark execution (default 3)",
    )
    parser.add_argument(
        "--gpu",
        default="GTX 1660 Super",
        help="GPU model for the serving fleet / movement-policy sweep"
        " (default 'GTX 1660 Super')",
    )
    serving = parser.add_argument_group(
        "serve-bench options",
        "only used by the serve-bench experiment",
    )
    serving.add_argument(
        "--tenants",
        type=_positive_int,
        default=4,
        metavar="N",
        help="number of logical tenants (default 4)",
    )
    serving.add_argument(
        "--requests",
        type=_positive_int,
        default=100,
        metavar="N",
        help="task graphs submitted across all tenants (default 100)",
    )
    serving.add_argument(
        "--fleet-size",
        type=_positive_int,
        default=2,
        metavar="N",
        help="fleet slots, one GPU each (default 2; see --fleet for"
        " multi-GPU slots)",
    )
    serving.add_argument(
        "--fleet",
        default=None,
        metavar="SPEC",
        help="fleet topology as GPUs-per-slot, e.g. '2,2,1,1'"
        " (overrides --fleet-size; each slot is a multi-GPU session)",
    )
    serving.add_argument(
        "--traffic",
        choices=["uniform", "skewed"],
        default="uniform",
        help="serving traffic mix (default uniform)",
    )
    serving.add_argument(
        "--movement-window",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="cross-acquire BATCHED coalescing window for the fleet"
        " sessions (default 0 = per-acquire)",
    )
    serving.add_argument(
        "--serve-out",
        default=None,
        metavar="PATH",
        help="write the serving report summary as JSON (e.g."
        " BENCH_serving.json)",
    )
    serving.add_argument(
        "--admission",
        choices=["fifo", "priority", "fair-share"],
        default="fair-share",
        help="admission-control policy (default fair-share)",
    )
    serving.add_argument(
        "--placement",
        choices=["round-robin", "min-transfer", "least-loaded"],
        default="least-loaded",
        help="fleet placement policy (default least-loaded)",
    )
    serving.add_argument(
        "--validate",
        action="store_true",
        help="check every completed request's results against serial"
        " execution",
    )
    serving.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject a deterministic fault plan, e.g."
        " 'crash:slot=1,at=2e-3;restart:slot=1,at=4e-3,warmup=5e-4'"
        " (kinds: crash, drain, restart, degrade, transfer-fault)",
    )
    serving.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="generate a seeded random fault plan over the arrival"
        " horizon (mutually exclusive with --faults)",
    )
    serving.add_argument(
        "--deadline-us",
        type=float,
        default=None,
        metavar="US",
        help="per-request deadline, microseconds after arrival"
        " (default: no deadlines)",
    )
    serving.add_argument(
        "--raw-least-loaded",
        action="store_true",
        help="price LEAST_LOADED by raw slot clock instead of"
        " width-normalized backlog/GPUs (the pre-normalization"
        " behaviour, for A/B comparison)",
    )
    serving.add_argument(
        "--parallel",
        choices=list(STRATEGIES),
        default="sequential",
        help="execution strategy for per-slot simulation (default"
        " sequential; every strategy yields the same fingerprint)",
    )
    serving.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker cap for the threading/process strategies"
        " (default: min(cpu_count, fleet slots))",
    )
    serving.add_argument(
        "--chaos-grid",
        action="store_true",
        help="run the fault-tolerance chaos grid instead of a single"
        " serving run: every scenario twice (bit-identical reports"
        " asserted), completed requests validated against serial",
    )
    cluster = parser.add_argument_group(
        "cluster options",
        "multi-node serving: serve-bench with --cluster runs the"
        " cluster benchmark (global admission, node placement, priced"
        " host-to-host staging/readback)",
    )
    cluster.add_argument(
        "--cluster",
        default=None,
        metavar="SPEC",
        help="cluster topology as |-separated per-node fleet specs,"
        " e.g. '2,2,1,1|4|2,2' (turns serve-bench into the cluster"
        " benchmark; --faults takes node= scope, e.g."
        " 'crash:node=1,at=2e-3')",
    )
    cluster.add_argument(
        "--cluster-policy",
        choices=["bin-pack", "spread", "affinity"],
        default="spread",
        help="node-placement policy (default spread)",
    )
    cluster.add_argument(
        "--interconnect",
        choices=[
            "ethernet-10g", "ethernet-100g", "infiniband-hdr",
            "loopback",
        ],
        default="ethernet-100g",
        help="host-to-host link model pricing cross-node staging and"
        " readback (default ethernet-100g)",
    )
    cluster.add_argument(
        "--cluster-runs",
        type=_positive_int,
        default=2,
        metavar="N",
        help="replays per cluster benchmark; fingerprints must match"
        " across all of them (default 2)",
    )
    movement = parser.add_argument_group(
        "movement-bench options",
        "only used by the movement-bench experiment",
    )
    movement.add_argument(
        "--fleet-gpus",
        type=int,
        default=2,
        metavar="N",
        help="GPUs in the fleet axis of the movement grid"
        " (default 2; 0 skips the fleet sweep)",
    )
    movement.add_argument(
        "--window",
        type=_nonnegative_int,
        default=4,
        metavar="N",
        help="cross-acquire BATCHED coalescing window for the windowed"
        " grid cells (default 4; 0 skips them)",
    )
    movement.add_argument(
        "--no-serving-axes",
        action="store_true",
        help="skip the serving execution x admission grid",
    )
    simbench = parser.add_argument_group(
        "sim-bench options",
        "only used by the sim-bench experiment",
    )
    simbench.add_argument(
        "--bench-out",
        default="BENCH_simulator.json",
        metavar="PATH",
        help="where to write the engine micro-benchmark results"
        " (default BENCH_simulator.json)",
    )
    obs = parser.add_argument_group(
        "observability options",
        "span tracing for serve-bench, sim-bench and movement-bench",
    )
    obs.add_argument(
        "--trace",
        action="store_true",
        help="record spans and write a Chrome-trace/Perfetto JSON next"
        " to the benchmark output (TRACE_<experiment>.json)",
    )
    obs.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="Chrome-trace output path (implies --trace)",
    )
    return parser


def run_experiment(name: str, args: argparse.Namespace) -> None:
    fn, _ = EXPERIMENTS[name]
    kwargs: dict = {"render": True}
    # --trace-out implies tracing; bare --trace picks the per-experiment
    # default artifact path.
    tracing = bool(
        getattr(args, "trace", False) or getattr(args, "trace_out", None)
    )
    trace_out = getattr(args, "trace_out", None) or (
        DEFAULT_TRACE_PATHS.get(name) if tracing else None
    )
    if name == "movement-bench":
        kwargs.update(
            gpu=args.gpu,
            iterations=args.iterations,
            fleet_gpus=args.fleet_gpus,
            window=args.window,
            serving_axes=not args.no_serving_axes,
            trace_out=trace_out,
        )
    if name == "sim-bench":
        kwargs.update(
            gpu=args.gpu, out_path=args.bench_out, trace_out=trace_out
        )
    if name == "serve-bench":
        if args.cluster:
            from repro.harness.cluster import cluster_bench

            cluster_bench(
                cluster=args.cluster,
                tenants=args.tenants,
                requests=args.requests,
                policy=args.cluster_policy,
                interconnect=args.interconnect,
                admission=args.admission,
                placement=args.placement,
                gpu=args.gpu,
                traffic=args.traffic,
                faults=args.faults,
                fault_seed=args.fault_seed,
                deadline_us=args.deadline_us,
                runs=args.cluster_runs,
                validate=args.validate,
                render=True,
                bench_out=args.serve_out,
                trace=tracing,
                # Bare --trace falls through to the cluster benchmark's
                # own default artifact (TRACE_cluster.json), not
                # serve-bench's.
                trace_out=getattr(args, "trace_out", None),
            )
            return
        if args.chaos_grid:
            from repro.harness.serving import chaos_grid

            chaos_grid(
                requests=args.requests,
                tenants=args.tenants,
                fleet=args.fleet or "1,1,1,1,1,1",
                gpu=args.gpu,
                deadline_us=args.deadline_us,
                render=True,
                bench_out=args.serve_out,
            )
            return
        kwargs.update(
            tenants=args.tenants,
            requests=args.requests,
            fleet_size=args.fleet_size,
            fleet=args.fleet,
            admission=args.admission,
            placement=args.placement,
            gpu=args.gpu,
            traffic=args.traffic,
            movement_window=args.movement_window,
            faults=args.faults,
            fault_seed=args.fault_seed,
            deadline_us=args.deadline_us,
            width_normalized=not args.raw_least_loaded,
            parallel=args.parallel,
            workers=args.workers,
            validate=args.validate,
            bench_out=args.serve_out,
            trace=tracing,
            trace_out=trace_out,
        )
    if name == "parallel-bench":
        kwargs.update(
            requests=args.requests,
            tenants=args.tenants,
            fleet=args.fleet or "2,2,1,1",
            gpu=args.gpu,
            traffic=args.traffic,
            workers=args.workers,
            bench_out=args.serve_out,
        )
    if name in _SCALED:
        kwargs["scales_per_gpu"] = args.scales
    if name in _ITERATED:
        kwargs["iterations"] = args.iterations
    fn(**kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "trace":
        target = args.target or "serve-bench"
        if target not in TRACEABLE:
            parser.error(
                f"'trace' targets one of {', '.join(TRACEABLE)};"
                f" got {target!r}"
            )
        args.trace = True
        run_experiment(target, args)
        return 0
    if args.target is not None:
        parser.error(
            "a target experiment is only meaningful with 'trace'"
        )
    if args.experiment == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {desc}")
        return 0
    if args.experiment == "all":
        # "all" means the paper's figures/tables; the serving, movement
        # and simulator benchmarks are not paper experiments and stay
        # opt-in.
        names = [
            n for n in EXPERIMENTS
            if n not in ("serve-bench", "movement-bench", "sim-bench")
        ]
    else:
        names = [args.experiment]
    for name in names:
        run_experiment(name, args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
