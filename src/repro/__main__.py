"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list
    python -m repro figure7 --scales 2 --iterations 3
    python -m repro table1
    python -m repro all --scales 1
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import (
    figure1,
    figure2,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
)

_SCALED = {"figure7", "figure8", "figure9"}
_ITERATED = {
    "figure1", "figure7", "figure8", "figure9", "figure10",
    "figure11", "figure12",
}

EXPERIMENTS = {
    "figure1": (figure1, "hand-tuned CUDA speedup vs serial (motivation)"),
    "figure2": (figure2, "inferred DAG + stream assignment (ML pipeline)"),
    "table1": (table1, "memory footprints per benchmark per GPU"),
    "figure7": (figure7, "parallel vs serial GrCUDA speedup (headline)"),
    "figure8": (figure8, "GrCUDA vs CUDA Graphs baselines"),
    "figure9": (figure9, "fraction of contention-free peak"),
    "figure10": (figure10, "ML execution timeline with overlaps"),
    "figure11": (figure11, "CT/TC/CC/TOT overlap fractions"),
    "figure12": (figure12, "hardware metrics, serial vs parallel"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'DAG-based Scheduling"
            " with Resource Sharing for Multi-task Applications in a"
            " Polyglot GPU Runtime' (IPDPS 2021) on the simulator."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument(
        "--scales",
        type=int,
        default=2,
        metavar="N",
        help="paper scale points per GPU for the sweep figures"
        " (default 2; the paper uses up to 5)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=3,
        metavar="N",
        help="iterations per benchmark execution (default 3)",
    )
    return parser


def run_experiment(name: str, scales: int, iterations: int) -> None:
    fn, _ = EXPERIMENTS[name]
    kwargs: dict = {"render": True}
    if name in _SCALED:
        kwargs["scales_per_gpu"] = scales
    if name in _ITERATED:
        kwargs["iterations"] = iterations
    fn(**kwargs)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {desc}")
        return 0
    names = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        run_experiment(name, args.scales, args.iterations)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
