"""Kernel execution history and block-size heuristics.

Section IV-A: "We track each kernel's historical performance and
scheduling to allow the creation of heuristics that guide future
scheduling of the same kernel."  Section VI names the first such
heuristic as future work: "estimating the ideal block size based on data
size and previous executions."

Both are implemented here: the execution contexts feed every completed
kernel into a :class:`KernelHistory`, and
:meth:`KernelHistory.recommend_block_size` answers the future-work
question from the accumulated evidence — pick the block size whose past
executions on similarly-sized data ran fastest per byte.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class KernelExecutionRecord:
    """One completed kernel execution."""

    kernel_name: str
    threads_per_block: int
    blocks: int
    data_bytes: float       # total size of the array arguments
    duration: float         # seconds on the simulated device
    stream_id: int
    end_time: float

    @property
    def seconds_per_byte(self) -> float:
        """Size-normalized cost, comparable across data sizes."""
        return self.duration / max(self.data_bytes, 1.0)


def _size_bucket(data_bytes: float) -> int:
    """Log2 bucket of the data size.

    Executions whose inputs differ by less than 2x land in the same or
    an adjacent bucket; the recommender searches nearby buckets so a
    slightly larger input can still reuse evidence.
    """
    return max(0, int(math.log2(max(data_bytes, 1.0))))


@dataclass
class KernelStats:
    """Aggregate statistics for one (kernel, block-size, size-bucket)."""

    count: int = 0
    total_duration: float = 0.0
    total_seconds_per_byte: float = 0.0
    best_duration: float = math.inf

    def add(self, record: KernelExecutionRecord) -> None:
        self.count += 1
        self.total_duration += record.duration
        self.total_seconds_per_byte += record.seconds_per_byte
        self.best_duration = min(self.best_duration, record.duration)

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.count

    @property
    def mean_seconds_per_byte(self) -> float:
        return self.total_seconds_per_byte / self.count


class KernelHistory:
    """Execution history of every kernel scheduled by one runtime."""

    def __init__(self, max_records_per_kernel: int = 10_000) -> None:
        self._records: dict[str, list[KernelExecutionRecord]] = (
            defaultdict(list)
        )
        self._stats: dict[
            tuple[str, int, int], KernelStats
        ] = defaultdict(KernelStats)
        self.max_records_per_kernel = max_records_per_kernel

    # -- recording -------------------------------------------------------

    def record(self, record: KernelExecutionRecord) -> None:
        records = self._records[record.kernel_name]
        if len(records) < self.max_records_per_kernel:
            records.append(record)
        key = (
            record.kernel_name,
            record.threads_per_block,
            _size_bucket(record.data_bytes),
        )
        self._stats[key].add(record)

    # -- queries -----------------------------------------------------------

    def kernels(self) -> list[str]:
        return sorted(self._records)

    def executions(self, kernel_name: str) -> list[KernelExecutionRecord]:
        return list(self._records.get(kernel_name, ()))

    def execution_count(self, kernel_name: str) -> int:
        return len(self._records.get(kernel_name, ()))

    def mean_duration(
        self, kernel_name: str, threads_per_block: int | None = None
    ) -> float:
        """Mean duration over matching executions.

        Raises
        ------
        KeyError
            If no matching execution exists.
        """
        matches = [
            r
            for r in self._records.get(kernel_name, ())
            if threads_per_block is None
            or r.threads_per_block == threads_per_block
        ]
        if not matches:
            raise KeyError(
                f"no recorded executions of {kernel_name!r}"
                + (
                    f" with block size {threads_per_block}"
                    if threads_per_block is not None
                    else ""
                )
            )
        return sum(r.duration for r in matches) / len(matches)

    # -- the future-work heuristic -----------------------------------------

    def recommend_block_size(
        self,
        kernel_name: str,
        data_bytes: float,
        bucket_radius: int = 1,
    ) -> int | None:
        """Best block size for ``kernel_name`` on inputs of about
        ``data_bytes``, from past executions.

        Searches the data-size bucket of the request plus
        ``bucket_radius`` neighbours and returns the block size with the
        lowest mean size-normalized cost; None when no evidence exists
        (the caller should fall back to its default and thereby produce
        evidence for next time).
        """
        target = _size_bucket(data_bytes)
        candidates: dict[int, list[KernelStats]] = defaultdict(list)
        for (name, block, bucket), stats in self._stats.items():
            if name != kernel_name:
                continue
            if abs(bucket - target) <= bucket_radius:
                candidates[block].append(stats)
        if not candidates:
            return None
        def cost(block: int) -> float:
            stats = candidates[block]
            total = sum(s.total_seconds_per_byte for s in stats)
            count = sum(s.count for s in stats)
            return total / count
        return min(candidates, key=cost)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kernel aggregates for reporting."""
        out: dict[str, dict[str, float]] = {}
        for name, records in self._records.items():
            if not records:
                continue
            durations = [r.duration for r in records]
            out[name] = {
                "executions": float(len(records)),
                "mean_ms": 1e3 * sum(durations) / len(durations),
                "best_ms": 1e3 * min(durations),
                "total_ms": 1e3 * sum(durations),
            }
        return out
