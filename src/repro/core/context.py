"""Execution contexts: serial-synchronous baseline and the paper's
parallel-asynchronous scheduler.

The GPU execution context (section IV-B) is the component every kernel
invocation and CPU array access flows through:

1. the invocation is converted to a computational element;
2. the element is registered with the context, which updates the DAG
   with the element's data dependencies;
3. the stream manager assigns an execution stream;
4. cross-stream dependencies are synchronized with events — never by
   blocking the host;
5. the operations are scheduled for execution on the device.

The serial context (original GrCUDA) skips all of that: one stream,
host-blocking sync after every computation, no dependency computation.
"""

from __future__ import annotations

import abc

from repro.core.dag import ComputationDAG
from repro.core.history import KernelExecutionRecord, KernelHistory
from repro.core.element import (
    ArrayAccessElement,
    ComputationalElement,
    KernelElement,
    LibraryCallElement,
)
from repro.core.policies import SchedulerConfig
from repro.core.streams import StreamManager
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferKind,
)
from repro.gpusim.stream import SimStream
from repro.kernels.kernel import KernelLaunch
from repro.kernels.profile import combine_resources
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine


def annotate_kernel_access_sets(op: KernelOp, launch: KernelLaunch) -> None:
    """Stamp the launch's access sets on ``op`` for the race detector
    and timeline introspection (shared by every kernel submission path:
    execution contexts, CUDA-graph replay, serving replay)."""
    op.info["reads"] = frozenset(
        id(a) for a, k in launch.array_args if k.reads
    )
    op.info["writes"] = frozenset(
        id(a) for a, k in launch.array_args if k.writes
    )
    op.info["array_names"] = {
        id(a): a.name for a, _ in launch.array_args
    }


def wait_cross_stream_parents(
    engine: SimEngine,
    stream: SimStream,
    parents: list[ComputationalElement],
) -> None:
    """Cross-stream dependencies -> event waits; same-stream ones are
    already ordered by CUDA's FIFO guarantee.  Shared by every
    DAG-scheduling path (parallel context, multi-GPU context)."""
    for parent in parents:
        if (
            parent.finish_event is not None
            and parent.stream is not stream
            and not parent.finish_event.complete
        ):
            engine.wait_event(stream, parent.finish_event)


def library_call_resources(spec, cost_seconds: float) -> KernelResourceRequest:
    """Model a stream-aware library call of the declared cost as a
    full-device computation on ``spec``."""
    return KernelResourceRequest(
        flops=cost_seconds * spec.flops_rate(False),
        fp64=False,
        dram_bytes=0.0,
        l2_bytes=0.0,
        instructions=0.0,
        threads_total=spec.max_resident_threads,
    )


def kernel_history_recorder(launch: KernelLaunch, sink):
    """An ``on_complete`` callback feeding a
    :class:`KernelExecutionRecord` for ``launch`` into ``sink`` (e.g.
    ``KernelHistory.record`` or a per-tenant list's ``append``)."""
    data_bytes = float(sum(a.nbytes for a, _ in launch.array_args))

    def record(completed_op) -> None:
        sink(
            KernelExecutionRecord(
                kernel_name=launch.label,
                threads_per_block=launch.threads_per_block,
                blocks=launch.blocks,
                data_bytes=data_bytes,
                duration=completed_op.end_time - completed_op.start_time,
                stream_id=(
                    completed_op.stream.stream_id
                    if completed_op.stream is not None
                    else -1
                ),
                end_time=completed_op.end_time,
            )
        )

    return record


class ExecutionContext(abc.ABC):
    """Common machinery for both scheduling policies."""

    #: whether this context runs the original serial scheduler (movement
    #: resolution differs: the serial scheduler predates the prefetcher)
    serial = False

    def __init__(self, engine: SimEngine, config: SchedulerConfig) -> None:
        self.engine = engine
        self.device = engine.device
        self.config = config
        self.movement = config.resolve_movement(
            engine.device.spec, serial=self.serial
        )
        self.dag = ComputationDAG()
        #: per-kernel execution history (section IV-A), feeding the
        #: block-size heuristic of section VI
        self.history = KernelHistory()
        #: extra key/values merged into every submitted op's ``info``.
        #: Multi-tenant hosts (``repro.serve``) set e.g. a tenant name
        #: here so shared-engine timeline records stay attributable.
        self.op_tags: dict = {}
        #: all data movement flows through here (shares ``op_tags`` by
        #: reference so tenant tags reach transfer ops too)
        self.coherence = CoherenceEngine(
            engine,
            policy=self.movement,
            op_tags=self.op_tags,
            window=config.movement_window,
        )
        self.kernel_count = 0
        self.cpu_access_fast_path_count = 0
        self.cpu_access_element_count = 0

    # -- public API used by the runtime facade -------------------------------

    def attach(self, array: DeviceArray) -> None:
        """Route the array's CPU accesses through this context."""
        array.set_access_hook(self._on_cpu_access)

    @abc.abstractmethod
    def launch(self, launch: KernelLaunch) -> None:
        """Schedule one kernel launch (GrCUDA launch handler)."""

    @abc.abstractmethod
    def _on_cpu_access(
        self, array: DeviceArray, kind: AccessKind, touched: int
    ) -> None:
        """Hook called before every CPU access to a managed array."""

    def sync(self) -> None:
        """Host-side device synchronization."""
        self.engine.sync_all()
        self.dag.deactivate_completed()

    def reclaimable_streams(self) -> tuple[SimStream, ...]:
        """Streams a retiring context hands back to the engine (see
        :meth:`repro.session.Session.renew_context`).  The serial
        context runs on the engine's default stream and owns only what
        its coherence engine created (window-coalescing streams)."""
        return self.coherence.take_owned_streams()

    # -- shared helpers ------------------------------------------------------

    def _kernel_op(
        self, launch: KernelLaunch, fault_bytes: float = 0.0
    ) -> KernelOp:
        resources: KernelResourceRequest = launch.resources()
        if fault_bytes > 0:
            resources = combine_resources(resources, fault_bytes)
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        annotate_kernel_access_sets(op, launch)
        op.info.update(self.op_tags)
        op.on_complete.append(
            kernel_history_recorder(launch, self.history.record)
        )
        return op

    def _submit_launch(
        self,
        stream: SimStream,
        launch: KernelLaunch,
        kind: "TransferKind | None" = None,
    ) -> KernelOp:
        """Declare the launch's accesses to the coherence engine, then
        submit the kernel with the resulting fault charge and
        completion-applied state transitions."""
        plan = self.coherence.acquire(
            list(launch.array_args), stream, label=launch.label, kind=kind
        )
        op = self._kernel_op(launch, plan.fault_bytes)
        self.coherence.release(plan, op)
        self.engine.submit(stream, op)
        return op


class SerialExecutionContext(ExecutionContext):
    """The original GrCUDA scheduler: serial and synchronous.

    Every computation runs alone on the default stream; the host blocks
    until it finishes.  No dependencies are computed ("when using serial
    scheduling, GrCUDA does not compute dependencies, making overheads
    even smaller").  The DAG still records vertices for introspection,
    but no edges are inferred.

    The original scheduler predates the automatic prefetcher, so unified
    memory reaches the GPU through page faults on Pascal+ (plain UM
    behaviour) and through eager copies on Maxwell, which has no fault
    mechanism.  ``SchedulerConfig(prefetch=PrefetchPolicy.SYNC)`` forces
    eager copies everywhere (used by the contention-free measurements);
    ``SchedulerConfig(movement=...)`` selects any movement policy
    explicitly.
    """

    serial = True

    def launch(self, launch: KernelLaunch) -> None:
        self.kernel_count += 1
        self.engine.charge_host_time(self.config.serial_overhead_us * 1e-6)
        stream = self.engine.default_stream
        # The original scheduler's eager copies predate the prefetch API;
        # they surface as plain EAGER transfers whatever the device.
        self._submit_launch(stream, launch, kind=TransferKind.EAGER)
        self.engine.sync_stream(stream)

    def _on_cpu_access(
        self, array: DeviceArray, kind: AccessKind, touched: int
    ) -> None:
        # The device is always idle here (every launch synchronized), so
        # only the data migration cost remains.
        self.coherence.cpu_access(
            array, kind, touched, stream=self.engine.default_stream
        )


class ParallelExecutionContext(ExecutionContext):
    """The paper's scheduler: parallel and asynchronous.

    Kernels are converted to DAG elements, dependencies are inferred from
    dependency sets, streams come from the stream manager, and the host
    never blocks except on CPU accesses that truly need GPU results.
    """

    def __init__(self, engine: SimEngine, config: SchedulerConfig) -> None:
        super().__init__(engine, config)
        self.streams = StreamManager(
            engine,
            new_stream=config.new_stream,
            parent_stream=config.parent_stream,
        )

    def reclaimable_streams(self) -> tuple[SimStream, ...]:
        return self.streams.streams + self.coherence.take_owned_streams()

    # -- kernel scheduling ------------------------------------------------------

    def launch(self, launch: KernelLaunch) -> None:
        self.kernel_count += 1
        self.engine.charge_host_time(
            self.config.scheduling_overhead_us * 1e-6
        )
        element = KernelElement(launch)
        parents = self.dag.add(element)
        stream = self.streams.assign(element, parents)
        wait_cross_stream_parents(self.engine, stream, parents)

        # The coherence engine waits on in-flight shared-input
        # migrations, plans the movement the policy calls for (prefetch,
        # batched copies, or fault charges inside the kernel — the
        # ablation of section V-C), and binds the state transitions to
        # the kernel's completion.
        self._submit_launch(stream, launch)
        element.finish_event = self.engine.record_event(
            stream, label=f"done:{launch.label}"
        )
        self.dag.watch_completion(element)

    # -- CPU array accesses -------------------------------------------------------

    def _on_cpu_access(
        self, array: DeviceArray, kind: AccessKind, touched: int
    ) -> None:
        conflicts = self._conflicting_elements(array, kind)
        needs_migration = self.coherence.needs_host_migration(
            array, kind, touched
        )
        if not conflicts and not needs_migration:
            # Fast path (section IV-A): consecutive accesses, or accesses
            # while no GPU computation is active, bypass the DAG.  The
            # coherence declaration still runs — a full-array write must
            # invalidate the device copy through the shared transition
            # path even when nothing migrates.
            self.cpu_access_fast_path_count += 1
            if kind.writes:
                self.coherence.cpu_access(array, kind, touched)
            return

        self.cpu_access_element_count += 1
        element = ArrayAccessElement(array, kind, touched)
        parents = self.dag.add(element)
        # Synchronize only the computations operating on this data,
        # through their precise per-computation events.
        for parent in parents:
            if parent.finish_event is not None:
                self.engine.sync_event(parent.finish_event)

        self.coherence.cpu_access(
            array, kind, touched, stream=self.engine.default_stream
        )
        # The access happens synchronously right after this hook returns:
        # it cannot affect later GPU work through anything but coherence,
        # so it leaves the frontier immediately.
        self.dag.deactivate(element)
        self.dag.deactivate_completed()

    def _conflicting_elements(
        self, array: DeviceArray, kind: AccessKind
    ) -> list[ComputationalElement]:
        """Active elements this CPU access would depend on (indexed:
        O(degree) per access instead of a full frontier scan)."""
        if kind.writes:
            return self.dag.active_users(array)
        return self.dag.active_writers(array)

    # -- library functions -----------------------------------------------------

    def library_call(self, element: LibraryCallElement) -> None:
        """Schedule a pre-registered library function (section IV-A).

        Stream-aware libraries are scheduled asynchronously like kernels,
        modelled as a full-device computation of the declared cost;
        stream-unaware ones force a device sync and run on the host.
        """
        if not element.stream_aware:
            self.sync()
            self.engine.charge_host_time(element.cost_seconds)
            element.fn()
            return
        parents = self.dag.add(element)
        stream = self.streams.assign(element, parents)
        wait_cross_stream_parents(self.engine, stream, parents)
        resources = library_call_resources(
            self.device.spec, element.cost_seconds
        )
        op = KernelOp(
            label=element.label,
            resources=resources,
            compute_fn=element.fn,
        )
        op.info.update(self.op_tags)
        self.engine.submit(stream, op)
        element.finish_event = self.engine.record_event(
            stream, label=f"done:{element.label}"
        )
        self.dag.watch_completion(element)
