"""Transparent CUDA-stream management (section IV-C).

The stream manager owns every stream the scheduler uses and implements
the paper's assignment rules:

* an element without dependencies gets a *free* stream — existing streams
  are scanned in FIFO (creation) order, and a new stream is created only
  when none is free;
* the **first** child of a computation inherits its parent's stream,
  avoiding a synchronization event (consecutive work on one stream is
  ordered by CUDA already); further children get free/new streams to
  preserve concurrency;
* cross-stream dependencies synchronize through the parent's finish
  event, never by blocking the host.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.core.element import ComputationalElement
from repro.core.policies import NewStreamPolicy, ParentStreamPolicy
from repro.gpusim.engine import SimEngine
from repro.gpusim.stream import SimStream


class StreamManager:
    """Allocates and reuses simulator streams per the configured policies.

    Free-stream retrieval is constant-time: instead of scanning every
    stream per retrieval (O(n) per scheduled computation — measurable on
    long-lived engines with hundreds of streams), the manager keeps a
    free-list ordered by creation index, fed by each stream's idle
    callback when its last queued operation completes.  Entries are
    validated lazily at pop time, so a stream that went busy again since
    enqueueing is simply skipped; each stream enters the list at most
    once per idle transition, keeping the amortized cost per retrieval
    O(1) (O(log n) heap maintenance in the worst case).
    """

    def __init__(
        self,
        engine: SimEngine,
        new_stream: NewStreamPolicy = NewStreamPolicy.FIFO,
        parent_stream: ParentStreamPolicy = ParentStreamPolicy.DISJOINT,
        stream_factory: Callable[[], SimStream] | None = None,
    ) -> None:
        self.engine = engine
        self.new_stream_policy = new_stream
        self.parent_stream_policy = parent_stream
        #: optional override producing engine streams (the multi-GPU
        #: scheduler pins each manager's streams to one device)
        self._factory = stream_factory
        self._streams: list[SimStream] = []
        #: free-list as a heap of (creation index, stream), preserving
        #: the paper's FIFO rule: the *oldest* free stream is reused
        self._free_heap: list[tuple[int, SimStream]] = []
        self._in_free_heap: set[int] = set()
        self._creation_index: dict[int, int] = {}
        self.created_count = 0
        self.reused_count = 0

    # -- free-stream retrieval ------------------------------------------------

    def _create_stream(self) -> SimStream:
        if self._factory is not None:
            stream = self._factory()
        else:
            stream = self.engine.create_stream(
                label=f"grcuda-{len(self._streams)}"
            )
        self._creation_index[stream.stream_id] = len(self._streams)
        self._streams.append(stream)
        stream.idle_callbacks.append(self._note_idle)
        self.created_count += 1
        return stream

    def _note_idle(self, stream: SimStream) -> None:
        """Idle callback: the stream drained and is reusable again."""
        if stream.stream_id in self._in_free_heap or stream.destroyed:
            return
        self._in_free_heap.add(stream.stream_id)
        heapq.heappush(
            self._free_heap,
            (self._creation_index[stream.stream_id], stream),
        )

    def retrieve_free_stream(self) -> SimStream:
        """A stream with no in-flight work, per the new-stream policy."""
        if self.new_stream_policy is NewStreamPolicy.FIFO:
            while self._free_heap:
                _, stream = self._free_heap[0]
                if stream.free:
                    # Left in the list: it stays retrievable until work
                    # is actually submitted to it, like the old scan.
                    self.reused_count += 1
                    return stream
                # Stale entry: the stream went busy (or was destroyed)
                # after it was enqueued; its next idle re-enqueues it.
                heapq.heappop(self._free_heap)
                self._in_free_heap.discard(stream.stream_id)
        stream = self._create_stream()
        # A created-but-never-used stream is still free: keep it
        # retrievable (FIFO scan semantics) until work is submitted.
        self._note_idle(stream)
        return stream

    # -- element assignment ------------------------------------------------------

    def assign(
        self,
        element: ComputationalElement,
        parents: list[ComputationalElement],
    ) -> SimStream:
        """Choose the execution stream for ``element``.

        ``parents`` are the dependencies just inferred by the DAG (their
        ``children_count`` already includes ``element``).  The chosen
        stream is recorded on the element; the caller submits the ops and
        the cross-stream event waits.
        """
        stream = self._choose(parents)
        element.stream = stream
        return stream

    def _choose(self, parents: list[ComputationalElement]) -> SimStream:
        if not parents:
            return self.retrieve_free_stream()
        if self.parent_stream_policy is ParentStreamPolicy.SAME_AS_PARENT:
            parent = parents[0]
            assert parent.stream is not None
            return parent.stream
        # DISJOINT: reuse the stream of a parent for which we are the
        # first child; otherwise take a free stream.
        for parent in parents:
            if parent.children_count == 1 and parent.stream is not None:
                return parent.stream
        return self.retrieve_free_stream()

    # -- introspection ---------------------------------------------------------

    @property
    def streams(self) -> tuple[SimStream, ...]:
        return tuple(self._streams)

    @property
    def active_stream_count(self) -> int:
        return sum(1 for s in self._streams if s.busy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamManager streams={len(self._streams)}"
            f" busy={self.active_stream_count}>"
        )
