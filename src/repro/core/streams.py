"""Transparent CUDA-stream management (section IV-C).

The stream manager owns every stream the scheduler uses and implements
the paper's assignment rules:

* an element without dependencies gets a *free* stream — existing streams
  are scanned in FIFO (creation) order, and a new stream is created only
  when none is free;
* the **first** child of a computation inherits its parent's stream,
  avoiding a synchronization event (consecutive work on one stream is
  ordered by CUDA already); further children get free/new streams to
  preserve concurrency;
* cross-stream dependencies synchronize through the parent's finish
  event, never by blocking the host.
"""

from __future__ import annotations

from repro.core.element import ComputationalElement
from repro.core.policies import NewStreamPolicy, ParentStreamPolicy
from repro.gpusim.engine import SimEngine
from repro.gpusim.stream import SimStream


class StreamManager:
    """Allocates and reuses simulator streams per the configured policies."""

    def __init__(
        self,
        engine: SimEngine,
        new_stream: NewStreamPolicy = NewStreamPolicy.FIFO,
        parent_stream: ParentStreamPolicy = ParentStreamPolicy.DISJOINT,
    ) -> None:
        self.engine = engine
        self.new_stream_policy = new_stream
        self.parent_stream_policy = parent_stream
        self._streams: list[SimStream] = []
        self.created_count = 0
        self.reused_count = 0

    # -- free-stream retrieval ------------------------------------------------

    def _create_stream(self) -> SimStream:
        stream = self.engine.create_stream(
            label=f"grcuda-{len(self._streams)}"
        )
        self._streams.append(stream)
        self.created_count += 1
        return stream

    def retrieve_free_stream(self) -> SimStream:
        """A stream with no in-flight work, per the new-stream policy."""
        if self.new_stream_policy is NewStreamPolicy.FIFO:
            for stream in self._streams:  # FIFO: oldest first
                if stream.free:
                    self.reused_count += 1
                    return stream
        return self._create_stream()

    # -- element assignment ------------------------------------------------------

    def assign(
        self,
        element: ComputationalElement,
        parents: list[ComputationalElement],
    ) -> SimStream:
        """Choose the execution stream for ``element``.

        ``parents`` are the dependencies just inferred by the DAG (their
        ``children_count`` already includes ``element``).  The chosen
        stream is recorded on the element; the caller submits the ops and
        the cross-stream event waits.
        """
        stream = self._choose(parents)
        element.stream = stream
        return stream

    def _choose(self, parents: list[ComputationalElement]) -> SimStream:
        if not parents:
            return self.retrieve_free_stream()
        if self.parent_stream_policy is ParentStreamPolicy.SAME_AS_PARENT:
            parent = parents[0]
            assert parent.stream is not None
            return parent.stream
        # DISJOINT: reuse the stream of a parent for which we are the
        # first child; otherwise take a free stream.
        for parent in parents:
            if parent.children_count == 1 and parent.stream is not None:
                return parent.stream
        return self.retrieve_free_stream()

    # -- introspection ---------------------------------------------------------

    @property
    def streams(self) -> tuple[SimStream, ...]:
        return tuple(self._streams)

    @property
    def active_stream_count(self) -> int:
        return sum(1 for s in self._streams if s.busy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamManager streams={len(self._streams)}"
            f" busy={self.active_stream_count}>"
        )
