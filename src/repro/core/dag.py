"""The computation DAG with dependency-set inference.

This is the heart of the paper (section IV-A, Fig. 3).  The DAG is built
incrementally at run time: the scheduler never sees the whole program,
only the current *frontier* of active computations.  Dependencies are
inferred from argument usage:

* a computation that **reads** an argument depends on the active
  computation that holds the argument *writable* in its dependency set
  (the last writer); the writer's set is **not** updated, so further
  readers also attach to the writer directly and run concurrently
  (Fig. 3 A and C);
* a computation that **writes** an argument depends on all active
  *readers* of that argument if any exist (write-after-read
  anti-dependencies, Fig. 3 B) — otherwise on the last writer
  (write-after-write); either way the argument is then removed from
  every previous holder's dependency set ("all dependency sets will be
  updated");
* an element whose dependency set empties can no longer introduce
  dependencies and leaves the frontier.

Provider lookup is *indexed*: per-array ``last writer`` and ``readers``
maps mirror the frontier's dependency sets, so inferring one argument's
dependencies costs O(degree) — the number of elements actually holding
that array — instead of O(frontier).  The frozen scan-based
implementation lives in ``tests/core/reference_dag.py`` and property
tests assert equivalence over randomized access sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.element import ComputationalElement
from repro.memory.array import DeviceArray


@dataclass(frozen=True)
class DependencyEdge:
    """One inferred data dependency, labelled with the array that caused
    it (the edge labels of Fig. 2)."""

    parent: ComputationalElement
    child: ComputationalElement
    array: DeviceArray


class ComputationDAG:
    """Incrementally-built computation DAG.

    ``frontier`` holds the *active* elements — those that can still
    introduce dependencies.  ``vertices``/``edges`` accumulate the full
    history for introspection (Fig. 2-style rendering, tests, metrics);
    the scheduler itself only ever consults the frontier (through the
    per-array indexes).
    """

    def __init__(self) -> None:
        #: active elements, keyed by element id in insertion order (the
        #: same relative order the legacy frontier list maintained)
        self._frontier: dict[int, ComputationalElement] = {}
        self.vertices: list[ComputationalElement] = []
        self.edges: list[DependencyEdge] = []
        #: array id -> the frontier element holding the array *writable*
        #: in its dependency set (at most one active writer, Fig. 3)
        self._writer: dict[int, ComputationalElement] = {}
        #: array id -> frontier elements holding the array read-only,
        #: keyed by element id in insertion order
        self._readers: dict[int, dict[int, ComputationalElement]] = {}
        #: adjacency maps over the accumulated edge history
        self._parent_edges: dict[int, list[DependencyEdge]] = {}
        self._child_edges: dict[int, list[DependencyEdge]] = {}
        #: elements with a finish event, awaiting host-sync deactivation
        self._watched: list[ComputationalElement] = []

    @property
    def frontier(self) -> list[ComputationalElement]:
        return list(self._frontier.values())

    # -- construction ---------------------------------------------------------

    def add(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        """Insert ``element``, inferring its dependencies.

        Returns the (deduplicated, insertion-ordered) parent elements.
        Dependency-set updates follow Fig. 3 exactly; see the module
        docstring for the rules.
        """
        parents: dict[int, ComputationalElement] = {}
        edge_arrays: dict[int, DeviceArray] = {}

        for array, kind in element.accesses:
            if kind.writes:
                found = self._providers_for_write(array)
            else:
                found = self._providers_for_read(array)
            for provider in found:
                if provider.element_id not in parents:
                    parents[provider.element_id] = provider
                    edge_arrays[provider.element_id] = array

        for parent in parents.values():
            parent.children_count += 1
            edge = DependencyEdge(
                parent=parent,
                child=element,
                array=edge_arrays[parent.element_id],
            )
            self.edges.append(edge)
            self._child_edges.setdefault(parent.element_id, []).append(edge)
            self._parent_edges.setdefault(element.element_id, []).append(edge)

        self.vertices.append(element)
        if not element.dependency_set_empty:
            self._frontier[element.element_id] = element
            for aid, kind in element.dependency_set.items():
                if kind.writes:
                    self._writer[aid] = element
                else:
                    self._readers.setdefault(aid, {})[
                        element.element_id
                    ] = element
        return list(parents.values())

    def _providers_for_read(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Read dependency: the active last writer of ``array``.

        The writer keeps the argument in its dependency set, so multiple
        readers all depend on the writer directly and may overlap.
        """
        writer = self._writer.get(id(array))
        if writer is not None and writer.active:
            return [writer]
        return []

    def _providers_for_write(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Write dependency: active readers if any (WAR), else the last
        writer (WAW).  Either way the argument leaves every previous
        holder's dependency set."""
        aid = id(array)
        readers_map = self._readers.get(aid)
        readers = (
            [e for e in readers_map.values() if e.active]
            if readers_map
            else []
        )
        writer = self._writer.get(aid)
        writers = [writer] if writer is not None and writer.active else []
        providers = readers if readers else writers
        for holder in (*readers, *writers):
            holder.remove_from_set(array)
            if holder.dependency_set_empty:
                self._frontier.pop(holder.element_id, None)
        # The argument left every active holder's set: the per-array
        # indexes for it are now empty.
        self._readers.pop(aid, None)
        self._writer.pop(aid, None)
        return providers

    # -- deactivation -----------------------------------------------------------

    def deactivate(self, element: ComputationalElement) -> None:
        """Remove an element from the frontier (the CPU consumed its
        result, section IV-B)."""
        element.active = False
        if self._frontier.pop(element.element_id, None) is not None:
            self._unindex(element)

    def _unindex(self, element: ComputationalElement) -> None:
        """Drop a departing frontier element from the per-array indexes."""
        for aid, kind in element.dependency_set.items():
            if kind.writes:
                if self._writer.get(aid) is element:
                    del self._writer[aid]
            else:
                readers = self._readers.get(aid)
                if readers is not None:
                    readers.pop(element.element_id, None)
                    if not readers:
                        del self._readers[aid]

    def watch_completion(self, element: ComputationalElement) -> None:
        """Register an element whose ``finish_event`` was just assigned,
        so host syncs only visit elements that can actually have
        completed instead of walking the whole frontier."""
        self._watched.append(element)

    def deactivate_completed(self) -> None:
        """Sweep the watched elements whose finish event completed.

        Called after host synchronizations: any element the host has
        (transitively) waited on is complete and no longer needs to be
        considered for dependencies.  Keeping completed elements around
        would stay *correct* (waiting on a completed event is a no-op)
        but wastes scheduling time and holds streams hostage.
        """
        if not self._watched:
            return
        remaining: list[ComputationalElement] = []
        for element in self._watched:
            if element.element_id not in self._frontier:
                continue  # already left the frontier some other way
            event = element.finish_event
            if event is not None and event.complete:
                self.deactivate(element)
            else:
                remaining.append(element)
        self._watched = remaining

    # -- indexed frontier queries ---------------------------------------------

    def active_writers(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Frontier elements holding ``array`` writable (0 or 1)."""
        writer = self._writer.get(id(array))
        if writer is not None and writer.active:
            return [writer]
        return []

    def active_users(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Frontier elements holding ``array`` in their dependency set
        through any access kind, in frontier (insertion) order."""
        aid = id(array)
        users: dict[int, ComputationalElement] = {}
        readers = self._readers.get(aid)
        if readers:
            users.update(readers)
        writer = self._writer.get(aid)
        if writer is not None:
            users[writer.element_id] = writer
        return [users[eid] for eid in sorted(users) if users[eid].active]

    # -- introspection ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def parents_of(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        return [
            e.parent
            for e in self._parent_edges.get(element.element_id, ())
        ]

    def children_of(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        return [
            e.child for e in self._child_edges.get(element.element_id, ())
        ]

    def to_networkx(self):
        """Export the accumulated DAG as a :class:`networkx.DiGraph`.

        Vertex attributes: ``label``; edge attributes: ``array`` (name of
        the array causing the dependency).  Used by examples and tests;
        the scheduler never needs it.
        """
        import networkx as nx

        g = nx.DiGraph()
        for v in self.vertices:
            g.add_node(v.element_id, label=v.label)
        for e in self.edges:
            g.add_edge(
                e.parent.element_id,
                e.child.element_id,
                array=e.array.name,
            )
        return g

    def is_acyclic(self) -> bool:
        """The construction can only add edges from old to new vertices,
        so this always holds; exposed for property tests."""
        import networkx as nx

        return nx.is_directed_acyclic_graph(self.to_networkx())
