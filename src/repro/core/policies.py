"""Scheduling policies and runtime configuration.

Section IV-C defines the policy space:

* **Execution policy** — the original GrCUDA scheduler is *serial and
  synchronous*; the paper's contribution is *parallel and asynchronous*.
* **New-stream policy** — streams are managed in FIFO order and created
  only when no free stream exists (``FIFO``); ``ALWAYS_NEW`` is the
  simpler ablation.
* **Parent-stream policy** — the first child of a computation reuses the
  parent's stream to avoid a synchronization event; later children get
  fresh streams (``DISJOINT``).  ``SAME_AS_PARENT`` schedules every child
  on the parent's stream ("simpler policies further reduce the scheduling
  costs"), trading concurrency for bookkeeping.
* **Prefetch policy** — on Pascal+ the scheduler prefetches UM arrays
  ahead of kernels (``AUTO`` enables exactly that); ``NONE`` falls back
  to page faults (the ablation the paper advises against); ``SYNC``
  moves data eagerly before each launch (the only choice on Maxwell).
* **Movement policy** — the newer, executor-independent axis consumed by
  :class:`repro.memory.coherence.CoherenceEngine`: ``PAGE_FAULT`` (lazy
  on-demand migration), ``EAGER_PREFETCH`` (copy as soon as the DAG
  schedules a consumer) or ``BATCHED`` (coalesce adjacent-array copies).
  When unset, it is derived from the prefetch policy so existing
  configurations keep their exact behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim.specs import GPUSpec
from repro.memory.coherence import MovementPolicy


class ExecutionPolicy(enum.Enum):
    SERIAL = "sync"       # original GrCUDA: serial & synchronous
    PARALLEL = "async"    # this paper: parallel & asynchronous


class NewStreamPolicy(enum.Enum):
    FIFO = "fifo-free"    # reuse the oldest free stream; create if none
    ALWAYS_NEW = "always-new"


class ParentStreamPolicy(enum.Enum):
    DISJOINT = "disjoint"            # first child inherits parent stream
    SAME_AS_PARENT = "same-as-parent"  # all children on the parent stream


class PrefetchPolicy(enum.Enum):
    AUTO = "auto"    # async prefetch on page-fault GPUs, eager otherwise
    NONE = "none"    # rely on page faults (Pascal+ only)
    SYNC = "sync"    # eager copy before every launch


@dataclass
class SchedulerConfig:
    """Complete configuration of one runtime instance.

    ``scheduling_overhead_us`` is the host-side cost charged per kernel
    launch by the parallel scheduler (dependency computation + stream
    assignment + launch); ``serial_overhead_us`` is the lighter cost of
    the serial scheduler, which "does not compute dependencies, making
    overheads even smaller" (section V-C).
    """

    execution: ExecutionPolicy = ExecutionPolicy.PARALLEL
    new_stream: NewStreamPolicy = NewStreamPolicy.FIFO
    parent_stream: ParentStreamPolicy = ParentStreamPolicy.DISJOINT
    prefetch: PrefetchPolicy = PrefetchPolicy.AUTO
    #: data-movement policy for the coherence engine; None derives it
    #: from ``prefetch`` (and the scheduler's execution policy), keeping
    #: legacy configurations bit-identical
    movement: MovementPolicy | None = None
    scheduling_overhead_us: float = 10.0
    serial_overhead_us: float = 4.0
    track_history: bool = True

    def resolve_movement(
        self, spec: GPUSpec, serial: bool = False
    ) -> MovementPolicy:
        """Pin the movement policy down for a concrete device.

        Explicit ``movement`` wins.  Otherwise the legacy prefetch knob
        maps onto the new axis: ``NONE`` -> page faults; ``AUTO`` on the
        serial scheduler also means faults (the original scheduler
        predates the automatic prefetcher); everything else prefetches
        eagerly.  Devices without a fault mechanism always degrade to
        eager copies — there is nothing lazy to fall back on.
        """
        if self.movement is not None:
            policy = self.movement
        elif self.prefetch is PrefetchPolicy.NONE:
            policy = MovementPolicy.PAGE_FAULT
        elif serial and self.prefetch is not PrefetchPolicy.SYNC:
            policy = MovementPolicy.PAGE_FAULT
        else:
            policy = MovementPolicy.EAGER_PREFETCH
        if (
            policy is MovementPolicy.PAGE_FAULT
            and not spec.supports_page_faults
        ):
            policy = MovementPolicy.EAGER_PREFETCH
        return policy

    def resolve_prefetch(self, spec: GPUSpec) -> PrefetchPolicy:
        """Pin AUTO down for a concrete device.

        Maxwell has no page-fault mechanism: every policy degrades to
        eager synchronous-style copies ahead of the kernel (the paper:
        "on the GTX 960, data is necessarily transferred ahead of the
        computation").
        """
        if not spec.supports_page_faults:
            return PrefetchPolicy.SYNC
        return self.prefetch
