"""Scheduling policies and runtime configuration.

Section IV-C defines the policy space:

* **Execution policy** — the original GrCUDA scheduler is *serial and
  synchronous*; the paper's contribution is *parallel and asynchronous*.
* **New-stream policy** — streams are managed in FIFO order and created
  only when no free stream exists (``FIFO``); ``ALWAYS_NEW`` is the
  simpler ablation.
* **Parent-stream policy** — the first child of a computation reuses the
  parent's stream to avoid a synchronization event; later children get
  fresh streams (``DISJOINT``).  ``SAME_AS_PARENT`` schedules every child
  on the parent's stream ("simpler policies further reduce the scheduling
  costs"), trading concurrency for bookkeeping.
* **Prefetch policy** — on Pascal+ the scheduler prefetches UM arrays
  ahead of kernels (``AUTO`` enables exactly that); ``NONE`` falls back
  to page faults (the ablation the paper advises against); ``SYNC``
  moves data eagerly before each launch (the only choice on Maxwell).
* **Movement policy** — the newer, executor-independent axis consumed by
  :class:`repro.memory.coherence.CoherenceEngine`: ``PAGE_FAULT`` (lazy
  on-demand migration), ``EAGER_PREFETCH`` (copy as soon as the DAG
  schedules a consumer) or ``BATCHED`` (coalesce adjacent-array copies).
  When unset, it is derived from the prefetch policy so existing
  configurations keep their exact behaviour.
* **Device-placement policy** — which GPU a computation runs on, for
  multi-GPU sessions and the serving fleet (round-robin / min-transfer /
  least-loaded).
* **Admission policy** — which queued request a *serving* session admits
  next (FIFO / priority / fair-share).  A serving-only knob: setting it
  on a plain compute session is a configuration error.

One :class:`SchedulerConfig` holds the complete policy space; device
count is a :class:`repro.session.Session` argument, never an API choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpusim.specs import GPUSpec
from repro.memory.coherence import MovementPolicy


class ExecutionPolicy(enum.Enum):
    SERIAL = "sync"       # original GrCUDA: serial & synchronous
    PARALLEL = "async"    # this paper: parallel & asynchronous


class DevicePlacementPolicy(enum.Enum):
    """Which GPU runs a computation (multi-GPU sessions and the serving
    fleet share this vocabulary; see the module docstring)."""

    ROUND_ROBIN = "round-robin"
    MIN_TRANSFER = "min-transfer"
    LEAST_LOADED = "least-loaded"


class AdmissionPolicy(enum.Enum):
    """Which queued request a serving session dispatches next."""

    FIFO = "fifo"
    PRIORITY = "priority"
    FAIR_SHARE = "fair-share"


class NewStreamPolicy(enum.Enum):
    FIFO = "fifo-free"    # reuse the oldest free stream; create if none
    ALWAYS_NEW = "always-new"


class ParentStreamPolicy(enum.Enum):
    DISJOINT = "disjoint"            # first child inherits parent stream
    SAME_AS_PARENT = "same-as-parent"  # all children on the parent stream


class PrefetchPolicy(enum.Enum):
    AUTO = "auto"    # async prefetch on page-fault GPUs, eager otherwise
    NONE = "none"    # rely on page faults (Pascal+ only)
    SYNC = "sync"    # eager copy before every launch


@dataclass
class SchedulerConfig:
    """Complete configuration of one runtime instance.

    ``scheduling_overhead_us`` is the host-side cost charged per kernel
    launch by the parallel scheduler (dependency computation + stream
    assignment + launch); ``serial_overhead_us`` is the lighter cost of
    the serial scheduler, which "does not compute dependencies, making
    overheads even smaller" (section V-C).
    """

    execution: ExecutionPolicy = ExecutionPolicy.PARALLEL
    new_stream: NewStreamPolicy = NewStreamPolicy.FIFO
    parent_stream: ParentStreamPolicy = ParentStreamPolicy.DISJOINT
    prefetch: PrefetchPolicy = PrefetchPolicy.AUTO
    #: data-movement policy for the coherence engine; None derives it
    #: from ``prefetch`` (and the scheduler's execution policy), keeping
    #: legacy configurations bit-identical
    movement: MovementPolicy | None = None
    #: submission-window size for cross-acquire BATCHED coalescing: the
    #: stale inputs of up to this many adjacent launches merge into one
    #: transfer on a dedicated stream, flushed on sync / window-full /
    #: policy boundaries.  0 (the default) coalesces per acquire —
    #: bit-identical to the pre-window BATCHED behaviour.  Ignored by
    #: the other movement policies.
    movement_window: int = 0
    #: device-placement policy for multi-GPU sessions and the serving
    #: fleet; None resolves to MIN_TRANSFER for a compute session and
    #: LEAST_LOADED for a serving fleet (each path's historical default)
    placement: DevicePlacementPolicy | None = None
    #: admission-control policy — a *serving-only* knob; non-None on a
    #: plain compute session is rejected by :meth:`validate`
    admission: AdmissionPolicy | None = None
    #: serving-only fault-management knobs (rejected on compute
    #: sessions, like ``admission``); None inherits the ServeConfig
    #: defaults.  ``max_retries`` bounds re-placement attempts after a
    #: slot crash or transient transfer fault; ``retry_backoff_us`` is
    #: the base of the exponential re-dispatch backoff; ``shed_watermark``
    #: is the healthy-capacity fraction below which graceful degradation
    #: sheds lowest-priority queued work instead of deadlocking.
    max_retries: int | None = None
    retry_backoff_us: float | None = None
    shed_watermark: float | None = None
    scheduling_overhead_us: float = 10.0
    serial_overhead_us: float = 4.0
    track_history: bool = True

    def validate(self, gpus: int = 1, serving: bool = False) -> None:
        """Reject configurations that cannot mean anything.

        ``gpus`` is the device count of the session being configured;
        ``serving`` is True when the config backs a serving fleet (the
        only context in which admission control exists).
        """
        if not isinstance(gpus, int) or isinstance(gpus, bool):
            raise ConfigError(
                f"gpus must be an integer, got {type(gpus).__name__}"
            )
        if gpus < 1:
            raise ConfigError(f"gpus must be >= 1, got {gpus}")
        if self.admission is not None and not serving:
            raise ConfigError(
                "admission control is a serving knob: "
                f"admission={self.admission.value!r} has no meaning on a"
                " compute session — submit through repro.serve instead"
            )
        for knob in ("max_retries", "retry_backoff_us", "shed_watermark"):
            if getattr(self, knob) is not None and not serving:
                raise ConfigError(
                    f"{knob} is a serving fault-management knob with no"
                    " meaning on a compute session — submit through"
                    " repro.serve instead"
                )
        if self.max_retries is not None and (
            not isinstance(self.max_retries, int)
            or isinstance(self.max_retries, bool)
            or self.max_retries < 0
        ):
            raise ConfigError(
                "max_retries must be a non-negative integer, got"
                f" {self.max_retries!r}"
            )
        if self.retry_backoff_us is not None and self.retry_backoff_us < 0:
            raise ConfigError("retry_backoff_us must be >= 0")
        if self.shed_watermark is not None and not (
            0.0 <= self.shed_watermark <= 1.0
        ):
            raise ConfigError(
                "shed_watermark is a capacity fraction and must lie in"
                f" [0, 1], got {self.shed_watermark!r}"
            )
        if self.scheduling_overhead_us < 0 or self.serial_overhead_us < 0:
            raise ConfigError("scheduler overheads must be >= 0")
        if (
            not isinstance(self.movement_window, int)
            or isinstance(self.movement_window, bool)
            or self.movement_window < 0
        ):
            raise ConfigError(
                "movement_window must be a non-negative integer, got"
                f" {self.movement_window!r}"
            )

    def resolve_placement(
        self, serving: bool = False
    ) -> DevicePlacementPolicy:
        """Pin the placement policy down for one session kind."""
        if self.placement is not None:
            return self.placement
        return (
            DevicePlacementPolicy.LEAST_LOADED
            if serving
            else DevicePlacementPolicy.MIN_TRANSFER
        )

    def resolve_movement(
        self, spec: GPUSpec, serial: bool = False
    ) -> MovementPolicy:
        """Pin the movement policy down for a concrete device.

        Explicit ``movement`` wins.  Otherwise the legacy prefetch knob
        maps onto the new axis: ``NONE`` -> page faults; ``AUTO`` on the
        serial scheduler also means faults (the original scheduler
        predates the automatic prefetcher); everything else prefetches
        eagerly.  Devices without a fault mechanism always degrade to
        eager copies — there is nothing lazy to fall back on.
        """
        if self.movement is not None:
            policy = self.movement
        elif self.prefetch is PrefetchPolicy.NONE:
            policy = MovementPolicy.PAGE_FAULT
        elif serial and self.prefetch is not PrefetchPolicy.SYNC:
            policy = MovementPolicy.PAGE_FAULT
        else:
            policy = MovementPolicy.EAGER_PREFETCH
        if (
            policy is MovementPolicy.PAGE_FAULT
            and not spec.supports_page_faults
        ):
            policy = MovementPolicy.EAGER_PREFETCH
        return policy

    def resolve_prefetch(self, spec: GPUSpec) -> PrefetchPolicy:
        """Pin AUTO down for a concrete device.

        Maxwell has no page-fault mechanism: every policy degrades to
        eager synchronous-style copies ahead of the kernel (the paper:
        "on the GTX 960, data is necessarily transferred ahead of the
        computation").
        """
        if not spec.supports_page_faults:
            return PrefetchPolicy.SYNC
        return self.prefetch
