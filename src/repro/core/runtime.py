"""The legacy ``GrCUDARuntime`` facade — a deprecation shim.

The runtime's real implementation lives in :class:`repro.session.Session`,
the single entry point across single-GPU, multi-GPU and serving use.
``GrCUDARuntime`` remains as a thin alias so existing host programs keep
working::

    from repro import GrCUDARuntime

    rt = GrCUDARuntime(gpu="GTX 1660 Super")          # DeprecationWarning
    X = rt.array(N)
    K1 = rt.build_kernel(square_fn, "square", "ptr, sint32")
    K1(num_blocks, num_threads)(X, N)                 # async launch
    result = X[0]                                     # syncs just enough

New code should write ``Session(gpus=1, ...)`` instead — same surface,
and the device count becomes configuration rather than a class choice.
"""

from __future__ import annotations

import warnings

from repro.core.policies import SchedulerConfig
from repro.gpusim.specs import GPUSpec
from repro.kernels.registry import KernelRegistry
from repro.session import Session


class GrCUDARuntime(Session):
    """One GPU runtime instance (deprecated alias of a 1-GPU Session)."""

    def __init__(
        self,
        gpu: str | GPUSpec = "GTX 1660 Super",
        config: SchedulerConfig | None = None,
        registry: KernelRegistry | None = None,
    ) -> None:
        warnings.warn(
            "GrCUDARuntime is deprecated; use repro.Session(gpus=1, ...)"
            " — one entry point across single-GPU, multi-GPU and serving",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(gpus=1, gpu=gpu, config=config, registry=registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GrCUDARuntime {self.spec.name}"
            f" {self.config.execution.value}>"
        )
