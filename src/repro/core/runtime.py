"""The GrCUDA runtime facade — the library's main entry point.

Typical use, mirroring the paper's Fig. 4::

    from repro import GrCUDARuntime

    rt = GrCUDARuntime(gpu="GTX 1660 Super")          # parallel scheduler
    X = rt.array(N)
    K1 = rt.build_kernel(square_fn, "square", "ptr, sint32")
    K1(num_blocks, num_threads)(X, N)                 # async launch
    result = X[0]                                     # syncs just enough

The runtime wires together one simulated device, one engine, one
execution context (serial or parallel) and the kernel/array factories.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.context import (
    ExecutionContext,
    ParallelExecutionContext,
    SerialExecutionContext,
)
from repro.core.element import LibraryCallElement
from repro.core.policies import ExecutionPolicy, SchedulerConfig
from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.timeline import Timeline
from repro.kernels.kernel import Kernel
from repro.kernels.profile import CostModel
from repro.kernels.registry import KernelRegistry, build_kernel
from repro.memory.array import AccessKind, DeviceArray


class GrCUDARuntime:
    """One GPU runtime instance: device + engine + scheduler."""

    def __init__(
        self,
        gpu: str | GPUSpec = "GTX 1660 Super",
        config: SchedulerConfig | None = None,
        registry: KernelRegistry | None = None,
    ) -> None:
        spec = gpu_by_name(gpu) if isinstance(gpu, str) else gpu
        self.spec = spec
        self.config = config or SchedulerConfig()
        self.device = Device(spec)
        self.engine = SimEngine(self.device)
        self.registry = registry
        self.context: ExecutionContext = self._build_context()
        self._arrays: list[DeviceArray] = []
        #: contexts retired by :meth:`renew_context` (re-entrancy count)
        self.context_generation = 0

    def _build_context(self) -> ExecutionContext:
        if self.config.execution is ExecutionPolicy.SERIAL:
            return SerialExecutionContext(self.engine, self.config)
        return ParallelExecutionContext(self.engine, self.config)

    def renew_context(
        self, op_tags: dict | None = None, drain: bool = True
    ) -> ExecutionContext:
        """Replace the execution context with a fresh one (re-entrant use).

        A long-lived runtime serving many independent task graphs (see
        :mod:`repro.serve`) reuses the device and engine while giving
        each admitted graph its own DAG, stream manager and kernel
        history — the isolation a tenant would get from a private
        runtime, without re-building the device.  By default the old
        context is drained first and its streams are reclaimed from the
        engine, so the scheduling loop does not scan ever-growing
        dead-stream lists; arrays still registered with the runtime are
        re-attached to the new context.

        ``drain=False`` swaps contexts *without* synchronizing: the old
        context's submitted work stays in flight and its arrays keep
        their hooks, so several contexts can coexist on the engine (the
        serving layer's batch path).  The caller then owns draining the
        engine and reclaiming the retired contexts' streams.

        ``op_tags`` (e.g. ``{"tenant": "a"}``) are merged into every op
        the new context submits, keeping shared-engine timeline records
        attributable.
        """
        if drain:
            self.context.sync()
            old = self.context
            if isinstance(old, ParallelExecutionContext):
                self.engine.reclaim_streams(old.streams.streams)
        ctx = self._build_context()
        if op_tags:
            ctx.op_tags.update(op_tags)
        if drain:
            for arr in self._arrays:
                ctx.attach(arr)
        self.context = ctx
        self.context_generation += 1
        return ctx

    def _dispatch_launch(self, launch) -> None:
        """Route a kernel launch to the *current* context.

        Kernels keep working across :meth:`renew_context` because they
        bind this dispatcher rather than one context's ``launch``."""
        self.context.launch(launch)

    # -- arrays ---------------------------------------------------------------

    def array(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float32,
        name: str = "",
        materialize: bool = True,
    ) -> DeviceArray:
        """Allocate a UM-backed device array managed by this runtime.

        ``materialize=False`` declares the geometry without backing host
        memory — for timing-only sweeps at scales that would not fit in
        host RAM.  All scheduling and transfer costs stay exact.
        """
        arr = DeviceArray(
            shape,
            dtype=dtype,
            device=self.device,
            name=name,
            materialize=materialize,
        )
        self.context.attach(arr)
        self._arrays.append(arr)
        return arr

    def adopt_array(self, arr: DeviceArray) -> None:
        """Track an externally-created array on this runtime's device so
        :meth:`free_arrays` releases it (used by executors that manage
        coherence manually, e.g. the serving layer's replay path)."""
        self._arrays.append(arr)

    def free_arrays(self) -> None:
        """Release every array allocated through this runtime."""
        for arr in self._arrays:
            arr.free()
        self._arrays.clear()

    # -- kernels --------------------------------------------------------------

    def build_kernel(
        self,
        code: Callable[..., None] | str,
        name: str,
        signature: str,
        cost_model: CostModel | None = None,
    ) -> Kernel:
        """GrCUDA's ``buildkernel``: bind code + NIDL signature to this
        runtime's scheduler."""
        return build_kernel(
            code,
            name,
            signature,
            cost_model=cost_model,
            launch_handler=self._dispatch_launch,
            registry=self.registry,
        )

    # -- library functions -------------------------------------------------------

    def library_call(
        self,
        fn: Callable[[], None],
        accesses: list[tuple[DeviceArray, AccessKind]],
        label: str = "library",
        stream_aware: bool = True,
        cost_seconds: float = 0.0,
    ) -> None:
        """Invoke a pre-registered library function (section IV-A)."""
        element = LibraryCallElement(
            fn=fn,
            accesses=accesses,
            label=label,
            stream_aware=stream_aware,
            cost_seconds=cost_seconds,
        )
        ctx = self.context
        if isinstance(ctx, ParallelExecutionContext):
            ctx.library_call(element)
        else:
            ctx.sync()
            self.engine.charge_host_time(cost_seconds)
            fn()

    # -- execution control ---------------------------------------------------------

    def sync(self) -> None:
        """Wait for all in-flight GPU work (``cudaDeviceSynchronize``)."""
        self.context.sync()

    @property
    def clock(self) -> float:
        """Current virtual time in seconds."""
        return self.engine.clock

    @property
    def timeline(self) -> Timeline:
        return self.engine.timeline

    @property
    def dag(self):
        return self.context.dag

    @property
    def history(self):
        """Per-kernel execution history (section IV-A); use
        ``history.recommend_block_size(...)`` for the section-VI
        block-size heuristic."""
        return self.context.history

    def elapsed(self) -> float:
        """Device execution time so far: first scheduling to last
        completion (the paper's execution-time definition)."""
        return self.engine.timeline.makespan

    def reset_measurement(self) -> None:
        """Clear the timeline (e.g. after a warm-up iteration)."""
        self.sync()
        self.engine.timeline.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GrCUDARuntime {self.spec.name}"
            f" {self.config.execution.value}>"
        )
