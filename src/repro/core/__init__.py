"""The paper's primary contribution: a runtime DAG scheduler for GPU
computations with automatic dependency inference, transparent stream
management and transfer/compute overlap.

Public entry point: :class:`repro.core.runtime.GrCUDARuntime`.
"""

from repro.core.element import (
    ComputationalElement,
    KernelElement,
    ArrayAccessElement,
    LibraryCallElement,
)
from repro.core.dag import ComputationDAG, DependencyEdge
from repro.core.policies import (
    ExecutionPolicy,
    NewStreamPolicy,
    ParentStreamPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro.core.streams import StreamManager
from repro.core.context import (
    ExecutionContext,
    SerialExecutionContext,
    ParallelExecutionContext,
)
from repro.core.race import check_no_races, find_races


def __getattr__(name: str):
    # Imported lazily (PEP 562): the GrCUDARuntime shim subclasses
    # repro.session.Session, whose import of the context/policy modules
    # initializes this package — an eager import here would be circular.
    if name == "GrCUDARuntime":
        from repro.core.runtime import GrCUDARuntime

        return GrCUDARuntime
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "ComputationalElement",
    "KernelElement",
    "ArrayAccessElement",
    "LibraryCallElement",
    "ComputationDAG",
    "DependencyEdge",
    "ExecutionPolicy",
    "NewStreamPolicy",
    "ParentStreamPolicy",
    "PrefetchPolicy",
    "SchedulerConfig",
    "StreamManager",
    "ExecutionContext",
    "SerialExecutionContext",
    "ParallelExecutionContext",
    "GrCUDARuntime",
    "check_no_races",
    "find_races",
]
