"""Data-race detector over simulated timelines.

A correct scheduler never lets two operations that conflict on an array
(at least one writes it) overlap in time without an ordering between
them.  Because the simulator records exact start/end times, conflicting
kernels that *overlap* are precisely those the scheduler failed to order
— there is no false positive from "could have overlapped".

This is a verification tool: the parallel scheduler is exercised against
it in the test suite (every benchmark, every policy) to prove the
dependency inference of section IV-A is sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataRaceError
from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord


@dataclass(frozen=True)
class Race:
    """Two overlapping, conflicting kernel executions."""

    first: TimelineRecord
    second: TimelineRecord
    array_names: tuple[str, ...]

    def describe(self) -> str:
        arrays = ", ".join(self.array_names)
        return (
            f"{self.first.label!r} [{self.first.start:.6f},"
            f" {self.first.end:.6f}] overlaps {self.second.label!r}"
            f" [{self.second.start:.6f}, {self.second.end:.6f}]"
            f" conflicting on {arrays}"
        )


def _conflict(a: TimelineRecord, b: TimelineRecord) -> tuple[str, ...]:
    """Names of arrays on which ``a`` and ``b`` conflict (RW/WR/WW)."""
    ra, wa = a.meta.get("reads", frozenset()), a.meta.get("writes", frozenset())
    rb, wb = b.meta.get("reads", frozenset()), b.meta.get("writes", frozenset())
    conflicting = (wa & (rb | wb)) | (wb & ra)
    if not conflicting:
        return ()
    names = {**a.meta.get("array_names", {}), **b.meta.get("array_names", {})}
    return tuple(sorted(names.get(x, f"array@{x:#x}") for x in conflicting))


def find_races(timeline: Timeline) -> list[Race]:
    """All pairs of overlapping, conflicting records.

    Covers kernel-kernel conflicts and kernel-transfer conflicts (a
    host-to-device migration writes the device copy: a kernel touching
    the same array must not overlap it).
    """
    annotated = [
        r
        for r in timeline
        if "reads" in r.meta
        and (r.kind is IntervalKind.KERNEL or r.kind.is_transfer)
    ]
    annotated.sort(key=lambda r: r.start)
    races: list[Race] = []
    for i, a in enumerate(annotated):
        for b in annotated[i + 1 :]:
            if b.start >= a.end:
                break  # sorted: no later record can overlap a
            if a.overlaps(b):
                arrays = _conflict(a, b)
                if arrays:
                    races.append(Race(first=a, second=b, array_names=arrays))
    return races


def check_no_races(timeline: Timeline) -> None:
    """Raise :class:`DataRaceError` if the timeline contains a race."""
    races = find_races(timeline)
    if races:
        detail = "\n  ".join(r.describe() for r in races[:10])
        raise DataRaceError(
            f"{len(races)} data race(s) detected:\n  {detail}"
        )
