"""Computational elements: the vertices of the computation DAG.

Section IV-A: "Vertices of the DAG are computational elements: GPU
kernels, memory accesses by the CPU host program to GrCUDA UM-backed
arrays, and pre-registered or user-defined library functions."

Each element tracks its *dependency set* — initially all of its array
arguments; an argument is removed when a later computation writes it,
after which the element can no longer introduce dependencies through that
argument (Fig. 3 semantics).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.memory.array import AccessKind, DeviceArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.stream import SimEvent, SimStream
    from repro.kernels.kernel import KernelLaunch

_element_counter = itertools.count()


class ComputationalElement:
    """Base class for DAG vertices.

    Attributes
    ----------
    accesses:
        ``(array, access-kind)`` pairs — how this element touches each of
        its array arguments.  Scalars never appear (passed by copy).
    dependency_set:
        ``array-id -> access-kind`` map of arguments that can still
        introduce dependencies on this element.
    stream:
        Stream the element was scheduled on (None until scheduled, and
        for CPU accesses, which run on the host).
    finish_event:
        Event recorded right after the element's operations; later
        elements on other streams synchronize on it.
    children_count:
        Number of elements scheduled so far that depend on this one; the
        stream manager gives the parent's stream to the *first* child.

    The dependency set is mutated only by :class:`repro.core.dag.ComputationDAG`,
    which mirrors every entry into its per-array writer/reader indexes;
    long programs keep thousands of elements alive in those indexes, so
    the hierarchy is ``__slots__``-ed.
    """

    __slots__ = (
        "element_id",
        "label",
        "accesses",
        "_arrays",
        "dependency_set",
        "stream",
        "finish_event",
        "children_count",
        "active",
    )

    def __init__(
        self,
        accesses: list[tuple[DeviceArray, AccessKind]],
        label: str = "",
    ) -> None:
        self.element_id: int = next(_element_counter)
        self.label = label or f"elem{self.element_id}"
        self.accesses: tuple[tuple[DeviceArray, AccessKind], ...] = tuple(
            accesses
        )
        # Merge duplicate arrays (e.g. K(X, X)): a write wins over a read.
        merged: dict[int, AccessKind] = {}
        self._arrays: dict[int, DeviceArray] = {}
        for array, kind in accesses:
            self._arrays[id(array)] = array
            prev = merged.get(id(array))
            if prev is None:
                merged[id(array)] = kind
            elif prev is not kind:
                merged[id(array)] = AccessKind.READ_WRITE
        self.dependency_set: dict[int, AccessKind] = merged
        self.stream: "SimStream | None" = None
        self.finish_event: "SimEvent | None" = None
        self.children_count: int = 0
        self.active: bool = True

    # -- dependency-set queries (Fig. 3) -----------------------------------

    def uses(self, array: DeviceArray) -> AccessKind | None:
        """Access kind through which ``array`` is still dependency-visible."""
        return self.dependency_set.get(id(array))

    def writes_in_set(self, array: DeviceArray) -> bool:
        kind = self.uses(array)
        return kind is not None and kind.writes

    def reads_only_in_set(self, array: DeviceArray) -> bool:
        return self.uses(array) is AccessKind.READ

    def remove_from_set(self, array: DeviceArray) -> None:
        self.dependency_set.pop(id(array), None)

    @property
    def dependency_set_empty(self) -> bool:
        return not self.dependency_set

    def array_for_id(self, array_id: int) -> DeviceArray:
        return self._arrays[array_id]

    # -- classification ------------------------------------------------------

    @property
    def is_kernel(self) -> bool:
        return isinstance(self, KernelElement)

    @property
    def is_cpu_access(self) -> bool:
        return isinstance(self, ArrayAccessElement)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        deps = {
            self._arrays[a].name: k.value for a, k in self.dependency_set.items()
        }
        return f"<{type(self).__name__} {self.label} dep_set={deps}>"


class KernelElement(ComputationalElement):
    """A GPU kernel invocation."""

    __slots__ = ("launch",)

    def __init__(self, launch: "KernelLaunch") -> None:
        super().__init__(list(launch.array_args), label=launch.label)
        self.launch = launch


class ArrayAccessElement(ComputationalElement):
    """A CPU access to a UM array that conflicts with in-flight GPU work.

    Section IV-A: accesses that introduce no dependency are executed
    immediately *without* becoming DAG elements; the execution context
    implements that fast path, so every constructed ArrayAccessElement
    really is a DAG vertex.
    """

    __slots__ = ("array", "kind", "touched_bytes")

    def __init__(
        self, array: DeviceArray, kind: AccessKind, touched_bytes: int
    ) -> None:
        super().__init__([(array, kind)], label=f"cpu:{array.name}")
        self.array = array
        self.kind = kind
        self.touched_bytes = touched_bytes


class LibraryCallElement(ComputationalElement):
    """A pre-registered host library function (e.g. RAPIDS).

    Stream-aware libraries expose the execution stream in their API and
    can be scheduled asynchronously like kernels; others must run
    synchronously to guarantee correctness (section IV-A).
    """

    __slots__ = ("fn", "stream_aware", "cost_seconds")

    def __init__(
        self,
        fn: Callable[..., None],
        accesses: list[tuple[DeviceArray, AccessKind]],
        label: str,
        stream_aware: bool,
        cost_seconds: float = 0.0,
    ) -> None:
        super().__init__(accesses, label=label)
        self.fn = fn
        self.stream_aware = stream_aware
        self.cost_seconds = cost_seconds
