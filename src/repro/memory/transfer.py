"""Transfer planning: turning coherence misses into simulator operations.

The planner decides, for a kernel about to run or a CPU access about to
happen, which bytes must move in which direction, and builds the
corresponding :class:`~repro.gpusim.ops.TransferOp` objects (or page-fault
byte counts when the data is left to be migrated on demand).

:class:`MigrationTracker` solves the shared-input hazard every execution
mode faces: when stream A issues the migration of an array that a kernel
on stream B also reads, B must wait for A's copy to land.  The tracker
hands out the per-array migration events; the runtime scheduler, the
CUDA-graph executor and the hand-tuned baseline all use it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gpusim.ops import TransferDirection, TransferKind, TransferOp
from repro.memory.array import AccessKind, DeviceArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.engine import SimEngine
    from repro.gpusim.stream import SimEvent, SimStream


class TransferPlanner:
    """Stateless helper building transfer operations for coherence misses."""

    @staticmethod
    def htod_for_kernel(
        arrays: list[tuple[DeviceArray, AccessKind]],
        kind: TransferKind,
    ) -> list[TransferOp]:
        """Host-to-device transfers required before a kernel launch.

        Only arrays whose device copy is stale need to move, and only if
        the kernel actually *reads* them: an array that is exclusively
        written can be produced entirely on the device (its stale device
        copy will simply be overwritten).

        The coherence state transitions are applied when the transfer
        op completes on the simulated device (``apply_fn``), not when
        planned, so that concurrent planning cannot double-charge.
        """
        ops: list[TransferOp] = []
        seen: set[int] = set()
        for array, access in arrays:
            if not access.reads or id(array) in seen:
                continue
            seen.add(id(array))
            stale = array.stale_device_bytes()
            if stale <= 0:
                continue
            op = TransferOp(
                label=f"HtoD:{array.name}",
                direction=TransferDirection.HOST_TO_DEVICE,
                nbytes=stale,
                kind=kind,
                apply_fn=array.mark_gpu_read,
            )
            # Annotations for the race detector: a HtoD migration writes
            # the device copy, so it conflicts with any concurrent kernel
            # touching the array.
            op.info["writes"] = frozenset({id(array)})
            op.info["reads"] = frozenset()
            op.info["array_names"] = {id(array): array.name}
            ops.append(op)
        return ops

    @staticmethod
    def fault_bytes_for_kernel(
        arrays: list[tuple[DeviceArray, AccessKind]],
    ) -> float:
        """Bytes migrated on demand if nothing is prefetched (Pascal+ page
        faults).  Coherence transitions still happen — via the kernel's
        own read/write marks — so only the byte count is returned."""
        total = 0.0
        for array, access in arrays:
            if access.reads:
                total += array.stale_device_bytes()
        return total

    @staticmethod
    def dtoh_for_cpu_access(
        array: DeviceArray, touched_bytes: int
    ) -> TransferOp | None:
        """Device-to-host migration for a CPU access, or None if the host
        copy is already valid.  Page-granular, like real UM."""
        stale = array.stale_host_bytes(touched_bytes)
        if stale <= 0:
            return None
        return TransferOp(
            label=f"DtoH:{array.name}",
            direction=TransferDirection.DEVICE_TO_HOST,
            nbytes=stale,
            kind=TransferKind.WRITEBACK,
            apply_fn=array.mark_cpu_read,
        )

    @staticmethod
    def cpu_access_migration(
        array: DeviceArray, kind: AccessKind, touched_bytes: int
    ) -> TransferOp | None:
        """Migration (if any) required before a CPU access.

        A *pure write covering the whole array* replaces every value, so
        nothing needs to migrate back — the device copy is simply
        invalidated (this is what explicit HtoD copies into UM buffers
        achieve, and what streaming workloads that refresh their inputs
        every iteration rely on).  Reads and partial writes migrate the
        touched pages (UM performs a page-granular read-modify-write).
        """
        if (
            kind is AccessKind.WRITE
            and touched_bytes >= array.nbytes
        ):
            return None
        return TransferPlanner.dtoh_for_cpu_access(array, touched_bytes)


class MigrationTracker:
    """Cross-stream ordering for in-flight host-to-device migrations.

    When a kernel's stream issues the copy of a shared input, kernels on
    *other* streams reading the same array must wait for that copy; the
    issuing stream itself is already ordered by stream FIFO.  Every
    execution mode (runtime scheduler, graph replay, hand-tuned host
    code) needs this — forgetting it is a data race the race detector
    now catches (transfers carry write-sets).
    """

    def __init__(self) -> None:
        self._pending: dict[int, tuple["SimEvent", "SimStream"]] = {}

    def note_migrations(
        self,
        engine: "SimEngine",
        stream: "SimStream",
        arrays: list[DeviceArray],
        label: str = "migrate",
    ) -> None:
        """Record an event after migrations just submitted on ``stream``
        and remember it for each migrated array."""
        if not arrays:
            return
        event = engine.record_event(stream, label=f"{label}-done")
        for array in arrays:
            self._pending[id(array)] = (event, stream)

    def wait_for_arrays(
        self,
        engine: "SimEngine",
        stream: "SimStream",
        arrays: list[DeviceArray],
    ) -> None:
        """Make ``stream`` wait for any in-flight migration of ``arrays``
        issued on another stream."""
        for array in arrays:
            pending = self._pending.get(id(array))
            if pending is None:
                continue
            event, origin = pending
            if origin is not stream and not event.complete:
                engine.wait_event(stream, event)
