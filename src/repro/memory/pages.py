"""Coherence state machine for unified-memory arrays.

Unified memory keeps one logical copy of each array; physically there may
be a host copy, a device copy, or both.  We track validity with an
MSI-like protocol:

====================  ==========  ============
state                 host copy   device copy
====================  ==========  ============
``HOST_ONLY``         valid       stale/absent
``DEVICE_ONLY``       stale       valid
``SHARED``            valid       valid
====================  ==========  ============

Transitions:

* GPU read: needs device validity -> ``SHARED`` (from ``HOST_ONLY``,
  after migrating the stale bytes).
* GPU write: ``DEVICE_ONLY`` (host copy invalidated).
* CPU read: needs host validity -> ``SHARED`` (after migrating back).
* CPU write: ``HOST_ONLY`` (device copy invalidated).

CPU accesses migrate at page granularity (UM's unit of migration is the
OS page, batched by the driver into ~2 MB chunks); GPU accesses migrate
whole arrays, which matches both prefetching and the fact that the
paper's kernels stream their entire inputs.
"""

from __future__ import annotations

import enum

#: Migration granularity for CPU-side accesses.  The CUDA driver batches
#: UM migrations into large chunks; 2 MB (the GPU large-page size) is the
#: customary effective unit.
PAGE_SIZE_BYTES = 2 * 1024 * 1024


class CoherenceState(enum.Enum):
    """Validity of the host/device copies of one array."""

    HOST_ONLY = "host_only"
    DEVICE_ONLY = "device_only"
    SHARED = "shared"

    @property
    def host_valid(self) -> bool:
        return self in (CoherenceState.HOST_ONLY, CoherenceState.SHARED)

    @property
    def device_valid(self) -> bool:
        return self in (CoherenceState.DEVICE_ONLY, CoherenceState.SHARED)


def after_gpu_read(state: CoherenceState) -> CoherenceState:
    """State after the GPU has read the array (device copy made valid)."""
    if state is CoherenceState.HOST_ONLY:
        return CoherenceState.SHARED
    return state


def after_gpu_write(state: CoherenceState) -> CoherenceState:
    """State after a GPU kernel wrote the array."""
    return CoherenceState.DEVICE_ONLY


def after_cpu_read(state: CoherenceState) -> CoherenceState:
    """State after the CPU read the array (host copy made valid)."""
    if state is CoherenceState.DEVICE_ONLY:
        return CoherenceState.SHARED
    return state


def after_cpu_write(state: CoherenceState) -> CoherenceState:
    """State after the CPU wrote the array."""
    return CoherenceState.HOST_ONLY


def pages_for_bytes(nbytes: int) -> int:
    """Number of migration pages covering ``nbytes``."""
    if nbytes <= 0:
        return 0
    return -(-nbytes // PAGE_SIZE_BYTES)
