"""Unified-memory substrate.

GrCUDA backs its arrays with CUDA Unified Memory (UM): a single address
space visible from host and device, kept coherent by page migration.  This
package models that with an MSI-style two-copy coherence protocol plus
page-granular CPU access costs:

* a :class:`DeviceArray` wraps a real numpy buffer (so kernels compute
  real results) and tracks which copies (host / device) are valid;
* GPU reads require a valid device copy — obtained by prefetch, eager
  copy, or on-demand page faults depending on architecture and policy;
* CPU accesses touch single pages, not whole arrays, mirroring UM's
  page-migration granularity;
* every executor declares its accesses to the
  :class:`~repro.memory.coherence.CoherenceEngine`, which plans the
  transfers its :class:`~repro.memory.coherence.MovementPolicy` calls
  for and applies state transitions on operation completion.
"""

from repro.memory.pages import CoherenceState, PAGE_SIZE_BYTES
from repro.memory.array import DeviceArray, AccessKind
from repro.memory.coherence import AcquirePlan, CoherenceEngine, MovementPolicy

__all__ = [
    "CoherenceState",
    "PAGE_SIZE_BYTES",
    "DeviceArray",
    "AccessKind",
    "AcquirePlan",
    "CoherenceEngine",
    "MovementPolicy",
]
