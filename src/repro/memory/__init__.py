"""Unified-memory substrate.

GrCUDA backs its arrays with CUDA Unified Memory (UM): a single address
space visible from host and device, kept coherent by page migration.  This
package models that with an MSI-style two-copy coherence protocol plus
page-granular CPU access costs:

* a :class:`DeviceArray` wraps a real numpy buffer (so kernels compute
  real results) and tracks which copies (host / device) are valid;
* GPU reads require a valid device copy — obtained by prefetch, eager
  copy, or on-demand page faults depending on architecture and policy;
* CPU accesses touch single pages, not whole arrays, mirroring UM's
  page-migration granularity.
"""

from repro.memory.pages import CoherenceState, PAGE_SIZE_BYTES
from repro.memory.array import DeviceArray, AccessKind
from repro.memory.transfer import TransferPlanner

__all__ = [
    "CoherenceState",
    "PAGE_SIZE_BYTES",
    "DeviceArray",
    "AccessKind",
    "TransferPlanner",
]
