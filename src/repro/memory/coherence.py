"""The unified coherence & data-movement engine.

Every execution mode — the serial and parallel contexts, CUDA-graph
replay, the hand-tuned baseline, the multi-GPU scheduler and the serving
layer's capture replay — moves the same bytes for the same reasons:
a computation is about to read an array whose copy on its device is
stale, or host code is about to touch an array the GPU owns.  This
module owns that logic once, behind one :class:`CoherenceEngine` API:

* executors *declare accesses* (:meth:`CoherenceEngine.acquire` before
  submitting a compute op, :meth:`CoherenceEngine.release` to bind the
  resulting state transitions to it, :meth:`CoherenceEngine.cpu_access`
  for host-side touches);
* the engine *plans* the :class:`~repro.gpusim.ops.TransferOp` s a
  pluggable :class:`MovementPolicy` calls for, *orders* them against
  in-flight migrations issued on other streams (the shared-input hazard
  previously handled by the per-executor ``MigrationTracker`` copies),
  and *applies* coherence-state transitions when the operation
  completes on the simulated device — never when planned — so that
  concurrent planning observes a consistent split between the
  *committed* state (what the hardware has done) and the *planned*
  overlay (what is already in flight).

Movement policies
-----------------

``PAGE_FAULT``
    Lazy: stale pages reach the GPU through the Pascal+ fault engine,
    charged to the faulting kernel itself.  This is plain UM behaviour
    and what a launched CUDA graph gets (graphs do not prefetch).
``EAGER_PREFETCH``
    Issue a host-to-device copy as soon as the DAG schedules a consumer
    (``cudaMemPrefetchAsync`` ahead of the kernel) — the paper's
    prefetching mode.  On pre-Pascal devices the copy is a synchronous
    eager transfer; the fault path does not exist there.
``BATCHED``
    Like ``EAGER_PREFETCH``, but stale inputs are coalesced into a
    single transfer operation (adjacent-array copies ride one DMA
    submission), trading per-op overhead for transfer granularity.
    With ``window=0`` (the default) coalescing is per *acquire*: one
    merged transfer per computation.  With ``window=N > 0`` the engine
    runs a **submission-window coalescer**: the stale inputs of up to
    ``N`` adjacent acquires are deferred onto one dedicated transfer
    stream and merged into a single DMA submission, flushed when the
    window fills, when the host synchronizes (engine pre-sync hooks),
    on a CPU access, or at a policy boundary (an acquire under a
    different policy or transfer kind).  Consumers park on the window's
    pre-created event, so correctness is unchanged — only the number of
    transfer submissions shrinks.

All three are functionally identical — values live in one numpy buffer;
the policies only decide *when* and *in how many pieces* the simulator
charges the movement.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.gpusim.ops import (
    Operation,
    TransferDirection,
    TransferKind,
    TransferOp,
)
from repro.gpusim.stream import SimEvent
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.pages import PAGE_SIZE_BYTES
from repro.obs.counters import CounterRegistry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.engine import SimEngine
    from repro.gpusim.stream import SimStream
    from repro.multigpu.array import MultiGpuArray


class MovementPolicy(enum.Enum):
    """How the runtime moves stale data to the device (see module docs)."""

    PAGE_FAULT = "page-fault"
    EAGER_PREFETCH = "eager-prefetch"
    BATCHED = "batched"


_plan_tokens = itertools.count()


@dataclass
class _PlannedState:
    """In-flight overlay over one array's committed coherence state.

    ``device_valid`` / ``host_valid`` describe what the state *will be*
    once everything already submitted completes; ``event`` (plus the
    issuing ``stream``) orders later consumers on other streams behind
    the in-flight migration.  ``token`` guards the completion callback:
    a newer plan for the same array supersedes the cleanup of an older
    one.
    """

    device_valid: bool
    host_valid: bool
    event: "SimEvent | None" = None
    stream: "SimStream | None" = None
    token: int = field(default_factory=lambda: next(_plan_tokens))


@dataclass
class AcquirePlan:
    """Outcome of one :meth:`CoherenceEngine.acquire` declaration.

    ``fault_bytes`` must be charged to the compute op (the page-fault
    path migrates *during* execution); ``completion_marks`` are the
    state transitions :meth:`CoherenceEngine.release` binds to the op so
    they apply at completion time.
    """

    fault_bytes: float = 0.0
    completion_marks: list[Callable[[], None]] = field(default_factory=list)
    #: (array, device) replicas this acquire materializes through the
    #: fault engine — the caller binds the compute op's finish event to
    #: them via :meth:`CoherenceEngine.register_fault_ordering`, so
    #: later consumers sourcing from the replica wait for the kernel
    #: that actually creates it
    fault_replicas: list[tuple[object, int]] = field(default_factory=list)


@dataclass
class _WindowGroup:
    """One pending coalescing group of the submission-window coalescer.

    Single-GPU windows use one group (host -> device 0); multi-GPU
    windows keep one group per (source, destination) pair — that is the
    unit one merged DMA submission can cover.  ``event`` is created
    *before* any consumer submits (consumers park on it) and recorded on
    the window stream right after the merged transfer at flush time.
    ``source_events`` order the flush behind in-flight materializations
    of the source replicas (multi-GPU peer sources only).
    """

    arrays: list = field(default_factory=list)
    event: "SimEvent | None" = None
    kind: "TransferKind | None" = None
    source_events: list = field(default_factory=list)


@dataclass
class _MultiPlanned:
    """In-flight overlay over a :class:`MultiGpuArray`'s committed
    location set.

    ``valid_on`` / ``host_valid`` describe the location set *once
    everything already submitted completes*; the committed set on the
    array itself moves only when operations complete on the simulated
    device.  ``outstanding`` counts in-flight transitions: when the last
    one commits, committed == planned again and the overlay retires.
    ``epoch`` guards completion callbacks — a full host overwrite bumps
    the array's epoch, so transitions planned before it are dead and
    must not resurrect device replicas when their ops finally land.
    """

    valid_on: set[int]
    host_valid: bool
    epoch: int
    outstanding: int = 0


class CoherenceEngine:
    """Owns all host<->device (and device<->device) coherence traffic
    for one executor on one :class:`~repro.gpusim.engine.SimEngine`.

    The engine keeps two views of every array it has touched:

    * the **committed** state — ``array.state`` (or the location set of
      a :class:`~repro.multigpu.array.MultiGpuArray`), updated only by
      completion callbacks on simulator operations;
    * the **planned** overlay — what the state will become once already
      submitted work lands, updated eagerly at planning time so that
      concurrent planning never double-moves the same bytes.

    Cross-stream ordering (the shared-input hazard): when the migration
    of an array was issued on stream A and a computation on stream B
    also reads that array, ``acquire`` makes B wait on the migration's
    event.  The issuing stream itself is already ordered by stream FIFO.
    """

    def __init__(
        self,
        engine: "SimEngine",
        policy: MovementPolicy = MovementPolicy.EAGER_PREFETCH,
        op_tags: dict | None = None,
        window: int = 0,
    ) -> None:
        self.engine = engine
        self.policy = policy
        #: submission-window size for cross-acquire BATCHED coalescing:
        #: 0 flushes per acquire (classic BATCHED); N > 0 merges the
        #: stale inputs of up to N adjacent acquires into one transfer
        self.window = int(window)
        #: extra key/values stamped on every transfer op this engine
        #: submits (shared by reference with the owning executor, e.g.
        #: the tenant tags of ``repro.serve``)
        self.op_tags = op_tags if op_tags is not None else {}
        #: planned overlays for single-device arrays, by ``id(array)``
        self._planned: dict[int, _PlannedState] = {}
        #: newest plan token committed per array: completion callbacks
        #: of *superseded* plans (e.g. a migration invalidated by a full
        #: host overwrite mid-flight) must not apply their transition
        self._committed_gen: dict[int, int] = {}
        #: in-flight multi-GPU migrations: (id(array), device) -> event
        self._multi_pending: dict[tuple[int, int], "SimEvent"] = {}
        #: planned overlays over multi-GPU location sets, by ``id(array)``
        self._multi_planned: dict[int, _MultiPlanned] = {}
        #: per-array epoch, bumped by full host overwrites: completion
        #: callbacks planned in an older epoch are dead
        self._multi_epoch: dict[int, int] = {}
        # -- movement accounting (the movement-bench axis) ---------------
        # One registry per coherence engine: per-instance introspection
        # (one serving request's movement) keeps working even when the
        # serving layer merges many instances into one fleet roll-up.
        # The historical ``*_total`` attributes are properties over
        # these cells.
        self.counters = CounterRegistry()
        #: bytes left to the fault engine (charged inside kernels)
        self._c_fault_bytes = self.counters.counter("coherence.fault_bytes")
        #: bytes moved by engine-issued HtoD/DtoD migrations
        self._c_migrated_bytes = self.counters.counter(
            "coherence.migrated_bytes"
        )
        #: bytes written back to the host on CPU accesses
        self._c_writeback_bytes = self.counters.counter(
            "coherence.writeback_bytes"
        )
        #: transfer operations submitted
        self._c_transfer_ops = self.counters.counter(
            "coherence.transfer_ops"
        )
        #: transfers saved by BATCHED coalescing
        self._c_coalesced = self.counters.counter(
            "coherence.coalesced_transfers"
        )
        # Directional op/byte splits (HtoD migrations, DtoH writebacks,
        # D2D peer mirrors) — created eagerly so merged snapshots always
        # carry the full schema.
        self._c_htod_ops = self.counters.counter("coherence.htod_ops")
        self._c_htod_bytes = self.counters.counter("coherence.htod_bytes")
        self._c_dtoh_ops = self.counters.counter("coherence.dtoh_ops")
        self._c_dtoh_bytes = self.counters.counter("coherence.dtoh_bytes")
        self._c_d2d_ops = self.counters.counter("coherence.d2d_ops")
        self._c_d2d_bytes = self.counters.counter("coherence.d2d_bytes")
        #: submission-window flushes, total and by cause
        self._c_window_flushes = self.counters.counter(
            "coherence.window_flushes"
        )
        # -- submission-window coalescer state --------------------------
        #: pending groups: (source, dest) -> _WindowGroup.  Single-GPU
        #: deferrals live under the ``_SINGLE_GROUP`` sentinel (-2, -2),
        #: which no multi-GPU (source, dest) pair can collide with; dict
        #: order is flush order (a group sourcing from another group's
        #: destination replica is necessarily inserted after it, so
        #: insertion order is safe).
        self._win_groups: dict[tuple[int, int], _WindowGroup] = {}
        #: acquires deferred into the open window (window-full trigger)
        self._win_acquires = 0
        #: dedicated per-destination transfer streams (lazily created)
        self._win_streams: dict[int, "SimStream"] = {}

    # -- observability --------------------------------------------------------

    @property
    def fault_bytes_total(self) -> float:
        return self._c_fault_bytes.value

    @property
    def migrated_bytes_total(self) -> float:
        return self._c_migrated_bytes.value

    @property
    def writeback_bytes_total(self) -> float:
        return self._c_writeback_bytes.value

    @property
    def transfer_ops(self) -> int:
        return self._c_transfer_ops.value

    @property
    def coalesced_transfers(self) -> int:
        return self._c_coalesced.value

    @property
    def window_flushes(self) -> int:
        return self._c_window_flushes.value

    @property
    def tracer(self):
        """The owning engine's tracer (coherence events ride it); falls
        back to the null tracer for engines without one."""
        return getattr(self.engine, "tracer", NULL_TRACER)

    # -- planned-state queries ------------------------------------------------

    def _plan_of(self, array: DeviceArray) -> _PlannedState | None:
        return self._planned.get(id(array))

    def device_valid(self, array: DeviceArray) -> bool:
        """Will the device copy be valid once in-flight work completes?"""
        plan = self._plan_of(array)
        if plan is not None:
            return plan.device_valid
        return array.state.device_valid

    def host_valid(self, array: DeviceArray) -> bool:
        """Will the host copy be valid once in-flight work completes?"""
        plan = self._plan_of(array)
        if plan is not None:
            return plan.host_valid
        return array.state.host_valid

    def needs_host_migration(
        self, array: DeviceArray, kind: AccessKind, touched: int
    ) -> bool:
        """Would a CPU access of ``touched`` bytes require a writeback?

        Pure query on the planned view — used by the contexts' CPU-access
        fast path *before* any synchronization happens.
        """
        if kind is AccessKind.WRITE and touched >= array.nbytes:
            return False
        return not self.host_valid(array)

    def _stale_host_bytes(self, array: DeviceArray, touched: int) -> int:
        """Planned-view equivalent of ``DeviceArray.stale_host_bytes``."""
        if self.host_valid(array):
            return 0
        pages = max(1, -(-int(touched) // PAGE_SIZE_BYTES))
        return min(array.nbytes, pages * PAGE_SIZE_BYTES)

    # -- overlay bookkeeping -------------------------------------------------

    def _overlay(
        self,
        array: DeviceArray,
        *,
        device_valid: bool | None = None,
        host_valid: bool | None = None,
        event: "SimEvent | None" = None,
        stream: "SimStream | None" = None,
    ) -> _PlannedState:
        """Update (or open) the planned overlay for ``array``."""
        plan = self._plan_of(array)
        dv = self.device_valid(array) if device_valid is None else device_valid
        hv = self.host_valid(array) if host_valid is None else host_valid
        if plan is None:
            plan = _PlannedState(device_valid=dv, host_valid=hv)
            self._planned[id(array)] = plan
        else:
            plan.device_valid = dv
            plan.host_valid = hv
            plan.token = next(_plan_tokens)
        if event is not None:
            plan.event = event
            plan.stream = stream
        return plan

    def _commit(
        self, array: DeviceArray, mark: Callable[[], None], token: int
    ) -> None:
        """Apply one committed-state transition; retire the overlay if no
        newer plan superseded it (committed == planned again).

        A transition whose plan was superseded by an already-committed
        newer one is dropped: its operation is dead — e.g. a migration
        overtaken by a full host overwrite must not re-validate the
        device copy when it finally lands.
        """
        if token < self._committed_gen.get(id(array), -1):
            return
        self._committed_gen[id(array)] = token
        mark()
        plan = self._plan_of(array)
        if plan is not None and plan.token == token:
            del self._planned[id(array)]

    def _committer(
        self, array: DeviceArray, mark: Callable[[], None], token: int
    ) -> Callable[[], None]:
        return lambda: self._commit(array, mark, token)

    def reset(self) -> None:
        """Forget all planned state (only safe on a drained engine)."""
        self._planned.clear()
        self._multi_pending.clear()
        self._multi_planned.clear()
        self._committed_gen.clear()
        self._win_groups.clear()
        self._win_acquires = 0
        self.engine.remove_pre_sync_hook(id(self))

    # -- access declaration: GPU side ---------------------------------------

    def acquire(
        self,
        accesses: list[tuple[DeviceArray, AccessKind]],
        stream: "SimStream",
        label: str = "",
        policy: MovementPolicy | None = None,
        kind: TransferKind | None = None,
    ) -> AcquirePlan:
        """Declare that a computation on ``stream`` is about to touch
        ``accesses``; plan and submit the movement its policy calls for.

        Returns the :class:`AcquirePlan` whose ``fault_bytes`` the caller
        charges to the compute op and which :meth:`release` binds to it.
        ``policy`` overrides the engine's default for this acquire (the
        hand-tuned baseline faults arrays the programmer forgot while
        still prefetching explicitly); ``kind`` overrides the transfer
        kind stamped on migrations (EAGER on pre-Pascal devices).
        """
        policy = policy or self.policy
        supports_faults = self.engine.device.spec.supports_page_faults
        if policy is MovementPolicy.PAGE_FAULT and not supports_faults:
            policy = MovementPolicy.EAGER_PREFETCH
        if kind is None:
            kind = (
                TransferKind.PREFETCH
                if supports_faults
                else TransferKind.EAGER
            )
        # Policy boundary: an acquire that moves data some other way
        # closes the open coalescing window first, keeping mixed-policy
        # executors (e.g. the hand-tuned baseline) deterministic.
        if self._win_groups and policy is not MovementPolicy.BATCHED:
            self.flush_window("policy-boundary")

        tracer = self.tracer
        span = (
            tracer.span(
                "acquire",
                track="coherence",
                clock=self.engine._clock,
                policy=policy.value,
                label=label,
            )
            if tracer.enabled
            else None
        )
        plan = AcquirePlan()
        self._wait_pending(
            stream, [a for a, _ in accesses]
        )

        stale: list[DeviceArray] = []
        seen: set[int] = set()
        for array, access in accesses:
            if not access.reads or id(array) in seen:
                continue
            seen.add(id(array))
            if not self.device_valid(array):
                stale.append(array)

        if stale:
            if policy is MovementPolicy.PAGE_FAULT:
                self._plan_faults(stale, plan)
            elif policy is MovementPolicy.BATCHED and self.window > 0:
                self._defer_batched(stale, stream, kind)
            elif policy is MovementPolicy.BATCHED:
                self._submit_batched(stale, stream, label, kind)
            else:
                self._submit_prefetches(stale, stream, label, kind)

        # Writes commit at compute-op completion; the overlay flips now
        # so later planning sees the array as device-resident/host-stale.
        seen.clear()
        for array, access in accesses:
            if not access.writes or id(array) in seen:
                continue
            seen.add(id(array))
            overlay = self._overlay(
                array, device_valid=True, host_valid=False
            )
            plan.completion_marks.append(
                self._committer(array, array.mark_gpu_write, overlay.token)
            )
        if span is not None:
            span.annotate(
                stale=len(stale),
                stale_bytes=sum(a.nbytes for a in stale),
                fault_bytes=plan.fault_bytes,
            )
            span.close()
        return plan

    def release(
        self, plan: AcquirePlan, op: Operation | None = None
    ) -> None:
        """Bind ``plan``'s remaining state transitions to ``op`` so they
        apply when the compute op completes; with ``op=None`` (host-side
        executors that already synchronized) they apply immediately."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                "release",
                track="coherence",
                vt=self.engine.clock,
                marks=len(plan.completion_marks),
                bound=op is not None,
            )
        if not plan.completion_marks:
            return
        if op is None:
            for mark in plan.completion_marks:
                mark()
            return
        marks = list(plan.completion_marks)

        def apply_marks(_op: Operation) -> None:
            for mark in marks:
                mark()

        op.on_complete.append(apply_marks)

    def _plan_faults(
        self, stale: list[DeviceArray], plan: AcquirePlan
    ) -> None:
        """Leave the stale bytes to the fault engine: the kernel migrates
        them on demand and the read transition lands at its completion."""
        for array in stale:
            plan.fault_bytes += array.nbytes
            overlay = self._overlay(array, device_valid=True)
            plan.completion_marks.append(
                self._committer(array, array.mark_gpu_read, overlay.token)
            )
        self._c_fault_bytes.value += plan.fault_bytes

    def _submit_prefetches(
        self,
        stale: list[DeviceArray],
        stream: "SimStream",
        label: str,
        kind: TransferKind,
    ) -> None:
        """One HtoD migration per stale array, followed by one event that
        later consumers on other streams wait on."""
        for array in stale:
            self._submit_migration(
                TransferOp(
                    label=f"HtoD:{array.name}",
                    direction=TransferDirection.HOST_TO_DEVICE,
                    nbytes=array.nbytes,
                    kind=kind,
                ),
                [array],
                stream,
            )
        event = self.engine.record_event(
            stream, label=f"migrate:{label or stale[0].name}-done"
        )
        for array in stale:
            plan = self._plan_of(array)
            assert plan is not None
            plan.event = event
            plan.stream = stream

    def _submit_batched(
        self,
        stale: list[DeviceArray],
        stream: "SimStream",
        label: str,
        kind: TransferKind,
    ) -> None:
        """Coalesce all stale inputs of one acquire into a single DMA
        submission (adjacent-array copies ride one transfer op)."""
        total = sum(a.nbytes for a in stale)
        names = ",".join(a.name for a in stale)
        self._submit_migration(
            TransferOp(
                label=f"HtoD:batch[{names}]",
                direction=TransferDirection.HOST_TO_DEVICE,
                nbytes=total,
                kind=kind,
            ),
            stale,
            stream,
        )
        self._c_coalesced.value += max(0, len(stale) - 1)
        event = self.engine.record_event(
            stream, label=f"migrate:{label or names}-done"
        )
        for array in stale:
            plan = self._plan_of(array)
            assert plan is not None
            plan.event = event
            plan.stream = stream

    # -- submission-window coalescer -----------------------------------------

    #: group key of single-GPU (host -> primary device) deferrals; multi
    #: -GPU groups use real (source, destination) index pairs, which are
    #: always >= -1, so this key can never collide
    _SINGLE_GROUP = (-2, -2)

    def _window_stream(self, device_index: int) -> "SimStream":
        """The dedicated transfer stream merged windows flush on (one
        per destination device, created lazily, reclaimed with the
        owning executor via :meth:`take_owned_streams`)."""
        stream = self._win_streams.get(device_index)
        if stream is None:
            stream = self.engine.create_stream(
                label=f"coalesce-g{device_index}",
                device_index=device_index,
            )
            self._win_streams[device_index] = stream
        return stream

    def take_owned_streams(self) -> tuple["SimStream", ...]:
        """Streams this engine created for itself (the window
        coalescer's transfer streams).  A retiring executor hands them
        back to the engine alongside its context streams, so long-lived
        serving engines do not accumulate dead coalescing streams."""
        streams = tuple(self._win_streams.values())
        self._win_streams = {}
        return streams

    def _open_group(
        self, key: tuple[int, int], kind: "TransferKind"
    ) -> _WindowGroup:
        group = self._win_groups.get(key)
        if group is not None:
            return group
        if not self._win_groups:
            # First deferral of this window: make sure any host sync
            # flushes us (a consumer parked on an unrecorded window
            # event would otherwise deadlock the sync).
            self.engine.add_pre_sync_hook(
                id(self), lambda: self.flush_window("pre-sync")
            )
        group = _WindowGroup(
            event=SimEvent(label=f"coalesce:{key[0]}to{key[1]}"),
            kind=kind,
        )
        self._win_groups[key] = group
        return group

    def _defer_batched(
        self,
        stale: list[DeviceArray],
        stream: "SimStream",
        kind: "TransferKind",
    ) -> None:
        """Defer one acquire's stale inputs into the open submission
        window instead of submitting their transfer now.  The consumer
        parks on the window's pre-created event; the merged transfer is
        submitted at flush time on the dedicated window stream."""
        group = self._win_groups.get(self._SINGLE_GROUP)
        if group is not None and group.kind is not kind:
            self.flush_window("policy-boundary")  # transfer-kind boundary
        group = self._open_group(self._SINGLE_GROUP, kind)
        win_stream = self._window_stream(0)
        for array in stale:
            self._overlay(
                array,
                device_valid=True,
                event=group.event,
                stream=win_stream,
            )
            group.arrays.append(array)
        self.engine.wait_event(stream, group.event)
        self._note_deferred_acquire()

    def _note_deferred_acquire(self) -> None:
        self._win_acquires += 1
        if self._win_acquires >= self.window:
            self.flush_window("window-full")

    def flush_window(self, cause: str = "manual") -> None:
        """Flush every pending coalescing group: one merged transfer per
        (source, destination) pair on its window stream, followed by the
        group's event record so parked consumers unblock.

        Idempotent; ``cause`` records *why* in the counter registry:
        ``window-full``, ``policy-boundary``, ``cpu-access``,
        ``pre-sync`` (engine host-sync hooks), ``source-hazard``
        (a deferral sourcing a replica the open window creates), or
        ``manual``.
        """
        if not self._win_groups:
            return
        groups = self._win_groups
        self._win_groups = {}
        self._win_acquires = 0
        self.engine.remove_pre_sync_hook(id(self))
        self._c_window_flushes.value += 1
        self.counters.inc(f"coherence.window_flush.{cause}")
        tracer = self.tracer
        span = (
            tracer.span(
                "flush_window",
                track="coherence",
                clock=self.engine._clock,
                cause=cause,
                groups=len(groups),
                nbytes=sum(
                    a.nbytes for g in groups.values() for a in g.arrays
                ),
            )
            if tracer.enabled
            else None
        )
        for (source, dest), group in groups.items():
            assert group.event is not None and group.kind is not None
            if (source, dest) == self._SINGLE_GROUP:
                self._flush_single_group(group)
            else:
                self._flush_multi_group(group, source, dest)
        if span is not None:
            span.close()

    def _flush_single_group(self, group: _WindowGroup) -> None:
        win_stream = self._window_stream(0)
        arrays = group.arrays
        total = sum(a.nbytes for a in arrays)
        names = ",".join(a.name for a in arrays)
        self._submit_migration(
            TransferOp(
                label=f"HtoD:window[{names}]",
                direction=TransferDirection.HOST_TO_DEVICE,
                nbytes=total,
                kind=group.kind,
            ),
            arrays,
            win_stream,
        )
        self._c_coalesced.value += max(0, len(arrays) - 1)
        self.engine.record_event(win_stream, event=group.event)
        for array in arrays:
            plan = self._plan_of(array)
            if plan is not None:
                plan.event = group.event
                plan.stream = win_stream

    def _flush_multi_group(
        self, group: _WindowGroup, source: int, dest: int
    ) -> None:
        win_stream = self._window_stream(dest)
        for ev in group.source_events:
            if not ev.complete:
                self.engine.wait_event(win_stream, ev)
        self._c_coalesced.value += max(0, len(group.arrays) - 1)
        self._submit_multi_migration(
            group.arrays, source, dest, win_stream, event=group.event
        )

    def _submit_migration(
        self,
        op: TransferOp,
        arrays: list[DeviceArray],
        stream: "SimStream",
    ) -> None:
        """Submit one engine-planned migration covering ``arrays``."""
        op.info["writes"] = frozenset(id(a) for a in arrays)
        op.info["reads"] = frozenset()
        op.info["array_names"] = {id(a): a.name for a in arrays}
        op.info.update(self.op_tags)
        marks: list[Callable[[], None]] = []
        for array in arrays:
            overlay = self._overlay(array, device_valid=True)
            marks.append(
                self._committer(array, array.mark_gpu_read, overlay.token)
            )

        def apply_all() -> None:
            for mark in marks:
                mark()

        op.apply_fn = apply_all
        self.engine.submit(stream, op)
        self._c_transfer_ops.value += 1
        self._c_migrated_bytes.value += op.nbytes
        self._c_htod_ops.value += 1
        self._c_htod_bytes.value += op.nbytes

    def prefetch(self, array: DeviceArray, stream: "SimStream") -> None:
        """Explicit ``cudaMemPrefetchAsync``: move a (planned-)stale
        array to the device ahead of its consumers."""
        if self.device_valid(array):
            return
        self._submit_prefetches(
            [array], stream, f"prefetch:{array.name}", TransferKind.PREFETCH
        )

    def _wait_pending(
        self, stream: "SimStream", arrays: list[DeviceArray]
    ) -> None:
        """Order ``stream`` behind in-flight migrations of ``arrays``
        issued on *other* streams (same-stream FIFO already orders)."""
        for array in arrays:
            plan = self._plan_of(array)
            if plan is None or plan.event is None:
                continue
            if plan.stream is not stream and not plan.event.complete:
                self.engine.wait_event(stream, plan.event)

    # -- access declaration: host side ---------------------------------------

    def cpu_access(
        self,
        array: DeviceArray,
        kind: AccessKind,
        touched: int,
        stream: "SimStream | None" = None,
        sync: bool = True,
    ) -> TransferOp | None:
        """Declare an imminent host access; move and transition as needed.

        Reads and partial writes migrate the touched pages back
        (page-granular read-modify-write, like real UM); a pure write
        covering the whole array goes through
        :meth:`invalidate_device_copy` instead — nothing migrates, the
        device copy dies.  The host access itself is synchronous, so
        with ``sync=True`` (the default) the migration is drained and
        transitions commit before returning.
        """
        self.flush_window("cpu-access")  # host access closes the window
        if kind is AccessKind.WRITE and touched >= array.nbytes:
            self.invalidate_device_copy(array)
            return None
        tracer = self.tracer
        span = (
            tracer.span(
                "cpu_access",
                track="coherence",
                clock=self.engine._clock,
                array=array.name,
                access=kind.name,
                touched=touched,
            )
            if tracer.enabled
            else None
        )
        op: TransferOp | None = None
        stale = self._stale_host_bytes(array, touched)
        if stale > 0:
            stream = stream or self.engine.default_stream
            op = TransferOp(
                label=f"DtoH:{array.name}",
                direction=TransferDirection.DEVICE_TO_HOST,
                nbytes=stale,
                kind=TransferKind.WRITEBACK,
            )
            op.info["writes"] = frozenset()
            op.info["reads"] = frozenset({id(array)})
            op.info["array_names"] = {id(array): array.name}
            op.info.update(self.op_tags)
            overlay = self._overlay(array, host_valid=True)
            op.apply_fn = self._committer(
                array, array.mark_cpu_read, overlay.token
            )
            self.engine.submit(stream, op)
            self._c_transfer_ops.value += 1
            self._c_writeback_bytes.value += stale
            self._c_dtoh_ops.value += 1
            self._c_dtoh_bytes.value += stale
            if sync:
                self.engine.sync_stream(stream)
        # The access happens synchronously right after this declaration:
        # commit the remaining transitions through the shared path.
        if kind.reads:
            self._commit_now(array, array.mark_cpu_read, host_valid=True)
        if kind.writes:
            self._commit_now(
                array,
                array.mark_cpu_write,
                host_valid=True,
                device_valid=False,
            )
        if span is not None:
            span.annotate(writeback_bytes=stale)
            span.close()
        return op

    def invalidate_device_copy(self, array: DeviceArray) -> None:
        """Full-array host overwrite: the device copy is dead.

        Goes through the same transition path as transfer completions —
        the planned overlay is updated first and the committed state
        follows through :meth:`_commit` — so concurrent planning can
        never observe the half-updated split where the device copy is
        invalid but a stale in-flight-migration event still vouches for
        it.  Any pending migration bookkeeping for the array is
        cancelled (its event may still be waited on harmlessly, but it
        no longer marks the device copy valid).
        """
        self._commit_now(
            array,
            array.mark_cpu_write,
            host_valid=True,
            device_valid=False,
        )

    def _commit_now(
        self,
        array: DeviceArray,
        mark: Callable[[], None],
        *,
        host_valid: bool | None = None,
        device_valid: bool | None = None,
    ) -> None:
        """Synchronous host-side transition via the shared commit path:
        overlay first (superseding in-flight plans), committed state
        immediately after (the host is, by construction, synchronized)."""
        overlay = self._overlay(
            array, device_valid=device_valid, host_valid=host_valid
        )
        overlay.event = None
        overlay.stream = None
        self._commit(array, mark, overlay.token)

    # -- multi-GPU: planned/committed location sets ---------------------------

    def _multi_plan_of(self, array: "MultiGpuArray") -> _MultiPlanned | None:
        return self._multi_planned.get(id(array))

    def _multi_overlay(self, array: "MultiGpuArray") -> _MultiPlanned:
        """Open (or fetch) the planned overlay over ``array``'s committed
        location set."""
        plan = self._multi_plan_of(array)
        if plan is None:
            plan = _MultiPlanned(
                valid_on=set(array.valid_on),
                host_valid=array.host_valid,
                epoch=self._multi_epoch.get(id(array), 0),
            )
            self._multi_planned[id(array)] = plan
        return plan

    def multi_resident(
        self, array: "MultiGpuArray", device_index: int
    ) -> bool:
        """Will ``device_index`` hold a valid replica once in-flight work
        completes?  (The planned view placement pricing reads.)"""
        plan = self._multi_plan_of(array)
        if plan is not None:
            return device_index in plan.valid_on
        return array.resident_on(device_index)

    def multi_host_valid(self, array: "MultiGpuArray") -> bool:
        plan = self._multi_plan_of(array)
        if plan is not None:
            return plan.host_valid
        return array.host_valid

    def multi_migration_bytes(
        self, array: "MultiGpuArray", device_index: int
    ) -> int:
        """Bytes a computation on ``device_index`` would have to migrate
        (planned view — in-flight migrations already count as resident)."""
        return 0 if self.multi_resident(array, device_index) else array.nbytes

    def multi_migration_source(
        self, array: "MultiGpuArray", device_index: int
    ) -> int | None:
        """Cheapest source for making ``device_index`` valid, on the
        planned view: another device (peer copy), ``-1`` for the host,
        None if (planned-)resident."""
        if self.multi_resident(array, device_index):
            return None
        plan = self._multi_plan_of(array)
        valid_on = plan.valid_on if plan is not None else array.valid_on
        peers = sorted(valid_on)
        if peers:
            return peers[0]
        assert self.multi_host_valid(array), (
            f"{array.name} lost all planned copies"
        )
        return -1

    def _multi_committer(
        self, array: "MultiGpuArray", mark: Callable[[], None]
    ) -> Callable[[], None]:
        """A completion callback applying one committed location-set
        transition, dead if a host overwrite bumped the epoch, retiring
        the overlay when the last in-flight transition lands."""
        token_epoch = self._multi_overlay(array).epoch
        self._multi_overlay(array).outstanding += 1

        def commit() -> None:
            if self._multi_epoch.get(id(array), 0) != token_epoch:
                return  # superseded by a full host overwrite
            mark()
            plan = self._multi_plan_of(array)
            if plan is not None:
                plan.outstanding -= 1
                if plan.outstanding <= 0:
                    del self._multi_planned[id(array)]

        return commit

    def acquire_multi(
        self,
        accesses: list[tuple["MultiGpuArray", AccessKind]],
        stream: "SimStream",
        device_index: int,
        label: str = "",
        policy: MovementPolicy | None = None,
    ) -> AcquirePlan:
        """Multi-GPU access declaration: make every read input resident
        on ``device_index`` per the movement policy.

        ``EAGER_PREFETCH`` mirrors each stale input ahead of the kernel,
        sourcing from the cheapest (planned-)valid copy — peer-to-peer
        when a device replica exists, host upload otherwise.  ``BATCHED``
        does the same but coalesces all stale inputs sharing a source
        into one DMA submission.  ``PAGE_FAULT`` issues *no* mirror: the
        stale bytes are charged to the faulting kernel itself, exactly
        like the single-GPU fault path.  In every case the location-set
        transition is applied when the migrating operation (or, for
        faults, the kernel — via :meth:`release_multi`) completes; the
        planned overlay carries the in-flight residency that placement
        pricing and later acquires read.
        """
        policy = policy or self.policy
        spec = self.engine.devices[device_index].spec
        if policy is MovementPolicy.PAGE_FAULT and not spec.supports_page_faults:
            policy = MovementPolicy.EAGER_PREFETCH
        if self._win_groups and policy is not MovementPolicy.BATCHED:
            # policy boundary (see ``acquire``)
            self.flush_window("policy-boundary")
        windowed = policy is MovementPolicy.BATCHED and self.window > 0
        tracer = self.tracer
        span = (
            tracer.span(
                "acquire_multi",
                track="coherence",
                clock=self.engine._clock,
                policy=policy.value,
                label=label,
                device=device_index,
            )
            if tracer.enabled
            else None
        )
        plan = AcquirePlan()
        #: stale reads grouped by source (BATCHED coalescing unit)
        stale_by_source: dict[int, list["MultiGpuArray"]] = {}
        #: (array, source, in-flight source event) tuples deferred into
        #: the submission window instead of migrating now
        deferred: list[tuple["MultiGpuArray", int, "SimEvent | None"]] = []
        seen: set[int] = set()
        for array, access in accesses:
            if not access.reads or id(array) in seen:
                continue
            seen.add(id(array))
            source = self.multi_migration_source(array, device_index)
            if source is None:
                # Resident — possibly via a still-in-flight migration
                # issued by another stream: wait on its event.
                pending = self._multi_pending.get((id(array), device_index))
                if pending is not None and not pending.complete:
                    self.engine.wait_event(stream, pending)
                continue
            # A peer copy (or a faulting kernel reading a peer replica)
            # must not start before the source replica is itself fully
            # materialized — its migration may be in flight elsewhere.
            source_pending = None
            if source >= 0:
                source_pending = self._multi_pending.get((id(array), source))
                if source_pending is not None and source_pending.complete:
                    source_pending = None
            if windowed:
                # The merged transfer (not the consumer) orders behind
                # the source replica; the consumer parks on the window
                # event instead.
                deferred.append((array, source, source_pending))
                continue
            if source_pending is not None:
                self.engine.wait_event(stream, source_pending)
            if policy is MovementPolicy.PAGE_FAULT:
                # The fault engine migrates on demand, charged to the
                # kernel; residency commits when the kernel completes.
                plan.fault_bytes += array.nbytes
                self._c_fault_bytes.value += array.nbytes
                overlay = self._multi_overlay(array)
                overlay.valid_on.add(device_index)
                plan.completion_marks.append(
                    self._multi_committer(
                        array,
                        lambda a=array, d=device_index: a.mark_read(d),
                    )
                )
                # The replica exists only once the faulting kernel
                # completes: consumers that source from it (a peer copy
                # in a mixed-policy fleet) must order behind the
                # kernel's finish event, registered by the caller.
                plan.fault_replicas.append((array, device_index))
            else:
                stale_by_source.setdefault(source, []).append(array)

        if deferred:
            self._defer_multi(deferred, device_index, stream)
        batched = policy is MovementPolicy.BATCHED
        for source, arrays in stale_by_source.items():
            groups = [arrays] if batched else [[a] for a in arrays]
            if batched:
                self._c_coalesced.value += max(0, len(arrays) - 1)
            for group in groups:
                self._submit_multi_migration(
                    group, source, device_index, stream
                )
        if span is not None:
            span.annotate(
                stale=sum(len(a) for a in stale_by_source.values()),
                deferred=len(deferred),
                fault_bytes=plan.fault_bytes,
            )
            span.close()
        return plan

    def _defer_multi(
        self,
        deferred: list[tuple["MultiGpuArray", int, "SimEvent | None"]],
        device_index: int,
        stream: "SimStream",
    ) -> None:
        """Defer one multi-GPU acquire's stale reads into the submission
        window: arrays join the (source, destination) group they can
        share a DMA submission with, the planned overlay and pending-
        migration map advance as if the mirror were already in flight,
        and the consumer parks on the group's pre-created event.

        A deferral whose *source* replica is itself pending in the open
        window flushes first: two groups each sourcing a replica the
        other creates would otherwise wait on each other's unrecorded
        events (the window streams deadlock).  After the flush every
        source event's record is already submitted, so wait chains stay
        acyclic by construction."""
        events: dict[int, "SimEvent"] = {}
        for array, source, source_pending in deferred:
            if source_pending is not None and any(
                g.event is source_pending
                for g in self._win_groups.values()
            ):
                self.flush_window("source-hazard")
            group = self._open_group(
                (source, device_index), TransferKind.PREFETCH
            )
            group.arrays.append(array)
            if source_pending is not None:
                group.source_events.append(source_pending)
            self._multi_overlay(array).valid_on.add(device_index)
            assert group.event is not None
            self._multi_pending[(id(array), device_index)] = group.event
            events[group.event.event_id] = group.event
        for event in events.values():
            self.engine.wait_event(stream, event)
        self._note_deferred_acquire()

    def _submit_multi_migration(
        self,
        arrays: list["MultiGpuArray"],
        source: int,
        device_index: int,
        stream: "SimStream",
        event: "SimEvent | None" = None,
    ) -> None:
        """One mirror covering ``arrays`` from ``source`` (-1 = host) to
        ``device_index``: planned overlay at submission, committed
        location set at completion, ordering event recorded after.
        ``event`` records a pre-created event (the submission-window
        flush path, whose consumers already park on it) instead of a
        fresh one."""
        total = sum(a.nbytes for a in arrays)
        names = ",".join(a.name for a in arrays)
        direction = (
            TransferDirection.HOST_TO_DEVICE
            if source == -1
            else TransferDirection.DEVICE_TO_DEVICE
        )
        op = TransferOp(
            label=(
                f"{'HtoD' if source == -1 else f'D{source}toD'}"
                f"{device_index}:{names}"
            ),
            direction=direction,
            nbytes=total,
            kind=TransferKind.PREFETCH,
        )
        # Race-detector tokens are per *copy* — (array, device) — so a
        # peer-to-peer copy reading GPU 0's replica does not conflict
        # with a kernel also reading that replica, but does conflict
        # with anything touching the destination replica.
        src_key = "host" if source == -1 else source
        src_tokens = {(id(a), src_key) for a in arrays}
        dst_tokens = {(id(a), device_index) for a in arrays}
        op.info["reads"] = frozenset(src_tokens)
        op.info["writes"] = frozenset(dst_tokens)
        op.info["array_names"] = {
            **{(id(a), src_key): f"{a.name}@{src_key}" for a in arrays},
            **{
                (id(a), device_index): f"{a.name}@gpu{device_index}"
                for a in arrays
            },
        }
        op.info.update(self.op_tags)
        marks = [
            self._multi_committer(
                a, lambda a=a, d=device_index: a.mark_read(d)
            )
            for a in arrays
        ]
        for array in arrays:
            self._multi_overlay(array).valid_on.add(device_index)

        def apply_all() -> None:
            for mark in marks:
                mark()

        op.apply_fn = apply_all
        self.engine.submit(stream, op)
        self._c_transfer_ops.value += 1
        self._c_migrated_bytes.value += op.nbytes
        if source == -1:
            self._c_htod_ops.value += 1
            self._c_htod_bytes.value += op.nbytes
        else:
            self._c_d2d_ops.value += 1
            self._c_d2d_bytes.value += op.nbytes
        event = self.engine.record_event(
            stream, event=event, label=f"mig:{names}@gpu{device_index}"
        )
        for array in arrays:
            self._multi_pending[(id(array), device_index)] = event

    def register_fault_ordering(
        self, plan: AcquirePlan, event: "SimEvent"
    ) -> None:
        """Bind the finish event of the compute op consuming ``plan`` to
        the replicas its faults materialize, so later consumers reading
        those replicas (from any stream or device) wait for the kernel
        that creates them — exactly like an engine-issued migration's
        event."""
        for array, device_index in plan.fault_replicas:
            self._multi_pending[(id(array), device_index)] = event

    def release_multi(
        self,
        plan: AcquirePlan,
        accesses: list[tuple["MultiGpuArray", AccessKind]],
        device_index: int,
        op: Operation | None = None,
    ) -> None:
        """Bind the write transitions of a multi-GPU computation (the
        writing device becomes the sole valid copy) plus ``plan``'s
        pending read transitions to ``op``, applying them when the
        compute op completes; with ``op=None`` they apply immediately
        (host-synchronized callers)."""
        marks = list(plan.completion_marks)
        seen: set[int] = set()
        for array, access in accesses:
            if not access.writes or id(array) in seen:
                continue
            seen.add(id(array))
            overlay = self._multi_overlay(array)
            overlay.valid_on = {device_index}
            overlay.host_valid = False
            marks.append(
                self._multi_committer(
                    array, lambda a=array, d=device_index: a.mark_write(d)
                )
            )
        if not marks:
            return
        if op is None:
            for mark in marks:
                mark()
            return

        def apply_marks(_op: Operation) -> None:
            for mark in marks:
                mark()

        op.on_complete.append(apply_marks)

    def cpu_write_full_multi(
        self, array: "MultiGpuArray", mark: bool = True
    ) -> None:
        """Full host overwrite of a multi-GPU array: every device replica
        dies; the planned overlay and in-flight migration bookkeeping for
        the array are dropped, and the epoch bump kills the committed
        transitions of anything still in flight.

        ``mark=False`` skips the state transition for callers whose data
        path already applied it (``copy_from_host`` marks internally) —
        one transition per write, pending cleanup always.
        """
        self.flush_window("cpu-access")
        if mark:
            array.mark_cpu_write()
        self._multi_epoch[id(array)] = (
            self._multi_epoch.get(id(array), 0) + 1
        )
        self._multi_planned.pop(id(array), None)
        for key in [k for k in self._multi_pending if k[0] == id(array)]:
            del self._multi_pending[key]

    def cpu_read_multi(
        self,
        array: "MultiGpuArray",
        stream: "SimStream",
        nbytes: int | None = None,
        sync: bool = True,
    ) -> TransferOp | None:
        """Host readback of a multi-GPU array (device-to-host writeback
        from whichever replica is valid)."""
        self.flush_window("cpu-access")
        if self.multi_host_valid(array):
            return None
        op = TransferOp(
            label=f"DtoH:{array.name}",
            direction=TransferDirection.DEVICE_TO_HOST,
            nbytes=min(nbytes or array.nbytes, array.nbytes),
            kind=TransferKind.WRITEBACK,
        )
        op.info.update(self.op_tags)
        overlay = self._multi_overlay(array)
        overlay.host_valid = True
        op.apply_fn = self._multi_committer(array, array.mark_cpu_read)
        self.engine.submit(stream, op)
        self._c_transfer_ops.value += 1
        self._c_writeback_bytes.value += op.nbytes
        self._c_dtoh_ops.value += 1
        self._c_dtoh_bytes.value += op.nbytes
        if sync:
            self.engine.sync_stream(stream)
        return op

    # -- introspection --------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CoherenceEngine {self.policy.value}"
            f" planned={len(self._planned)}"
            f" moved={self.migrated_bytes_total:.0f}B"
            f" faulted={self.fault_bytes_total:.0f}B>"
        )
