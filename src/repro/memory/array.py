"""Unified-memory device arrays.

A :class:`DeviceArray` is the GrCUDA managed array: a numpy buffer that
the host program indexes like a normal array while the runtime intercepts
every access to (a) keep the coherence state machine honest and (b) turn
accesses that conflict with in-flight GPU work into computational
elements (section IV-A: "memory accesses by the CPU host program to
GrCUDA UM-backed arrays" are DAG vertices).

Values live in one numpy buffer — the host/device "copies" exist only in
the coherence state used for timing.  This keeps functional results exact
while the simulator charges realistic migration costs.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable

import numpy as np

from repro.gpusim.device import Device
from repro.memory.pages import (
    PAGE_SIZE_BYTES,
    CoherenceState,
    after_cpu_read,
    after_cpu_write,
    after_gpu_read,
    after_gpu_write,
)


class AccessKind(enum.Enum):
    """How a computation touches an array."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def reads(self) -> bool:
        return self in (AccessKind.READ, AccessKind.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.READ_WRITE)


#: Signature of the CPU-access hook installed by the execution context.
#: Called *before* the numpy access happens.
AccessHook = Callable[["DeviceArray", AccessKind, int], None]


class HostArraySurface:
    """The hooked host-access surface shared by the single-GPU
    :class:`DeviceArray` and the multi-GPU
    :class:`~repro.multigpu.array.MultiGpuArray`.

    Subclasses provide the storage fields (``_shape``, ``_dtype``,
    ``_data``, ``materialized``, ``name``, ``freed``) and one method —
    ``_notify(kind, touched)``, called *before* every host access —
    which routes the access through the execution context's hook (and
    defines what an unhooked access means for that array kind).  Keeping
    the indexing/bulk-copy methods here guarantees the two array types
    cannot drift apart: a host program behaves identically whatever the
    session's device count.
    """

    _shape: tuple[int, ...]
    _dtype: np.dtype
    _data: np.ndarray
    materialized: bool
    name: str
    freed: bool

    def _notify(self, kind: AccessKind, touched: int) -> None:
        raise NotImplementedError

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def nbytes(self) -> int:
        return self.size * self._dtype.itemsize

    @property
    def size(self) -> int:
        n = 1
        for s in self._shape:
            n *= s
        return n

    @property
    def itemsize(self) -> int:
        return self._dtype.itemsize

    def __len__(self) -> int:
        return self._shape[0] if self._shape else 0

    def _check_alive(self) -> None:
        if self.freed:
            raise ValueError(f"array {self.name} was freed")

    # -- host access (hooked) ------------------------------------------------

    def _touched_bytes(self, key: Any) -> int:
        """Rough byte count an indexing expression touches."""
        if isinstance(key, (int, np.integer)):
            rest = 1
            for s in self._shape[1:]:
                rest *= s
            return rest * self.itemsize
        if isinstance(key, slice) and self._shape:
            count = len(range(*key.indices(self._shape[0])))
            rest = 1
            for s in self._shape[1:]:
                rest *= s
            return count * rest * self.itemsize
        if not self.materialized:
            return self.nbytes  # conservative for exotic keys
        try:
            probe = np.empty(self.shape, dtype=np.bool_)[key]
        except Exception:
            return self.nbytes
        if isinstance(probe, np.ndarray):
            return int(probe.size) * self.itemsize
        return self.itemsize

    def _selected_shape(self, key: Any) -> tuple[int, ...]:
        """Shape of a slice selection on a virtual array (cheap cases)."""
        if isinstance(key, slice) and self._shape:
            count = len(range(*key.indices(self._shape[0])))
            return (count, *self._shape[1:])
        return (0,)

    def __getitem__(self, key: Any) -> Any:
        self._check_alive()
        self._notify(AccessKind.READ, self._touched_bytes(key))
        if not self.materialized:
            if isinstance(key, (int, np.integer)):
                return np.zeros(1, dtype=self.dtype)[0]
            return np.zeros(self._selected_shape(key), dtype=self.dtype)
        return self._data[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check_alive()
        self._notify(AccessKind.WRITE, self._touched_bytes(key))
        if self.materialized:
            self._data[key] = value

    def fill(self, value: Any) -> None:
        """Host-side bulk initialization."""
        self._check_alive()
        self._notify(AccessKind.WRITE, self.nbytes)
        if self.materialized:
            self._data.fill(value)

    def copy_from_host(self, source: np.ndarray) -> None:
        """Host-side bulk write from a numpy array (shape-checked)."""
        self._check_alive()
        src = np.asarray(source, dtype=self.dtype)
        if src.shape != self.shape:
            raise ValueError(
                f"shape mismatch: array {self.shape}, source {src.shape}"
            )
        self._notify(AccessKind.WRITE, self.nbytes)
        if self.materialized:
            np.copyto(self._data, src)

    def touch_write_full(self) -> None:
        """Announce a full-array host overwrite without supplying data.

        Timing-equivalent to :meth:`copy_from_host`; used by timing-only
        sweeps on virtual arrays where generating gigabytes of input
        values would be wasted work.
        """
        self._check_alive()
        self._notify(AccessKind.WRITE, self.nbytes)

    def to_numpy(self) -> np.ndarray:
        """Host-side bulk read; returns a copy."""
        self._check_alive()
        self._notify(AccessKind.READ, self.nbytes)
        if not self.materialized:
            return np.zeros(self.shape, dtype=self.dtype)
        return self._data.copy()

    # -- unchecked access for kernels -----------------------------------------

    @property
    def kernel_view(self) -> np.ndarray:
        """The raw buffer, for use *inside* kernel compute functions only.

        Kernel compute functions run at simulated-completion time, after
        the scheduler has already ordered them; routing them through the
        CPU-access hook would deadlock (the GPU would wait for itself).
        """
        return self._data


class DeviceArray(HostArraySurface):
    """A unified-memory array visible to both host code and GPU kernels."""

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float32,
        device: Device | None = None,
        name: str = "",
        materialize: bool = True,
    ) -> None:
        self._shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self._dtype = np.dtype(dtype)
        self.materialized = materialize
        if materialize:
            self._data = np.zeros(self._shape, dtype=self._dtype)
        else:
            # Timing-only sweeps at paper scales would need tens of GB of
            # host RAM; a virtual array keeps the declared geometry (all
            # transfer/coherence costs stay exact) without the buffer.
            self._data = np.zeros(1, dtype=self._dtype)
        self.name = name or f"arr{id(self) & 0xFFFF:x}"
        self.device = device
        self.state = CoherenceState.SHARED  # fresh UM memory is zeroed
        self._alloc_handle: int | None = None
        self._on_cpu_access: AccessHook | None = None
        self.freed = False
        if device is not None:
            self._alloc_handle = device.allocate(self.nbytes)

    # -- coherence ------------------------------------------------------------

    def stale_device_bytes(self) -> int:
        """Bytes that must move host->device before a GPU read."""
        return 0 if self.state.device_valid else self.nbytes

    def stale_host_bytes(self, touched: int | None = None) -> int:
        """Bytes that must move device->host before a CPU access of
        ``touched`` bytes (page-rounded, capped at the array size)."""
        if self.state.host_valid:
            return 0
        touched = self.nbytes if touched is None else touched
        pages = max(1, math.ceil(touched / PAGE_SIZE_BYTES))
        return min(self.nbytes, pages * PAGE_SIZE_BYTES)

    def mark_gpu_read(self) -> None:
        self.state = after_gpu_read(self.state)

    def mark_gpu_write(self) -> None:
        self.state = after_gpu_write(self.state)

    def mark_cpu_read(self) -> None:
        self.state = after_cpu_read(self.state)

    def mark_cpu_write(self) -> None:
        self.state = after_cpu_write(self.state)

    # -- host access (hooked) ------------------------------------------------

    def set_access_hook(self, hook: AccessHook | None) -> None:
        self._on_cpu_access = hook

    def _notify(self, kind: AccessKind, touched: int) -> None:
        """Declare an imminent host access to the execution context.

        Without a context attached the access is unmanaged: no timing is
        charged and no transition applies (standalone arrays are plain
        buffers; the baselines install their own hooks)."""
        if self._on_cpu_access is not None:
            self._on_cpu_access(self, kind, touched)

    def touch_write_full(self) -> None:
        self._check_alive()
        if self._on_cpu_access is not None:
            self._on_cpu_access(self, AccessKind.WRITE, self.nbytes)
        else:
            # Unlike indexing (host-only convenience on unmanaged
            # arrays), an *announced* full write exists purely for the
            # coherence machine: transition even without a context.
            self.mark_cpu_write()

    # -- lifecycle ----------------------------------------------------------------

    def free(self) -> None:
        """Release the device allocation.  Idempotent."""
        if self.freed:
            return
        if self.device is not None and self._alloc_handle is not None:
            self.device.free(self._alloc_handle)
            self._alloc_handle = None
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DeviceArray {self.name} {self.dtype}{list(self.shape)}"
            f" {self.state.value}>"
        )
