"""Discrete-event simulation engine.

The engine owns the virtual clock, the set of streams and the running
operations.  Host code (the scheduler) submits operations and then asks
the engine to advance — to a stream sync, to an event, or until all queued
work drains.  Between host sync points the clock does not move: host
actions are modelled as instantaneous unless an explicit host overhead is
charged via :meth:`SimEngine.charge_host_time`.

Rate-based progress: whenever the running set changes, the contention
model re-prices everyone's progress rate; the clock then jumps straight to
the earliest completion.  This is exact for piecewise-constant rates.

Every per-step cost is indexed rather than scanned:

* rates are cached and re-priced only when the running set actually
  changes (``repricings`` counts true repricings; ``steps`` counts engine
  steps, so the ratio is assertable in benchmarks);
* the next completion comes from the projected-completion minimum
  computed at reprice time and invalidated lazily (a host-time cap that
  advances the clock without completing anything marks it stale).  A
  projected-completion min-*heap* would degenerate to its root here:
  the contention model is monotone, so every completion changes the
  surviving ops' rates and forces a rebuild — consecutive pops can
  never amortize, and caching the root alone is equivalent and cheaper;
* startable operations come from a *ready-stream* queue fed by
  notifications — submission to an idle stream, an event record
  unblocking a parked head, an operation finishing with work queued
  behind it — instead of scanning every stream per step;
* removal from the running set is O(1) (index map + swap-pop), and a
  busy-stream counter makes ``idle``/``sync_all`` O(1) per check.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable

from repro.errors import DeadlockError, InvalidStateError, SimulationError
from repro.gpusim.device import Device
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.gpusim.ops import (
    EventRecordOp,
    EventWaitOp,
    KernelOp,
    Operation,
    OpState,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.stream import DEFAULT_STREAM_ID, SimEvent, SimStream
from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord

#: Completion tolerance for floating-point work accounting.
_WORK_EPS = 1e-9


class SimEngine:
    """Virtual-time executor for one or more :class:`Device` s.

    Multi-GPU engines (the paper's section-VI future work) share one
    virtual clock and one event space; each stream belongs to a device,
    and the contention model of *that* device prices its running
    operations (each GPU has its own SMs, bandwidth pools and PCIe
    link).
    """

    def __init__(
        self,
        device: Device | list[Device],
        tracer: Tracer | None = None,
    ) -> None:
        devices = [device] if isinstance(device, Device) else list(device)
        if not devices:
            raise InvalidStateError("engine needs at least one device")
        self.devices: tuple[Device, ...] = tuple(devices)
        self.device = self.devices[0]  # primary, single-GPU API
        self.clock: float = 0.0
        self.timeline = Timeline()
        self._streams: dict[int, SimStream] = {}
        self._stream_ids = itertools.count(DEFAULT_STREAM_ID)
        self._running: list[Operation] = []
        #: op_id -> position in ``_running`` (O(1) swap-pop removal)
        self._running_pos: dict[int, int] = {}
        #: stream ids whose head *may* be startable; validated lazily
        self._ready_ids: set[int] = set()
        #: streams with at least one queued or running operation
        self._busy_streams: int = 0
        #: cached rate allocation for the current running set
        self._rates: dict[int, float] = {}
        self._rates_dirty: bool = True
        #: projected time-to-next-completion over the running set,
        #: computed at reprice time and invalidated lazily by capped
        #: clock advances (see the module docstring for why a full heap
        #: cannot amortize under the monotone contention model)
        self._next_dt: float = math.inf
        self._next_dt_fresh: bool = False
        #: monotone sequence stamped on ops entering the running set, so
        #: same-instant completions fire in legacy start order
        self._start_seq = itertools.count()
        #: callbacks fired at the top of every host synchronization
        #: (sync_event / sync_stream / sync_all), keyed so a registrant
        #: can deregister itself.  The coherence engine's submission
        #: -window coalescer uses this to flush deferred transfers before
        #: the host blocks — otherwise a kernel parked on a window event
        #: that never records would deadlock the sync.
        self._pre_sync_hooks: dict[int, Callable[[], None]] = {}
        self.default_stream = self.create_stream(label="default")
        #: namespaced counters; the historical ``steps`` / ``repricings``
        #: / ``running_set_changes`` attributes remain as read-only
        #: properties over these cells, so BENCH JSON schemas and
        #: existing assertions keep working unchanged
        self.counters = CounterRegistry()
        #: count of rate recomputations: grows with *changes* to the
        #: running set, not with engine steps (engine-efficiency
        #: introspection, asserted by ``sim-bench``)
        self._c_repricings = self.counters.counter("engine.repricings")
        #: engine steps taken (instantaneous drains and clock advances)
        self._c_steps = self.counters.counter("engine.steps")
        #: additions to / removals from the running set
        self._c_running_set_changes = self.counters.counter(
            "engine.running_set_changes"
        )
        self.tracer = current_tracer() if tracer is None else tracer
        if self.tracer.enabled:
            self.tracer.attach_engine(self)

    # -- observability -------------------------------------------------------

    @property
    def repricings(self) -> int:
        return self._c_repricings.value

    @property
    def steps(self) -> int:
        return self._c_steps.value

    @property
    def running_set_changes(self) -> int:
        return self._c_running_set_changes.value

    @property
    def _obs_track(self) -> str:
        """The tracer track this engine's events land on (named by
        :meth:`~repro.obs.trace.Tracer.attach_engine`)."""
        return getattr(self, "_obs_name", "engine")

    def set_tracer(self, tracer: Tracer, name: str | None = None) -> None:
        """Swap in ``tracer`` (e.g. a Session-provided one) and register
        this engine's timeline with it for per-device export tracks."""
        self.tracer = tracer
        if tracer.enabled:
            tracer.attach_engine(self, name=name)

    # -- stream management --------------------------------------------------

    def create_stream(
        self, label: str = "", device_index: int = 0
    ) -> SimStream:
        if not 0 <= device_index < len(self.devices):
            raise InvalidStateError(
                f"device index {device_index} out of range"
                f" (engine has {len(self.devices)} device(s))"
            )
        sid = next(self._stream_ids)
        stream = SimStream(sid, label=label, device_index=device_index)
        self._streams[sid] = stream
        return stream

    @property
    def streams(self) -> tuple[SimStream, ...]:
        return tuple(self._streams.values())

    def stream(self, stream_id: int) -> SimStream:
        return self._streams[stream_id]

    def reclaim_stream(self, stream: SimStream) -> None:
        """Destroy an idle stream and stop scheduling over it.

        Long-lived engines that serve many short-lived contexts (see
        :meth:`repro.core.runtime.GrCUDARuntime.renew_context`) would
        otherwise accumulate an ever-growing population of dead streams.
        The default stream cannot be reclaimed.
        """
        if stream is self.default_stream:
            raise InvalidStateError("cannot reclaim the default stream")
        if self._streams.get(stream.stream_id) is not stream:
            raise InvalidStateError(
                f"stream {stream.label} does not belong to this engine"
            )
        stream.destroy()  # raises if busy
        del self._streams[stream.stream_id]
        self._ready_ids.discard(stream.stream_id)

    def reclaim_streams(self, streams: Iterable[SimStream]) -> None:
        """Reclaim several idle streams (see :meth:`reclaim_stream`)."""
        for stream in streams:
            self.reclaim_stream(stream)

    # -- submission -----------------------------------------------------------

    def submit(self, stream: SimStream, op: Operation) -> Operation:
        """Queue ``op`` on ``stream`` at the current virtual time."""
        if stream.stream_id not in self._streams:
            raise InvalidStateError(f"stream {stream.label} is foreign")
        op.submit_time = self.clock
        was_busy = stream.busy
        stream.submit(op)
        if not was_busy:
            # The new op is the stream head: the stream went idle->busy.
            self._busy_streams += 1
            self._ready_ids.add(stream.stream_id)
        if self.tracer.enabled:
            self.tracer.instant(
                f"submit:{op.label}",
                track=self._obs_track,
                vt=self.clock,
                stream=stream.stream_id,
            )
        return op

    def record_event(
        self, stream: SimStream, event: SimEvent | None = None, label: str = ""
    ) -> SimEvent:
        """Submit an event-record on ``stream``; returns the event."""
        ev = event or SimEvent(label=label or f"ev@{stream.label}")
        self.submit(stream, EventRecordOp(label=ev.label, event=ev))
        return ev

    def wait_event(self, stream: SimStream, event: SimEvent) -> None:
        """Make later work on ``stream`` wait for ``event``."""
        self.submit(
            stream, EventWaitOp(label=f"wait:{event.label}", event=event)
        )

    def charge_host_time(self, seconds: float) -> None:
        """Advance the clock by host-side overhead, simulating the device
        in the background meanwhile (launch overheads, scheduling costs)."""
        if seconds < 0:
            raise ValueError("host time must be >= 0")
        self._advance_to_time(self.clock + seconds)

    # -- synchronization ----------------------------------------------------

    def add_pre_sync_hook(self, key: int, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run at the top of every host sync (keyed so
        the registrant can deregister; re-registering a key replaces)."""
        self._pre_sync_hooks[key] = fn

    def remove_pre_sync_hook(self, key: int) -> None:
        self._pre_sync_hooks.pop(key, None)

    def _fire_pre_sync_hooks(self) -> None:
        if self._pre_sync_hooks:
            # Hooks may deregister themselves (a flushed window removes
            # its hook), so iterate over a snapshot.
            for fn in list(self._pre_sync_hooks.values()):
                fn()

    def sync_event(self, event: SimEvent) -> None:
        """Block the host until ``event`` completes."""
        with self.tracer.span(
            "sync_event",
            track=self._obs_track,
            clock=self._clock,
            event=event.label,
        ):
            self._fire_pre_sync_hooks()
            self._run_until(
                lambda: event.complete, what=f"event {event.label}"
            )

    def sync_stream(self, stream: SimStream) -> None:
        """Block the host until everything queued on ``stream`` completes."""
        with self.tracer.span(
            "sync_stream",
            track=self._obs_track,
            clock=self._clock,
            stream=stream.stream_id,
        ):
            self._fire_pre_sync_hooks()
            self._run_until(
                lambda: not stream.busy, what=f"stream {stream.label}"
            )

    def sync_all(self) -> None:
        """Drain every stream (``cudaDeviceSynchronize``)."""
        with self.tracer.span(
            "sync_all", track=self._obs_track, clock=self._clock
        ):
            self._fire_pre_sync_hooks()
            self._run_until(lambda: self._busy_streams == 0, what="device")

    def _clock(self) -> float:
        """Bound clock reader for tracer spans."""
        return self.clock

    @property
    def idle(self) -> bool:
        return self._busy_streams == 0

    # -- core loop -------------------------------------------------------------

    def _run_until(self, pred: Callable[[], bool], what: str) -> None:
        while not pred():
            if not self._step():
                raise DeadlockError(
                    f"waiting on {what}, but no operation can make progress"
                    " (cyclic event wait or event never recorded)"
                )

    def _advance_to_time(self, target: float) -> None:
        """Simulate until ``clock == target`` (GPU may go idle earlier)."""
        while self.clock < target:
            if not self._step(time_cap=target):
                self.clock = target
                return

    def _reprice(self) -> None:
        """Re-price the running set and recompute the projected
        next-completion jump.

        Only called when the running set actually changed since the last
        pricing; rates are piecewise-constant in between, so the cached
        allocation and projected minimum stay exact.
        """
        self._c_repricings.value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "reprice",
                track=self._obs_track,
                vt=self.clock,
                running=len(self._running),
            )
        rates: dict[int, float] = {}
        if len(self.devices) == 1:
            rates = self.device.contention.allocate(self._running).rates
        else:
            by_device: dict[int, list[Operation]] = {}
            for op in self._running:
                assert op.stream is not None
                by_device.setdefault(op.stream.device_index, []).append(op)
            for idx, ops in by_device.items():
                rates.update(
                    self.devices[idx].contention.allocate(ops).rates
                )
        next_dt = math.inf
        for op in self._running:
            rate = rates.get(op.op_id, 0.0)
            if rate <= 0:
                raise SimulationError(
                    f"{op.describe()} allocated non-positive rate {rate}"
                )
            next_dt = min(next_dt, op.work_remaining / rate)
        self._rates = rates
        self._rates_dirty = False
        self._next_dt = next_dt
        self._next_dt_fresh = True

    def _step(self, time_cap: float | None = None) -> bool:
        """One engine step.  Returns False if no progress is possible.

        Instantaneous progress (op starts, event records) returns
        immediately without advancing the clock, so host-side sync
        predicates are re-checked at the tightest possible points.
        """
        self._c_steps.value += 1
        if self._drain_instantaneous():
            return True
        if not self._running:
            return False
        if self._rates_dirty:
            self._reprice()
        rates = self._rates
        if self._next_dt_fresh:
            dt = self._next_dt
        else:
            # A capped advance decremented the outstanding work since the
            # projection was computed; the running set (and rates) are
            # unchanged, so a fresh min over the survivors is still exact.
            dt = min(
                op.work_remaining / rates[op.op_id] for op in self._running
            )
        if time_cap is not None:
            dt = min(dt, time_cap - self.clock)
        if dt < 0 or not math.isfinite(dt):
            raise SimulationError(f"invalid time step {dt}")
        self.clock += dt
        finished: list[Operation] = []
        for op in self._running:
            rate = rates[op.op_id]
            op.work_remaining -= rate * dt
            if op.work_remaining <= _WORK_EPS * max(1.0, op.work_total):
                op.work_remaining = 0.0
                finished.append(op)
        if finished:
            # Same-instant completions fire in the order the ops started
            # (the legacy running-list order), not in swap-pop order.
            finished.sort(key=lambda op: op.start_seq)
            for op in finished:
                self._complete(op)
        else:
            self._next_dt_fresh = False
        return True

    def _drain_instantaneous(self) -> bool:
        """Start all ready ops; complete the zero-duration ones, looping
        until no cascade remains (an event record can unblock waits).

        Only streams whose head *might* have become startable are
        visited; a popped stream whose head is still blocked is parked
        on its incomplete wait events and re-queued when they record.
        """
        progressed = False
        while self._ready_ids:
            # Creation order (= ascending stream id), matching the
            # legacy full-scan pass order.
            batch = sorted(self._ready_ids)
            self._ready_ids.clear()
            for sid in batch:
                stream = self._streams.get(sid)
                if stream is None:
                    continue
                op = stream.head_if_ready()
                if op is None:
                    self._park_if_blocked(stream)
                    continue
                self._start(op)
                progressed = True
                if op.instantaneous:
                    self._complete(op)
        return progressed

    def _park_if_blocked(self, stream: SimStream) -> None:
        """Register a blocked stream head on its incomplete wait events,
        so the event records (the only way the head can unblock) re-queue
        the stream instead of every step re-scanning it."""
        if stream.running is not None or not stream.pending:
            return
        head = stream.pending[0]
        for event in head.wait_events:
            if not event.complete:
                event.add_waiter(stream)

    # -- op lifecycle -----------------------------------------------------------

    def _start(self, op: Operation) -> None:
        assert op.stream is not None
        op.stream.begin(op)
        op.state = OpState.RUNNING
        op.start_time = self.clock
        if not op.instantaneous:
            op.start_seq = next(self._start_seq)
            self._running_pos[op.op_id] = len(self._running)
            self._running.append(op)
            self._rates_dirty = True
            self._c_running_set_changes.value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                f"start:{op.label}",
                track=self._obs_track,
                vt=self.clock,
                stream=op.stream.stream_id,
            )

    def _remove_running(self, op: Operation) -> None:
        pos = self._running_pos.pop(op.op_id, None)
        if pos is None:
            return
        last = self._running.pop()
        if last is not op:
            self._running[pos] = last
            self._running_pos[last.op_id] = pos
        self._rates_dirty = True
        self._next_dt_fresh = False
        self._c_running_set_changes.value += 1

    def _complete(self, op: Operation) -> None:
        assert op.stream is not None
        op.state = OpState.COMPLETE
        op.end_time = self.clock
        self._remove_running(op)
        stream = op.stream
        stream.finish(op)
        if stream.pending:
            # More work queued behind: the new head may be startable.
            self._ready_ids.add(stream.stream_id)
        else:
            self._busy_streams -= 1
        self._record(op)
        self._apply_effects(op)
        if self.tracer.enabled and not op.instantaneous:
            self.tracer.complete(
                op.label,
                track=self._obs_track,
                vt_start=op.start_time,
                vt_end=op.end_time,
                stream=stream.stream_id,
            )
        for callback in op.on_complete:
            callback(op)

    def _apply_effects(self, op: Operation) -> None:
        if isinstance(op, EventRecordOp):
            assert op.event is not None
            op.event._record(self.clock)
            for waiter in op.event.pop_waiters():
                if waiter.stream_id in self._streams:
                    self._ready_ids.add(waiter.stream_id)
        elif isinstance(op, TransferOp) and op.apply_fn is not None:
            op.apply_fn()
        elif isinstance(op, KernelOp) and op.compute_fn is not None:
            op.compute_fn()

    def _record(self, op: Operation) -> None:
        assert op.stream is not None
        if isinstance(op, KernelOp):
            kind = IntervalKind.KERNEL
            nbytes = 0.0
            meta = {"resources": op.resources}
        elif isinstance(op, TransferOp):
            kind = {
                TransferDirection.HOST_TO_DEVICE: IntervalKind.TRANSFER_HTOD,
                TransferDirection.DEVICE_TO_HOST: IntervalKind.TRANSFER_DTOH,
                TransferDirection.DEVICE_TO_DEVICE: IntervalKind.TRANSFER_D2D,
            }[op.direction]
            nbytes = op.nbytes
            meta = {"kind": op.kind}
        else:
            kind = IntervalKind.EVENT
            nbytes = 0.0
            meta = {}
        meta.update(op.info)
        self.timeline.add(
            TimelineRecord(
                op_id=op.op_id,
                label=op.label,
                kind=kind,
                stream_id=op.stream.stream_id,
                start=op.start_time,
                end=op.end_time,
                nbytes=nbytes,
                meta=meta,
            )
        )
