"""Discrete-event simulation engine.

The engine owns the virtual clock, the set of streams and the running
operations.  Host code (the scheduler) submits operations and then asks
the engine to advance — to a stream sync, to an event, or until all queued
work drains.  Between host sync points the clock does not move: host
actions are modelled as instantaneous unless an explicit host overhead is
charged via :meth:`SimEngine.charge_host_time`.

Rate-based progress: whenever the running set changes, the contention
model re-prices everyone's progress rate; the clock then jumps straight to
the earliest completion.  This is exact for piecewise-constant rates.

Per-op cost is independent of the live-stream count — O(classes + log n)
rather than O(running):

* running kernels are grouped into **contention-class runs** (one per
  distinct resource signature per device) and transfers into
  per-direction DMA runs; a reprice asks the incremental
  :class:`~repro.gpusim.contention.ClassedContentionModel` for one rate
  per *class* (``repricings`` counts true repricings, ``steps`` counts
  engine steps, ``class_repricings`` counts per-class rate computations);
* a clock advance decrements only each run's *head* — the member with
  the least remaining work.  The other members accrue progress lazily
  through a per-run chain of per-step work deltas (the run's progress
  integral) and settle by replaying their suffix of the chain when they
  are promoted to head, which reproduces the exact sequential
  floating-point decrements the frozen reference engine performs;
* the next completion is the minimum over the per-class head
  projections — one division per *run*, folded into the same O(classes)
  pass that decrements the heads;
* queued same-direction DMA transfers progress at a trickle rate and
  almost never matter for the next completion; a conservative *probe*
  on a global **lazy deferred-event heap** guards the rare case where
  one does.  Probes are keyed by absolute virtual fire time, pushed
  once per queue change rather than per step, invalidated by a per-run
  epoch and dropped stale on pop (``heap_stale_drops``) — the
  defer-invalidation discipline of a lazy priority queue.  A firing
  probe settles its queue and switches it to exact per-member
  accounting before any member can cross its completion threshold;
* startable operations come from a *ready-stream* queue fed by
  notifications — submission to an idle stream, an event record
  unblocking a parked head, an operation finishing with work queued
  behind it — instead of scanning every stream per step;
* removal from the running set is O(1) (index map + swap-pop), and a
  busy-stream counter makes ``idle``/``sync_all`` O(1) per check.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Callable, Iterable

from repro.errors import DeadlockError, InvalidStateError, SimulationError
from repro.gpusim.contention import ContentionModel
from repro.gpusim.device import Device
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.gpusim.ops import (
    EventRecordOp,
    EventWaitOp,
    KernelOp,
    Operation,
    OpState,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.stream import DEFAULT_STREAM_ID, SimEvent, SimStream
from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord

#: Completion tolerance for floating-point work accounting.
_WORK_EPS = 1e-9

#: Rate of DMA transfers queued behind their direction's head (shared
#: with the contention model's one-shot allocator).
_DMA_QUEUE_RATE = ContentionModel._DMA_QUEUE_RATE

def _completion_threshold(op: Operation) -> float:
    """``_WORK_EPS * max(1.0, work_total)`` without the max() call."""
    total = op.work_total
    return _WORK_EPS * (total if total > 1.0 else 1.0)


class _KernelRun:
    """All running kernels of one contention class on one device.

    ``head`` is the member with the least remaining work (members share
    ``work_total`` and rate, so remaining work is FIFO in start order);
    only the head is decremented eagerly.  ``laggards`` wait with their
    join index into ``chain``, the run's list of per-step work deltas;
    a promoted laggard replays its chain suffix, reproducing the exact
    per-step float subtractions the reference engine would have done.
    """

    __slots__ = ("cls", "rate", "head", "laggards", "chain", "chain_base")

    def __init__(self, cls, head: KernelOp) -> None:
        self.cls = cls
        self.rate = -1.0  # priced before the first advance (reprice)
        self.head: KernelOp | None = head
        self.laggards: deque[tuple[KernelOp, int]] = deque()
        self.chain: list[float] = []
        self.chain_base = 0


class _TransferRun:
    """All running transfers of one direction on one device's DMA engine.

    The head owns the PCIe link; queue members (a heap ordered by op_id,
    the DMA submission order) trickle at :data:`_DMA_QUEUE_RATE` through
    the same lazy delta chain as kernel laggards.  ``qlb``/``qsum`` keep
    a conservative lower bound on any member's remaining work, feeding
    the probe entries that guard against a queued member completing
    before the head; once a probe fires the run turns ``eager`` and
    members are settled exactly every step until the queue drains.
    ``epoch`` lazily invalidates probes outlived by a settle or drain.
    """

    __slots__ = (
        "key", "bw", "epoch", "head", "queue", "chain", "chain_base",
        "qsum", "qlb", "qthresh", "eager",
    )

    def __init__(
        self, key: tuple[int, TransferDirection], bw: float, head: TransferOp
    ) -> None:
        self.key = key
        self.bw = bw
        self.epoch = 0
        self.head: TransferOp | None = head
        self.queue: list[tuple[int, int, TransferOp]] = []
        self.chain: list[float] = []
        self.chain_base = 0
        self.qsum = 0.0
        self.qlb = math.inf
        self.qthresh = 0.0
        self.eager = False


class SimEngine:
    """Virtual-time executor for one or more :class:`Device` s.

    Multi-GPU engines (the paper's section-VI future work) share one
    virtual clock and one event space; each stream belongs to a device,
    and the contention model of *that* device prices its running
    operations (each GPU has its own SMs, bandwidth pools and PCIe
    link).
    """

    def __init__(
        self,
        device: Device | list[Device],
        tracer: Tracer | None = None,
    ) -> None:
        devices = [device] if isinstance(device, Device) else list(device)
        if not devices:
            raise InvalidStateError("engine needs at least one device")
        self.devices: tuple[Device, ...] = tuple(devices)
        self.device = self.devices[0]  # primary, single-GPU API
        self.clock: float = 0.0
        self.timeline = Timeline()
        self._streams: dict[int, SimStream] = {}
        self._stream_ids = itertools.count(DEFAULT_STREAM_ID)
        self._running: list[Operation] = []
        #: op_id -> position in ``_running`` (O(1) swap-pop removal)
        self._running_pos: dict[int, int] = {}
        #: stream ids whose head *may* be startable; validated lazily
        self._ready_ids: set[int] = set()
        #: streams with at least one queued or running operation
        self._busy_streams: int = 0
        #: live contention-class runs: one per distinct kernel resource
        #: signature per device (keyed by the interned class object) and
        #: one per (device, transfer direction)
        self._kernel_runs: dict[object, _KernelRun] = {}
        self._transfer_runs: dict[
            tuple[int, TransferDirection], _TransferRun
        ] = {}
        #: running kernel op_id -> (device model, contention class), so
        #: completion can decrement the class count in O(1)
        self._op_run: dict[int, tuple] = {}
        #: global lazy deferred-event heap of transfer-queue probes —
        #: ``(abs_fire_time, seq, run, epoch)`` entries, pushed per
        #: queue change (not per step); stale epochs are dropped on pop
        self._heap: list[tuple] = []
        self._heap_seq = itertools.count()
        self._rates_dirty: bool = True
        #: monotone sequence stamped on ops entering the running set, so
        #: same-instant completions fire in legacy start order
        self._start_seq = itertools.count()
        #: callbacks fired at the top of every host synchronization
        #: (sync_event / sync_stream / sync_all), keyed so a registrant
        #: can deregister itself.  The coherence engine's submission
        #: -window coalescer uses this to flush deferred transfers before
        #: the host blocks — otherwise a kernel parked on a window event
        #: that never records would deadlock the sync.
        self._pre_sync_hooks: dict[int, Callable[[], None]] = {}
        self.default_stream = self.create_stream(label="default")
        #: namespaced counters; the historical ``steps`` / ``repricings``
        #: / ``running_set_changes`` attributes remain as read-only
        #: properties over these cells, so BENCH JSON schemas and
        #: existing assertions keep working unchanged
        self.counters = CounterRegistry()
        #: count of rate recomputations: grows with *changes* to the
        #: running set, not with engine steps (engine-efficiency
        #: introspection, asserted by ``sim-bench``)
        self._c_repricings = self.counters.counter("engine.repricings")
        #: engine steps taken (instantaneous drains and clock advances)
        self._c_steps = self.counters.counter("engine.steps")
        #: additions to / removals from the running set
        self._c_running_set_changes = self.counters.counter(
            "engine.running_set_changes"
        )
        #: per-class rate computations across all repricings: the true
        #: repricing cost of the classed engine (compare against
        #: ``repricings * running`` for the per-op design it replaces)
        self._c_class_repricings = self.counters.counter(
            "engine.class_repricings"
        )
        #: deferred-event-heap traffic: probes pushed, and stale probes
        #: dropped on pop (the lazy-invalidation rate)
        self._c_heap_pushes = self.counters.counter("engine.heap_pushes")
        self._c_heap_stale = self.counters.counter(
            "engine.heap_stale_drops"
        )
        self.tracer = current_tracer() if tracer is None else tracer
        if self.tracer.enabled:
            self.tracer.attach_engine(self)

    # -- observability -------------------------------------------------------

    @property
    def repricings(self) -> int:
        return self._c_repricings.value

    @property
    def steps(self) -> int:
        return self._c_steps.value

    @property
    def running_set_changes(self) -> int:
        return self._c_running_set_changes.value

    @property
    def active_classes(self) -> int:
        """Live contention-class runs (kernel classes + DMA directions)."""
        return len(self._kernel_runs) + len(self._transfer_runs)

    @property
    def _obs_track(self) -> str:
        """The tracer track this engine's events land on (named by
        :meth:`~repro.obs.trace.Tracer.attach_engine`)."""
        return getattr(self, "_obs_name", "engine")

    def set_tracer(self, tracer: Tracer, name: str | None = None) -> None:
        """Swap in ``tracer`` (e.g. a Session-provided one) and register
        this engine's timeline with it for per-device export tracks."""
        self.tracer = tracer
        if tracer.enabled:
            tracer.attach_engine(self, name=name)

    # -- stream management --------------------------------------------------

    def create_stream(
        self, label: str = "", device_index: int = 0
    ) -> SimStream:
        if not 0 <= device_index < len(self.devices):
            raise InvalidStateError(
                f"device index {device_index} out of range"
                f" (engine has {len(self.devices)} device(s))"
            )
        sid = next(self._stream_ids)
        stream = SimStream(sid, label=label, device_index=device_index)
        self._streams[sid] = stream
        return stream

    @property
    def streams(self) -> tuple[SimStream, ...]:
        return tuple(self._streams.values())

    def stream(self, stream_id: int) -> SimStream:
        return self._streams[stream_id]

    def reclaim_stream(self, stream: SimStream) -> None:
        """Destroy an idle stream and stop scheduling over it.

        Long-lived engines that serve many short-lived contexts (see
        :meth:`repro.core.runtime.GrCUDARuntime.renew_context`) would
        otherwise accumulate an ever-growing population of dead streams.
        The default stream cannot be reclaimed.
        """
        if stream is self.default_stream:
            raise InvalidStateError("cannot reclaim the default stream")
        if self._streams.get(stream.stream_id) is not stream:
            raise InvalidStateError(
                f"stream {stream.label} does not belong to this engine"
            )
        stream.destroy()  # raises if busy
        del self._streams[stream.stream_id]
        self._ready_ids.discard(stream.stream_id)

    def reclaim_streams(self, streams: Iterable[SimStream]) -> None:
        """Reclaim several idle streams (see :meth:`reclaim_stream`)."""
        for stream in streams:
            self.reclaim_stream(stream)

    # -- submission -----------------------------------------------------------

    def submit(self, stream: SimStream, op: Operation) -> Operation:
        """Queue ``op`` on ``stream`` at the current virtual time."""
        if stream.stream_id not in self._streams:
            raise InvalidStateError(f"stream {stream.label} is foreign")
        op.submit_time = self.clock
        was_busy = stream.busy
        stream.submit(op)
        if not was_busy:
            # The new op is the stream head: the stream went idle->busy.
            self._busy_streams += 1
            self._ready_ids.add(stream.stream_id)
        if self.tracer.enabled:
            self.tracer.instant(
                f"submit:{op.label}",
                track=self._obs_track,
                vt=self.clock,
                stream=stream.stream_id,
            )
        return op

    def record_event(
        self, stream: SimStream, event: SimEvent | None = None, label: str = ""
    ) -> SimEvent:
        """Submit an event-record on ``stream``; returns the event."""
        ev = event or SimEvent(label=label or f"ev@{stream.label}")
        self.submit(stream, EventRecordOp(label=ev.label, event=ev))
        return ev

    def wait_event(self, stream: SimStream, event: SimEvent) -> None:
        """Make later work on ``stream`` wait for ``event``."""
        self.submit(
            stream, EventWaitOp(label=f"wait:{event.label}", event=event)
        )

    def charge_host_time(self, seconds: float) -> None:
        """Advance the clock by host-side overhead, simulating the device
        in the background meanwhile (launch overheads, scheduling costs)."""
        if seconds < 0:
            raise ValueError("host time must be >= 0")
        self._advance_to_time(self.clock + seconds)

    # -- synchronization ----------------------------------------------------

    def add_pre_sync_hook(self, key: int, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run at the top of every host sync (keyed so
        the registrant can deregister; re-registering a key replaces)."""
        self._pre_sync_hooks[key] = fn

    def remove_pre_sync_hook(self, key: int) -> None:
        self._pre_sync_hooks.pop(key, None)

    def _fire_pre_sync_hooks(self) -> None:
        if self._pre_sync_hooks:
            # Hooks may deregister themselves (a flushed window removes
            # its hook), so iterate over a snapshot.
            for fn in list(self._pre_sync_hooks.values()):
                fn()

    def sync_event(self, event: SimEvent) -> None:
        """Block the host until ``event`` completes."""
        with self.tracer.span(
            "sync_event",
            track=self._obs_track,
            clock=self._clock,
            event=event.label,
        ):
            self._fire_pre_sync_hooks()
            self._run_until(
                lambda: event.complete, what=f"event {event.label}"
            )

    def sync_stream(self, stream: SimStream) -> None:
        """Block the host until everything queued on ``stream`` completes."""
        with self.tracer.span(
            "sync_stream",
            track=self._obs_track,
            clock=self._clock,
            stream=stream.stream_id,
        ):
            self._fire_pre_sync_hooks()
            self._run_until(
                lambda: not stream.busy, what=f"stream {stream.label}"
            )

    def sync_all(self) -> None:
        """Drain every stream (``cudaDeviceSynchronize``)."""
        with self.tracer.span(
            "sync_all", track=self._obs_track, clock=self._clock
        ):
            self._fire_pre_sync_hooks()
            self._run_until(lambda: self._busy_streams == 0, what="device")

    def _clock(self) -> float:
        """Bound clock reader for tracer spans."""
        return self.clock

    @property
    def idle(self) -> bool:
        return self._busy_streams == 0

    # -- core loop -------------------------------------------------------------

    def _run_until(self, pred: Callable[[], bool], what: str) -> None:
        while not pred():
            if not self._step():
                raise DeadlockError(
                    f"waiting on {what}, but no operation can make progress"
                    " (cyclic event wait or event never recorded)"
                )

    def _advance_to_time(self, target: float) -> None:
        """Simulate until ``clock == target`` (GPU may go idle earlier)."""
        while self.clock < target:
            if not self._step(time_cap=target):
                self.clock = target
                return

    def _reprice(self) -> None:
        """Re-price the active contention classes.

        Only called when the running set actually changed since the last
        pricing; rates are piecewise-constant in between.  Cost is
        O(classes), not O(running ops): each device's incremental model
        prices one rate per class (memoized on the active multiset, so
        revisited running sets cost a dict hit).
        """
        self._c_repricings.value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "reprice",
                track=self._obs_track,
                vt=self.clock,
                running=len(self._running),
            )
        runs = self._kernel_runs
        for device in self.devices:
            repriced = device.contention.reprice_classes()
            if not repriced:
                continue
            self._c_class_repricings.value += len(repriced)
            for cls, rate, _share in repriced:
                if rate <= 0:
                    head = runs[cls].head
                    assert head is not None
                    raise SimulationError(
                        f"{head.describe()} allocated non-positive"
                        f" rate {rate}"
                    )
                runs[cls].rate = rate
        self._rates_dirty = False

    def _next_completion_dt(self) -> float:
        """Time to the next completion: the minimum head projection over
        the live runs (one division per *class*, not per op).

        This equals the minimum the reference engine computes by
        scanning every running op: kernel laggards can never finish
        before their class head (same work_total, same rate, joined
        later — float division is monotone in the numerator), and
        non-eager queued transfers are guarded by their probes.  Due
        probes — those that would fire at or before the scan minimum —
        settle their queue into exact ``eager`` accounting *now*, which
        is never later than their nominal fire time, and the settled
        members join the scan.
        """
        kernel_runs = self._kernel_runs
        best = (
            min([r.head.work_remaining / r.rate for r in kernel_runs.values()])
            if kernel_runs
            else math.inf
        )
        for run in self._transfer_runs.values():
            dt = run.head.work_remaining / run.bw
            if dt < best:
                best = dt
            if run.eager:
                for _op_id, _join, member in run.queue:
                    dt = member.work_remaining / _DMA_QUEUE_RATE
                    if dt < best:
                        best = dt
        heap = self._heap
        stale = 0
        clock = self.clock
        while heap:
            fire_at, _seq, run, epoch = heap[0]
            if epoch != run.epoch:
                heapq.heappop(heap)
                stale += 1
                continue
            if fire_at > clock + best:
                break  # not due: every queued member stays above its
                # completion threshold through the coming step
            heapq.heappop(heap)
            self._probe_transfer_queue(run)
            for _op_id, _join, member in run.queue:
                dt = member.work_remaining / _DMA_QUEUE_RATE
                if dt < best:
                    best = dt
        if stale:
            self._c_heap_stale.value += stale
        return best

    def _step(self, time_cap: float | None = None) -> bool:
        """One engine step.  Returns False if no progress is possible.

        Instantaneous progress (op starts, event records) returns
        immediately without advancing the clock, so host-side sync
        predicates are re-checked at the tightest possible points.
        """
        self._c_steps.value += 1
        if self._drain_instantaneous():
            return True
        if not self._running:
            return False
        if self._rates_dirty:
            self._reprice()
        dt = self._next_completion_dt()
        if time_cap is not None:
            dt = min(dt, time_cap - self.clock)
        if dt < 0 or not math.isfinite(dt):
            raise SimulationError(f"invalid time step {dt}")
        self.clock += dt
        finished = self._apply_progress(dt)
        if finished:
            # Same-instant completions fire in the order the ops started
            # (the legacy running-list order), not in per-run order.
            finished.sort(key=lambda op: op.start_seq)
            for op in finished:
                self._complete(op)
        return True

    def _apply_progress(self, dt: float) -> list[Operation]:
        """Advance every run by ``dt``: decrement heads eagerly, append
        the per-step delta to each run's progress chain for its lazy
        members, and collect completions (promoting new heads as they
        surface).  O(classes + log n) per op, independent of the
        running-set size."""
        finished: list[Operation] = []
        eps = _WORK_EPS

        dead_kernel_runs = None
        for run in self._kernel_runs.values():
            head = run.head
            assert head is not None
            delta = run.rate * dt
            w = head.work_remaining - delta
            head.work_remaining = w
            if run.laggards and delta != 0.0:
                run.chain.append(delta)
            while w <= eps:  # kernels: work_total == 1.0 exactly
                head.work_remaining = 0.0
                finished.append(head)
                head = self._promote_kernel(run)
                if head is None:
                    break
                w = head.work_remaining
            if head is None:
                if dead_kernel_runs is None:
                    dead_kernel_runs = []
                dead_kernel_runs.append(run.cls)
        if dead_kernel_runs:
            for cls in dead_kernel_runs:
                del self._kernel_runs[cls]

        dead_transfer_runs = None
        for run in self._transfer_runs.values():
            head = run.head
            assert head is not None
            delta = run.bw * dt
            w = head.work_remaining - delta
            head.work_remaining = w
            queue = run.queue
            if queue:
                dq = _DMA_QUEUE_RATE * dt
                if run.eager:
                    # Exact per-member accounting (reference semantics):
                    # a probe fired because a queued member's completion
                    # may matter, so decrement and check each one.
                    crossed = None
                    for op_id, _join, member in queue:
                        mw = member.work_remaining - dq
                        member.work_remaining = mw
                        if mw <= _completion_threshold(member):
                            member.work_remaining = 0.0
                            finished.append(member)
                            if crossed is None:
                                crossed = set()
                            crossed.add(op_id)
                    if crossed:
                        queue = [e for e in queue if e[0] not in crossed]
                        heapq.heapify(queue)
                        run.queue = queue
                elif dq != 0.0:
                    run.chain.append(dq)
                    run.qsum += dq
            thresh = _completion_threshold(head)
            while w <= thresh:
                head.work_remaining = 0.0
                finished.append(head)
                head = self._promote_transfer(run)
                if head is None:
                    break
                w = head.work_remaining
                thresh = _completion_threshold(head)
            if head is None:
                if dead_transfer_runs is None:
                    dead_transfer_runs = []
                dead_transfer_runs.append(run.key)
        if dead_transfer_runs:
            for key in dead_transfer_runs:
                del self._transfer_runs[key]

        # Bound heap garbage: stale probes are dropped on pop, but a
        # busy DMA queue can accumulate them faster than pops retire
        # them.
        heap = self._heap
        if len(heap) > 64 and len(heap) > 8 * (len(self._transfer_runs) + 1):
            live = [e for e in heap if e[3] == e[2].epoch]
            self._c_heap_stale.value += len(heap) - len(live)
            heapq.heapify(live)
            self._heap = live
        return finished

    def _promote_kernel(self, run: _KernelRun) -> KernelOp | None:
        """Pop the next head of a kernel run: settle the oldest laggard
        by replaying its suffix of the progress chain (bitwise the same
        subtractions the reference engine performed step by step)."""
        laggards = run.laggards
        if not laggards:
            run.head = None
            return None
        op, join = laggards.popleft()
        chain = run.chain
        base = run.chain_base
        w = op.work_remaining
        for d in chain[join - base:]:
            w -= d
        op.work_remaining = w
        run.head = op
        if laggards:
            cut = laggards[0][1] - base
            if cut > 32:  # compact the replayed prefix occasionally
                del chain[:cut]
                run.chain_base = base + cut
        else:
            run.chain_base = base + len(chain)
            chain.clear()
        return op

    def _promote_transfer(self, run: _TransferRun) -> TransferOp | None:
        """Pop the next DMA head (lowest op_id) and settle its lazy
        trickle progress; an emptied queue resets the run's chain and
        leaves eager mode."""
        queue = run.queue
        if not queue:
            run.head = None
            return None
        _op_id, join, op = heapq.heappop(queue)
        if not run.eager:
            chain = run.chain
            w = op.work_remaining
            for d in chain[join - run.chain_base:]:
                w -= d
            op.work_remaining = w
        run.head = op
        if not queue:
            # Queue drained: reset the lazy state and invalidate any
            # outstanding probes (they guarded the old queue).
            run.chain_base += len(run.chain)
            run.chain.clear()
            run.qsum = 0.0
            run.qlb = math.inf
            run.eager = False
            run.epoch += 1
        return op

    def _settle_transfer_queue(self, run: _TransferRun) -> None:
        """Replay every queue member's chain suffix so all residuals are
        exact *now*; rebase joins and reset the chain."""
        chain = run.chain
        base = run.chain_base
        top = base + len(chain)
        qlb = math.inf
        if chain:
            queue = run.queue
            for i, (op_id, join, op) in enumerate(queue):
                w = op.work_remaining
                for d in chain[join - base:]:
                    w -= d
                op.work_remaining = w
                # op_id (the heap key) is unchanged: order holds.
                queue[i] = (op_id, top, op)
                if w < qlb:
                    qlb = w
        else:
            for _op_id, _join, op in run.queue:
                if op.work_remaining < qlb:
                    qlb = op.work_remaining
        run.chain_base = top
        chain.clear()
        run.qsum = 0.0
        run.qlb = qlb

    def _probe_transfer_queue(self, run: _TransferRun) -> None:
        """A probe fired: a queued member's completion is close enough
        (at the trickle rate) to possibly precede every other event.
        Settle the queue and switch to exact per-member accounting —
        the completion scan covers eager members directly."""
        self._settle_transfer_queue(run)
        run.eager = True
        run.epoch += 1  # any sibling probes are now stale

    def _push_transfer_probe(self, run: _TransferRun) -> None:
        """Push the conservative queued-completion guard for ``run``.

        ``qlb - 1.01*qsum`` lower-bounds every member's current residual
        (settled lower bound minus slack-inflated trickle progress);
        subtracting twice the largest completion threshold and taking a
        quarter of the implied trickle time gives a fire time the member
        residuals provably cannot reach their thresholds by, so the
        probe is keyed into the deferred-event heap at that *absolute*
        virtual time and left alone — no per-step re-push.  Any step
        that would advance the clock to or past the fire time settles
        the queue first.  A non-positive bound settles immediately.
        """
        bound = run.qlb - 1.01 * run.qsum - 2.0 * run.qthresh
        if bound <= 0.0:
            self._probe_transfer_queue(run)
            return
        heapq.heappush(
            self._heap,
            (
                self.clock + 0.25 * bound / _DMA_QUEUE_RATE,
                next(self._heap_seq),
                run,
                run.epoch,
            ),
        )
        self._c_heap_pushes.value += 1

    def _drain_instantaneous(self) -> bool:
        """Start all ready ops; complete the zero-duration ones, looping
        until no cascade remains (an event record can unblock waits).

        Only streams whose head *might* have become startable are
        visited; a popped stream whose head is still blocked is parked
        on its incomplete wait events and re-queued when they record.
        """
        progressed = False
        while self._ready_ids:
            # Creation order (= ascending stream id), matching the
            # legacy full-scan pass order.
            batch = sorted(self._ready_ids)
            self._ready_ids.clear()
            for sid in batch:
                stream = self._streams.get(sid)
                if stream is None:
                    continue
                op = stream.head_if_ready()
                if op is None:
                    self._park_if_blocked(stream)
                    continue
                self._start(op)
                progressed = True
                if op.instantaneous:
                    self._complete(op)
        return progressed

    def _park_if_blocked(self, stream: SimStream) -> None:
        """Register a blocked stream head on its incomplete wait events,
        so the event records (the only way the head can unblock) re-queue
        the stream instead of every step re-scanning it."""
        if stream.running is not None or not stream.pending:
            return
        head = stream.pending[0]
        for event in head.wait_events:
            if not event.complete:
                event.add_waiter(stream)

    # -- op lifecycle -----------------------------------------------------------

    def _start(self, op: Operation) -> None:
        assert op.stream is not None
        op.stream.begin(op)
        op.state = OpState.RUNNING
        op.start_time = self.clock
        if not op.instantaneous:
            op.start_seq = next(self._start_seq)
            self._running_pos[op.op_id] = len(self._running)
            self._running.append(op)
            self._rates_dirty = True
            self._c_running_set_changes.value += 1
            self._class_add(op)
        if self.tracer.enabled:
            self.tracer.instant(
                f"start:{op.label}",
                track=self._obs_track,
                vt=self.clock,
                stream=op.stream.stream_id,
            )

    def _class_add(self, op: Operation) -> None:
        """File a newly running op into its contention-class run."""
        assert op.stream is not None
        device_index = op.stream.device_index
        if isinstance(op, KernelOp):
            model = self.devices[device_index].contention
            cls = model.class_add(op)
            self._op_run[op.op_id] = (model, cls)
            run = self._kernel_runs.get(cls)
            if run is None:
                self._kernel_runs[cls] = _KernelRun(cls, op)
                self.counters.set_max("engine.classes", self.active_classes)
            else:
                run.laggards.append(
                    (op, run.chain_base + len(run.chain))
                )
        elif isinstance(op, TransferOp):
            key = (device_index, op.direction)
            run = self._transfer_runs.get(key)
            if run is None:
                bw = self.devices[device_index].spec.pcie_bandwidth_gbs * 1e9
                self._transfer_runs[key] = _TransferRun(key, bw, op)
                self.counters.set_max("engine.classes", self.active_classes)
            elif op.op_id < run.head.op_id:
                # A transfer constructed earlier (e.g. deferred by the
                # coherence window) starts after a younger one: the DMA
                # engine serves by submission (op_id) order, so the
                # younger head steps aside into the queue.
                self._queue_transfer(run, run.head)
                run.head = op
            else:
                self._queue_transfer(run, op)
        else:
            raise SimulationError(
                f"{op.describe()}: no contention class for this op type"
            )

    def _queue_transfer(self, run: _TransferRun, op: TransferOp) -> None:
        heapq.heappush(
            run.queue, (op.op_id, run.chain_base + len(run.chain), op)
        )
        w = op.work_remaining
        if w < run.qlb:
            run.qlb = w
        thresh = _completion_threshold(op)
        if thresh > run.qthresh:
            run.qthresh = thresh
        if not run.eager:
            # Eager members are covered by the completion scan; lazy
            # queues need a (tighter) probe for the new member.
            self._push_transfer_probe(run)

    def _remove_running(self, op: Operation) -> None:
        pos = self._running_pos.pop(op.op_id, None)
        if pos is None:
            return
        last = self._running.pop()
        if last is not op:
            self._running[pos] = last
            self._running_pos[last.op_id] = pos
        entry = self._op_run.pop(op.op_id, None)
        if entry is not None:
            model, cls = entry
            model.class_remove(cls)
            model.forget_op(op.op_id)
        self._rates_dirty = True
        self._c_running_set_changes.value += 1

    def _complete(self, op: Operation) -> None:
        assert op.stream is not None
        op.state = OpState.COMPLETE
        op.end_time = self.clock
        self._remove_running(op)
        stream = op.stream
        stream.finish(op)
        if stream.pending:
            # More work queued behind: the new head may be startable.
            self._ready_ids.add(stream.stream_id)
        else:
            self._busy_streams -= 1
        self._record(op)
        self._apply_effects(op)
        if self.tracer.enabled and not op.instantaneous:
            self.tracer.complete(
                op.label,
                track=self._obs_track,
                vt_start=op.start_time,
                vt_end=op.end_time,
                stream=stream.stream_id,
            )
        for callback in op.on_complete:
            callback(op)

    def _apply_effects(self, op: Operation) -> None:
        if isinstance(op, EventRecordOp):
            assert op.event is not None
            op.event._record(self.clock)
            for waiter in op.event.pop_waiters():
                if waiter.stream_id in self._streams:
                    self._ready_ids.add(waiter.stream_id)
        elif isinstance(op, TransferOp) and op.apply_fn is not None:
            op.apply_fn()
        elif isinstance(op, KernelOp) and op.compute_fn is not None:
            op.compute_fn()

    def _record(self, op: Operation) -> None:
        assert op.stream is not None
        if isinstance(op, KernelOp):
            kind = IntervalKind.KERNEL
            nbytes = 0.0
            meta = {"resources": op.resources}
        elif isinstance(op, TransferOp):
            kind = {
                TransferDirection.HOST_TO_DEVICE: IntervalKind.TRANSFER_HTOD,
                TransferDirection.DEVICE_TO_HOST: IntervalKind.TRANSFER_DTOH,
                TransferDirection.DEVICE_TO_DEVICE: IntervalKind.TRANSFER_D2D,
            }[op.direction]
            nbytes = op.nbytes
            meta = {"kind": op.kind}
        else:
            kind = IntervalKind.EVENT
            nbytes = 0.0
            meta = {}
        meta.update(op.info)
        self.timeline.add(
            TimelineRecord(
                op_id=op.op_id,
                label=op.label,
                kind=kind,
                stream_id=op.stream.stream_id,
                start=op.start_time,
                end=op.end_time,
                nbytes=nbytes,
                meta=meta,
            )
        )
