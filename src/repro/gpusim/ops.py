"""Operations executed by the simulated GPU.

An :class:`Operation` is one unit of work submitted to a stream: a kernel,
a host-device transfer, or an event record/wait.  Operations own a scalar
amount of remaining *work*; the contention model assigns each running
operation a progress rate and the engine advances the virtual clock to the
next completion.

The simulator package is deliberately independent of the scheduler: the
scheduler (``repro.core``) compiles its computational elements down to
these operations.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.stream import SimEvent, SimStream


_op_counter = itertools.count()


class OpState(enum.Enum):
    """Lifecycle of an operation inside the engine."""

    QUEUED = "queued"      # submitted, not yet at the head of its stream
    READY = "ready"        # at stream head with all waits satisfied
    RUNNING = "running"    # progressing on the device
    COMPLETE = "complete"


class TransferDirection(enum.Enum):
    """Direction of a PCIe transfer."""

    HOST_TO_DEVICE = "HtoD"
    DEVICE_TO_HOST = "DtoH"
    DEVICE_TO_DEVICE = "DtoD"  # peer-to-peer (multi-GPU future work)


class TransferKind(enum.Enum):
    """Why a transfer happens; used for reporting and the fault model."""

    EAGER = "eager"          # pre-Pascal: move everything before launch
    PREFETCH = "prefetch"    # cudaMemPrefetchAsync-style bulk move
    PAGE_FAULT = "fault"     # on-demand UM migration (modelled in-kernel)
    WRITEBACK = "writeback"  # device-to-host on CPU access
    EXPLICIT = "explicit"    # user-requested copy


@dataclass
class KernelResourceRequest:
    """Resource footprint of one kernel launch, consumed by the contention
    model.  Produced by :mod:`repro.kernels.profile` from a kernel's cost
    profile and launch geometry.

    Attributes
    ----------
    flops:
        Floating-point operations executed by the whole grid.
    fp64:
        Whether the FLOPs are double precision.
    dram_bytes:
        Bytes moved to/from device memory.
    l2_bytes:
        Bytes moved through the L2 cache.
    instructions:
        Dynamic instruction count (drives the IPC roofline term).
    threads_total:
        ``blocks * threads_per_block``; with the device's resident-thread
        capacity this bounds the SM fraction the kernel can occupy.
    fault_bytes:
        Bytes that must be migrated on demand *during* execution because
        they were not resident when the kernel started (page-fault path).
    sm_fraction_cap:
        Upper bound on the SM fraction the kernel can occupy regardless
        of its grid size — the model for occupancy limited by per-block
        shared memory or registers.  Kernels capped below 1.0 leave SMs
        idle when run alone, which is exactly the space-sharing headroom
        the paper exploits (e.g. the IMG blur kernels, section V-F).
    """

    flops: float
    fp64: bool
    dram_bytes: float
    l2_bytes: float
    instructions: float
    threads_total: int
    fault_bytes: float = 0.0
    sm_fraction_cap: float = 1.0
    _sig: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if min(self.flops, self.dram_bytes, self.l2_bytes,
               self.instructions, self.fault_bytes) < 0:
            raise ValueError("kernel resource quantities must be >= 0")
        if self.threads_total <= 0:
            raise ValueError("threads_total must be positive")
        if not 0.0 < self.sm_fraction_cap <= 1.0:
            raise ValueError("sm_fraction_cap must be in (0, 1]")

    def signature(self) -> tuple:
        """Hashable, totally ordered identity of this resource footprint.

        Launches with equal signatures are indistinguishable to the
        contention model — they form one *contention class* — so the
        engine can price them together.  Resources are immutable after
        submit, so the tuple is computed once and cached.
        """
        sig = self._sig
        if sig is None:
            sig = (
                self.flops,
                self.fp64,
                self.dram_bytes,
                self.l2_bytes,
                self.instructions,
                self.threads_total,
                self.fault_bytes,
                self.sm_fraction_cap,
            )
            self._sig = sig
        return sig


@dataclass
class Operation:
    """Base class for everything submitted to a stream.

    ``work`` is a dimensionless quantity: the contention model returns
    rates in work-units/second, so each subclass chooses its own scale
    (bytes for transfers, 1.0 for kernels).
    """

    label: str = ""
    op_id: int = field(default_factory=lambda: next(_op_counter))
    state: OpState = field(default=OpState.QUEUED, init=False)
    stream: "SimStream | None" = field(default=None, init=False)
    wait_events: list["SimEvent"] = field(default_factory=list, init=False)
    submit_time: float = field(default=float("nan"), init=False)
    start_time: float = field(default=float("nan"), init=False)
    end_time: float = field(default=float("nan"), init=False)
    work_total: float = field(default=0.0, init=False)
    work_remaining: float = field(default=0.0, init=False)
    #: order in which the op entered the engine's running set; completion
    #: processing of same-instant finishes follows this sequence
    start_seq: int = field(default=-1, init=False)
    on_complete: list[Callable[["Operation"], None]] = field(
        default_factory=list, init=False
    )
    #: free-form annotations copied into the timeline record's ``meta``
    #: (e.g. the array read/write sets used by the race detector)
    info: dict = field(default_factory=dict, init=False)

    @property
    def instantaneous(self) -> bool:
        """True for zero-duration bookkeeping ops (events)."""
        return self.work_total == 0.0

    @property
    def is_kernel(self) -> bool:
        return isinstance(self, KernelOp)

    @property
    def is_transfer(self) -> bool:
        return isinstance(self, TransferOp)

    def add_wait(self, event: "SimEvent") -> None:
        """Make this operation wait for ``event`` before starting."""
        self.wait_events.append(event)

    def waits_satisfied(self) -> bool:
        return all(ev.complete for ev in self.wait_events)

    def describe(self) -> str:
        return f"{type(self).__name__}({self.label or self.op_id})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.describe()} state={self.state.value}>"

    def __hash__(self) -> int:
        return self.op_id

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(eq=False)
class KernelOp(Operation):
    """One kernel launch.  ``work_total`` is normalized to 1.0: the
    contention model converts resource shares into a rate of
    ``1 / effective_duration`` per second."""

    resources: KernelResourceRequest | None = None
    compute_fn: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.resources is None:
            raise ValueError("KernelOp requires a KernelResourceRequest")
        self.work_total = 1.0
        self.work_remaining = 1.0


@dataclass(eq=False)
class TransferOp(Operation):
    """One PCIe transfer; ``work`` is measured in bytes."""

    direction: TransferDirection = TransferDirection.HOST_TO_DEVICE
    nbytes: float = 0.0
    kind: TransferKind = TransferKind.EXPLICIT
    apply_fn: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.work_total = float(self.nbytes)
        self.work_remaining = float(self.nbytes)


@dataclass(eq=False)
class EventRecordOp(Operation):
    """Records a :class:`SimEvent` when reached in stream order
    (``cudaEventRecord``).  Zero duration."""

    event: "SimEvent | None" = None

    def __post_init__(self) -> None:
        if self.event is None:
            raise ValueError("EventRecordOp requires an event")


@dataclass(eq=False)
class EventWaitOp(Operation):
    """Blocks its stream until an event completes
    (``cudaStreamWaitEvent``).  Zero duration once the event is done."""

    event: "SimEvent | None" = None

    def __post_init__(self) -> None:
        if self.event is None:
            raise ValueError("EventWaitOp requires an event")
        self.add_wait(self.event)
