"""Discrete-event GPU simulator substrate.

This package stands in for the physical NVIDIA GPUs used in the paper
(GTX 960, GTX 1660 Super, Tesla P100).  It models the parts of the CUDA
execution model that the paper's scheduler exercises:

* streams with FIFO issue order and cross-stream events,
* PCIe transfers with direction-split bandwidth sharing,
* kernels with roofline cost profiles occupying a pool of streaming
  multiprocessors (space-sharing),
* unified-memory page-fault migration vs. explicit prefetch,
* an execution timeline recorder used by the overlap metrics.

The engine advances a virtual clock with *rate-based progress*: each
running operation owns a scalar amount of remaining work, and whenever the
running set changes the contention model recomputes everyone's progress
rate.  This is exact for piecewise-constant rates and is the standard way
to simulate processor sharing.
"""

from repro.gpusim.specs import (
    GPUSpec,
    GPUArchitecture,
    GTX960,
    GTX1660_SUPER,
    TESLA_P100,
    gpu_by_name,
    ALL_GPUS,
)
from repro.gpusim.ops import (
    Operation,
    KernelOp,
    TransferOp,
    EventRecordOp,
    EventWaitOp,
    TransferDirection,
    TransferKind,
    OpState,
)
from repro.gpusim.stream import SimStream, SimEvent, DEFAULT_STREAM_ID
from repro.gpusim.timeline import Timeline, TimelineRecord, IntervalKind
from repro.gpusim.contention import ContentionModel, RateAllocation
from repro.gpusim.engine import SimEngine
from repro.gpusim.device import Device

__all__ = [
    "GPUSpec",
    "GPUArchitecture",
    "GTX960",
    "GTX1660_SUPER",
    "TESLA_P100",
    "gpu_by_name",
    "ALL_GPUS",
    "Operation",
    "KernelOp",
    "TransferOp",
    "EventRecordOp",
    "EventWaitOp",
    "TransferDirection",
    "TransferKind",
    "OpState",
    "SimStream",
    "SimEvent",
    "DEFAULT_STREAM_ID",
    "Timeline",
    "TimelineRecord",
    "IntervalKind",
    "ContentionModel",
    "RateAllocation",
    "SimEngine",
    "Device",
]
