"""Simulated GPU device: spec + memory accounting + contention model."""

from __future__ import annotations

from repro.errors import OutOfMemoryError
from repro.gpusim.contention import ClassedContentionModel
from repro.gpusim.specs import GPUSpec


class Device:
    """One simulated GPU.

    Tracks device-memory allocations (Table I sizes workloads against the
    capacity of each GPU) and owns the contention model used by the
    engine — the incremental :class:`ClassedContentionModel`, whose
    one-shot ``allocate`` surface is the classic
    :class:`~repro.gpusim.contention.ContentionModel` API.
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.contention = ClassedContentionModel(spec)
        self.allocated_bytes: int = 0
        self.peak_allocated_bytes: int = 0
        self._allocations: dict[int, int] = {}
        self._alloc_counter = 0

    # -- memory accounting ------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of device memory; returns an allocation id.

        Raises
        ------
        OutOfMemoryError
            If the allocation would exceed device capacity.  Unified
            memory on real Pascal+ GPUs can oversubscribe, but the paper
            sizes every input to fit, so the simulator treats
            oversubscription as a configuration error.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be >= 0")
        if self.allocated_bytes + nbytes > self.spec.device_memory_bytes:
            raise OutOfMemoryError(
                f"{self.spec.name}: allocating {nbytes / 1e9:.2f} GB on top"
                f" of {self.allocated_bytes / 1e9:.2f} GB exceeds"
                f" {self.spec.device_memory_gb:.1f} GB device memory"
            )
        self._alloc_counter += 1
        handle = self._alloc_counter
        self._allocations[handle] = nbytes
        self.allocated_bytes += nbytes
        self.peak_allocated_bytes = max(
            self.peak_allocated_bytes, self.allocated_bytes
        )
        return handle

    def free(self, handle: int) -> None:
        nbytes = self._allocations.pop(handle, None)
        if nbytes is None:
            raise KeyError(f"unknown allocation handle {handle}")
        self.allocated_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.spec.device_memory_bytes - self.allocated_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Device {self.spec.name}"
            f" {self.allocated_bytes / 1e9:.2f}/{self.spec.device_memory_gb:.1f} GB>"
        )
