"""CUDA-style streams and events for the simulator.

Semantics follow the CUDA programming model:

* operations submitted to one stream execute in FIFO order;
* operations in different streams are unordered unless related through an
  event (``EventRecordOp`` / ``EventWaitOp``);
* an event *completes* when its record-op is reached in stream order,
  i.e. when every operation submitted to the stream before the record has
  completed.

The default stream (id 0) carries no special "legacy sync" behaviour here:
the paper's runtime always uses non-blocking streams, and the serial
baseline achieves its ordering by host synchronization instead.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Iterable

from repro.errors import InvalidStateError
from repro.gpusim.ops import Operation

DEFAULT_STREAM_ID = 0

_event_counter = itertools.count()


class SimEvent:
    """A CUDA-event analogue.

    The event is created un-recorded; an :class:`EventRecordOp` submitted
    to a stream marks it complete when the stream reaches it.  ``complete``
    is monotonic: once set it never clears (CUDA events can be re-recorded,
    but the runtime in this library never reuses them, and forbidding reuse
    keeps the DAG acyclic by construction).
    """

    __slots__ = (
        "event_id", "label", "complete", "record_time", "_waiters"
    )

    def __init__(self, label: str = "") -> None:
        self.event_id: int = next(_event_counter)
        self.label = label
        self.complete: bool = False
        self.record_time: float = float("nan")
        #: streams parked on this event (blocked head waiting for it);
        #: the engine re-queues them when the record op fires.  Keyed by
        #: stream id so repeated parking never duplicates an entry.
        self._waiters: dict[int, "SimStream"] | None = None

    def _record(self, time: float) -> None:
        if self.complete:
            raise InvalidStateError(
                f"event {self.label or self.event_id} recorded twice"
            )
        self.complete = True
        self.record_time = time

    def add_waiter(self, stream: "SimStream") -> None:
        """Park ``stream`` until this event records (engine internal)."""
        if self._waiters is None:
            self._waiters = {}
        self._waiters[stream.stream_id] = stream

    def pop_waiters(self) -> tuple["SimStream", ...]:
        """Drain and return the parked streams (engine internal)."""
        if not self._waiters:
            return ()
        waiters = tuple(self._waiters.values())
        self._waiters = None
        return waiters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.complete else "pending"
        return f"<SimEvent {self.label or self.event_id} {state}>"


class SimStream:
    """A FIFO queue of operations.

    The engine pops the head operation when it becomes runnable (all its
    wait-events complete).  Streams track the set of in-flight operations
    so the stream manager can tell whether a stream is free for reuse.
    """

    def __init__(
        self, stream_id: int, label: str = "", device_index: int = 0
    ) -> None:
        self.stream_id = stream_id
        self.label = label or f"S{stream_id}"
        #: which GPU the stream belongs to (multi-GPU engines; 0 for the
        #: single-device setups of the paper's main evaluation)
        self.device_index = device_index
        self.pending: deque[Operation] = deque()
        self.running: Operation | None = None
        self.completed_count = 0
        self.destroyed = False
        #: called with the stream whenever it drains (busy -> free); the
        #: stream manager uses this to keep its free-list current in
        #: O(1) instead of scanning every stream per retrieval
        self.idle_callbacks: list[Callable[["SimStream"], None]] = []

    # -- submission ------------------------------------------------------

    def submit(self, op: Operation) -> None:
        """Append ``op`` to the stream's FIFO queue."""
        if self.destroyed:
            raise InvalidStateError(f"stream {self.label} was destroyed")
        if op.stream is not None:
            raise InvalidStateError(
                f"{op.describe()} already submitted to {op.stream.label}"
            )
        op.stream = self
        self.pending.append(op)

    # -- engine interface --------------------------------------------------

    def head_if_ready(self) -> Operation | None:
        """Return the head op if it can start now, else None."""
        if self.running is not None or not self.pending:
            return None
        head = self.pending[0]
        if head.waits_satisfied():
            return head
        return None

    def begin(self, op: Operation) -> None:
        if not self.pending or self.pending[0] is not op:
            raise InvalidStateError("op is not at the head of its stream")
        self.pending.popleft()
        self.running = op

    def finish(self, op: Operation) -> None:
        if self.running is not op:
            raise InvalidStateError("finishing an op that is not running")
        self.running = None
        self.completed_count += 1
        if not self.pending:
            for callback in self.idle_callbacks:
                callback(self)

    # -- queries -----------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any operation is queued or running on this stream."""
        return self.running is not None or bool(self.pending)

    @property
    def free(self) -> bool:
        return not self.busy and not self.destroyed

    def queued_ops(self) -> Iterable[Operation]:
        return tuple(self.pending)

    def destroy(self) -> None:
        """Mark the stream unusable.  Only legal when idle."""
        if self.busy:
            raise InvalidStateError(
                f"cannot destroy busy stream {self.label}"
            )
        self.destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimStream {self.label} queued={len(self.pending)}"
            f" running={self.running is not None}>"
        )
