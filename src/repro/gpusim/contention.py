"""Resource-sharing (contention) model.

Given the set of operations currently running on the device, the model
assigns each one a progress rate in work-units/second.  Rates stay
constant until the running set changes, so the engine can jump the clock
straight to the next completion.

Modelled resources
------------------
* **SMs** — each kernel can occupy at most the SM fraction its grid
  geometry allows (``threads_total / max_resident_threads``).  When the
  summed demand exceeds the device, allocations shrink proportionally
  (water-filling).  Small grids or tiny blocks leave SMs free: that is the
  space-sharing headroom the paper exploits.
* **Device-memory and L2 bandwidth** — each kernel's bandwidth demand is
  proportional to its compute speed; when aggregate demand exceeds device
  bandwidth, everyone slows by the same factor.  This yields the ~30-40 %
  contention loss of Fig. 9.
* **FP64 units** — double-precision FLOPs draw from a separate (much
  smaller on consumer parts) throughput pool, which is why B&S saturates
  a GTX 1660 but not a P100.
* **PCIe** — one link per direction; concurrent transfers in the same
  direction split the bandwidth evenly.
* **Page-fault controller** — kernels whose data was not prefetched
  migrate it on demand; all faulting kernels share the controller's
  sustained bandwidth, making it the bottleneck under concurrency
  (section V-C's argument for automatic prefetching).

Contention classes
------------------
Kernels with identical resource signatures (see
:meth:`repro.gpusim.ops.KernelResourceRequest.signature`) are
indistinguishable to the model: they demand the same SM fraction and the
same pool weights, so they always receive the same rate.  The model
therefore groups the running set into **contention classes** — one
interned :class:`_ContentionClass` per distinct signature — and prices
one rate per class instead of one per op.  Aggregates (SM demand, pool
weights) are evaluated per class from cached repeated-addition ladders,
making the allocation a pure function of the class *multiset*: any two
running lists with the same ops (in any order) price bit-identically,
which is the invariant the engine's golden tests pin down.

:class:`ClassedContentionModel` additionally maintains the active class
multiset **incrementally** (O(1) amortized per membership change), so the
engine's hot path reprices in O(classes) rather than O(running ops).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.gpusim.ops import (
    KernelOp,
    Operation,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import GPUSpec

#: Progress below this is treated as a stall (guards divide-by-zero).
_EPSILON = 1e-18


@dataclass(frozen=True)
class RateAllocation:
    """Rates assigned to the running set at one instant.

    ``rates`` maps op_id -> work-units/second.  ``kernel_sm_share`` maps
    op_id -> granted SM fraction (for timeline/occupancy reporting).
    """

    rates: dict[int, float]
    kernel_sm_share: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class KernelTimings:
    """Uncontended roofline terms for one kernel launch, in seconds.

    ``duration`` is the max of the steady-state terms — the classical
    roofline: a kernel is as slow as its most saturated resource — plus
    the page-fault term.  Fault migration is *additive*: on-demand UM
    pages stall the kernel at first touch rather than overlapping with
    its steady-state execution (which is precisely why the paper's
    automatic prefetching wins).
    """

    compute_time: float
    dram_time: float
    l2_time: float
    instruction_time: float
    fault_time: float
    sm_fraction: float

    @property
    def duration(self) -> float:
        steady = max(
            self.compute_time,
            self.dram_time,
            self.l2_time,
            self.instruction_time,
            _EPSILON,
        )
        return steady + self.fault_time


class _ContentionClass:
    """One interned kernel resource signature.

    Holds the signature's roofline timings plus a cached
    *repeated-addition ladder* per shared resource: ``ladder[k]`` is the
    term added to itself ``k`` times left-to-right in float arithmetic.
    Aggregating ``k`` identical members through the ladder is bitwise
    equal to folding them one by one, but costs O(1) amortized — the
    incremental aggregate maintenance the engine's reprice relies on.

    Aggregate index 0 is the SM demand (``sm_fraction``); 1..3 are the
    DRAM / L2 / page-fault pool weights (``pool_time / duration``).
    """

    __slots__ = (
        "signature", "timings", "duration", "sm_frac", "pool_used",
        "_ladders",
    )

    def __init__(self, signature: tuple, timings: KernelTimings) -> None:
        self.signature = signature
        self.timings = timings
        self.duration = timings.duration
        self.sm_frac = timings.sm_fraction
        #: whether this class draws on each shared pool at all — the cap
        #: applies to pool *users*, keyed on the raw pool time (not the
        #: weight, which can underflow to 0.0 for extreme durations)
        self.pool_used = (
            True,  # every kernel occupies SMs
            timings.dram_time > 0,
            timings.l2_time > 0,
            timings.fault_time > 0,
        )
        d = self.duration
        self._ladders = (
            [0.0, timings.sm_fraction],
            [0.0, timings.dram_time / d],
            [0.0, timings.l2_time / d],
            [0.0, timings.fault_time / d],
        )

    def aggregate(self, index: int, count: int) -> float:
        """``count`` members' summed contribution to aggregate ``index``
        (exact repeated float addition, cached)."""
        ladder = self._ladders[index]
        if count >= len(ladder):
            term = ladder[1]
            value = ladder[-1]
            append = ladder.append
            for _ in range(count - len(ladder) + 1):
                value += term
                append(value)
        return ladder[count]

    def extend_ladders(self, count: int) -> None:
        """Pre-extend every ladder through ``count`` members, so pricing
        can subscript them unchecked (:meth:`ContentionModel._price_sorted`
        requires callers to have registered each class's count here or
        via the incremental add path)."""
        if count >= len(self._ladders[0]):
            for index in range(4):
                self.aggregate(index, count)


class ContentionModel:
    """Computes per-operation progress rates for a running set."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        #: single-slot memo keyed on the running-set signature: rates
        #: are a pure function of the set, so an unchanged set (e.g.
        #: between instantaneous drains, or one device's subset of a
        #: multi-GPU engine's running set) never re-prices
        self._memo_key: frozenset[int] | None = None
        self._memo_result: RateAllocation | None = None
        #: interned contention classes, keyed by resource signature
        self._classes: dict[tuple, _ContentionClass] = {}
        #: per-class pricing columns keyed by the live class tuple (see
        #: :meth:`_columns_for`)
        self._column_memo: dict[tuple, tuple] = {}
        #: op_id -> contention class: memoizes ``kernel_timings`` per
        #: launch (resources are immutable after submit, so nothing ever
        #: invalidates; the engine prunes entries on op completion via
        #: :meth:`forget_op`)
        self._op_class: dict[int, _ContentionClass] = {}

    # -- single-kernel roofline -----------------------------------------

    def kernel_sm_fraction(
        self, threads_total: int, cap: float = 1.0
    ) -> float:
        """Fraction of the device's SMs a launch can occupy on its own.

        ``cap`` models occupancy limited by shared memory or registers:
        even an arbitrarily large grid cannot exceed it.
        """
        frac = threads_total / self.spec.max_resident_threads
        frac = max(frac, 1.0 / self.spec.sm_count)
        return min(1.0, frac, cap)

    def class_of(self, op: KernelOp) -> _ContentionClass:
        """The interned contention class of one kernel launch."""
        cls = self._op_class.get(op.op_id)
        if cls is None:
            res = op.resources
            assert res is not None
            sig = res.signature()
            cls = self._classes.get(sig)
            if cls is None:
                cls = _ContentionClass(sig, self._compute_timings(op))
                self._classes[sig] = cls
            self._op_class[op.op_id] = cls
        return cls

    def forget_op(self, op_id: int) -> None:
        """Drop the per-op memo entry (called on op completion so the
        memo does not grow without bound in long-lived engines)."""
        self._op_class.pop(op_id, None)

    def kernel_timings(self, op: KernelOp) -> KernelTimings:
        """Uncontended execution-time components of one kernel
        (memoized per ``op_id`` via the class intern table)."""
        return self.class_of(op).timings

    def _compute_timings(self, op: KernelOp) -> KernelTimings:
        res = op.resources
        assert res is not None
        sm_frac = self.kernel_sm_fraction(
            res.threads_total, res.sm_fraction_cap
        )
        # Compute-like resources scale with the SM fraction actually
        # occupied; bandwidth-like resources are device-wide.
        flops_rate = self.spec.flops_rate(res.fp64) * sm_frac
        instr_rate = self.spec.instruction_rate() * sm_frac
        dram_bw = self.spec.dram_bandwidth_gbs * 1e9
        l2_bw = self.spec.l2_bandwidth_gbs * 1e9
        fault_bw = self.spec.pagefault_bandwidth_gbs * 1e9

        compute_time = res.flops / max(flops_rate, _EPSILON)
        instruction_time = res.instructions / max(instr_rate, _EPSILON)
        dram_time = res.dram_bytes / dram_bw
        l2_time = res.l2_bytes / l2_bw
        if res.fault_bytes > 0:
            if fault_bw <= 0:
                raise ValueError(
                    f"{self.spec.name} has no page-fault engine but kernel"
                    f" {op.label!r} has fault_bytes set"
                )
            fault_time = res.fault_bytes / fault_bw
        else:
            fault_time = 0.0
        return KernelTimings(
            compute_time=compute_time,
            dram_time=dram_time,
            l2_time=l2_time,
            instruction_time=instruction_time,
            fault_time=fault_time,
            sm_fraction=sm_frac,
        )

    def kernel_duration(self, op: KernelOp) -> float:
        """Uncontended wall-time of one kernel launch."""
        return self.kernel_timings(op).duration

    # -- class pricing ---------------------------------------------------

    def price_classes(
        self, active: list[tuple[_ContentionClass, int]]
    ) -> tuple[list[float], list[float]]:
        """Per-class kernel rates and SM shares for ``active``, a
        signature-sorted ``[(class, count), ...]`` list.

        O(len(active)).  The result is a pure (bitwise-deterministic)
        function of the class multiset: aggregates fold per-class ladder
        values in signature order, never in running-list order, so every
        permutation of the same running set prices identically.

        1. SM water-filling: grant each class its demanded fraction,
           scaled down if the device is over-committed.
        2. Shared device-wide pools: DRAM bandwidth, L2 bandwidth and
           the page-fault controller.  A kernel whose uncontended
           duration is T and whose pool term is p uses fraction
           ``w = p/T`` of the pool at full speed, so the pool's
           aggregate weight is ``W = sum(w)`` over its users; when the
           pool is over-subscribed every user is capped at speed
           ``1/W`` (proportional sharing), which caps aggregate
           utilisation at ``sum((1/W) * w) = 1``.  Non-users are
           untouched.  Both cap terms — the SM water-filling scale and
           ``1/W`` — can only shrink when a kernel is added (ladder
           steps are non-negative and float addition/division are
           monotone), so the allocation is *monotone*: adding a kernel
           never raises any existing kernel's rate (the property the
           engine's next-completion jumps rely on).  (FP64 units need no
           extra pool: they live per-SM, so their sharing is exactly the
           SM water-filling above — the scarcity of FP64 on consumer
           parts is captured in the solo roofline.)
        """
        classes = tuple(cls for cls, _count in active)
        counts = [count for _cls, count in active]
        for cls, count in active:
            cls.extend_ladders(count)
        return self._price_sorted(classes, counts)

    def _columns_for(self, classes: tuple) -> tuple:
        """Per-class column arrays for ``classes`` (a signature-sorted
        tuple), memoized: the *set* of live classes changes far more
        slowly than the member counts, so pricing reuses the columns
        across reprices and only folds the counts."""
        columns = self._column_memo.get(classes)
        if columns is None:
            pool_used = [cls.pool_used for cls in classes]
            columns = (
                [cls._ladders for cls in classes],
                [cls.sm_frac for cls in classes],
                [cls.duration for cls in classes],
                pool_used,
                # pools with no user at all fold to exactly 0.0: skip
                tuple(
                    pool
                    for pool in (1, 2, 3)
                    if any(used[pool] for used in pool_used)
                ),
            )
            if len(self._column_memo) >= 1024:
                self._column_memo.clear()
            self._column_memo[classes] = columns
        return columns

    def _price_sorted(
        self, classes: tuple, counts: list[int]
    ) -> tuple[list[float], list[float]]:
        """:meth:`price_classes` over a class tuple and parallel count
        list — the hot-path form.

        Arithmetic is restructured for speed but stays bitwise equal to
        the per-class folds documented on :meth:`price_classes`:
        non-users contribute exactly ``+0.0`` to a pool fold
        (``w + 0.0 == w`` for non-negative ``w``), an undersubscribed
        device multiplies by exactly 1.0 (``x * 1.0 == x``), and a
        granted-over-demanded ratio of equal floats is exactly 1.0.
        """
        lads, fracs, durations, pool_used, live_pools = self._columns_for(
            classes
        )
        total_demand = sum([lad[0][c] for lad, c in zip(lads, counts)])
        if total_demand <= 1.0:
            shares = fracs[:]
            speeds = [1.0] * len(fracs)
        else:
            sm_scale = 1.0 / total_demand
            shares = [frac * sm_scale for frac in fracs]
            speeds = [share / frac for share, frac in zip(shares, fracs)]

        for pool in live_pools:
            weight = sum([lad[pool][c] for lad, c in zip(lads, counts)])
            if weight <= 1.0:
                continue
            cap = 1.0 / weight
            speeds = [
                (cap if cap < speed else speed) if used[pool] else speed
                for speed, used in zip(speeds, pool_used)
            ]

        rates = [
            speed / duration
            for speed, duration in zip(speeds, durations)
        ]
        return rates, shares

    # -- running-set rate allocation -------------------------------------

    def allocate(self, running: list[Operation]) -> RateAllocation:
        """Assign progress rates to every running operation.

        Kernels interact through SM allocation, the shared DRAM/L2/FP64
        pools and the page-fault controller; transfers interact through
        per-direction PCIe sharing.  Kernels and transfers do not slow
        each other down (DMA engines are independent of the SMs), which is
        exactly the transfer/compute overlap the scheduler exploits.
        """
        key = frozenset(op.op_id for op in running)
        if key == self._memo_key:
            assert self._memo_result is not None
            return self._memo_result
        rates: dict[int, float] = {}
        sm_share: dict[int, float] = {}

        kernels = [op for op in running if isinstance(op, KernelOp)]
        transfers = [op for op in running if isinstance(op, TransferOp)]

        self._allocate_kernels(kernels, rates, sm_share)
        self._allocate_transfers(transfers, rates)

        for op in running:
            if op.op_id not in rates:
                # Zero-duration ops complete immediately; the engine
                # handles them before asking for rates, but be safe.
                rates[op.op_id] = float("inf")
        result = RateAllocation(rates=rates, kernel_sm_share=sm_share)
        self._memo_key = key
        self._memo_result = result
        return result

    def _allocate_kernels(
        self,
        kernels: list[KernelOp],
        rates: dict[int, float],
        sm_share: dict[int, float],
    ) -> None:
        if not kernels:
            return
        counts: dict[_ContentionClass, int] = {}
        for k in kernels:
            cls = self.class_of(k)
            counts[cls] = counts.get(cls, 0) + 1
        active = sorted(counts.items(), key=lambda item: item[0].signature)
        class_rates, class_shares = self.price_classes(active)
        rate_of = {
            cls: rate for (cls, _n), rate in zip(active, class_rates)
        }
        share_of = {
            cls: share for (cls, _n), share in zip(active, class_shares)
        }
        for k in kernels:
            cls = self.class_of(k)
            rates[k.op_id] = rate_of[cls]
            sm_share[k.op_id] = share_of[cls]

    #: Rate assigned to transfers queued behind the DMA engine head.
    #: Must be positive (the engine rejects stalled ops) but small enough
    #: to be negligible over any simulated horizon.
    _DMA_QUEUE_RATE = 1e-6

    def _allocate_transfers(
        self, transfers: list[TransferOp], rates: dict[int, float]
    ) -> None:
        """PCIe transfer rates.

        GPUs have one DMA copy engine per direction: same-direction
        transfers do not split the link, they serialize in submission
        order (the staircase visible in the paper's Fig. 10 timeline).
        Opposite directions run full duplex.  The head of each
        direction's queue gets the full link; the rest idle until the
        engine reprices on its completion.
        """
        if not transfers:
            return
        pcie_bw = self.spec.pcie_bandwidth_gbs * 1e9
        by_dir: dict[TransferDirection, list[TransferOp]] = {}
        for t in transfers:
            by_dir.setdefault(t.direction, []).append(t)
        for ops in by_dir.values():
            ops.sort(key=lambda t: t.op_id)  # submission order
            rates[ops[0].op_id] = pcie_bw
            for t in ops[1:]:
                rates[t.op_id] = self._DMA_QUEUE_RATE


class ClassedContentionModel(ContentionModel):
    """Contention model that maintains the active class multiset
    incrementally for the engine's hot path.

    The engine adds/removes running kernels one at a time
    (:meth:`class_add` / :meth:`class_remove`, O(1) amortized: a count
    bump, plus a sorted-insert only when a signature first appears) and
    reprices in O(classes) via :meth:`reprice_classes`.  Pricing goes
    through the same :meth:`price_classes` as the one-shot
    :meth:`allocate`, over the same signature-sorted class order, so the
    two interfaces are bit-identical on equal running sets — the
    property the frozen reference engine's golden tests rely on.
    """

    def __init__(self, spec: GPUSpec) -> None:
        super().__init__(spec)
        #: active classes in signature order, with a parallel member
        #: count list (tuple-copied into the memo key) and a parallel
        #: signature-key list for bisect, so reprice never has to sort
        self._active_sorted: list[_ContentionClass] = []
        self._active_counts: list[int] = []
        self._active_keys: list[tuple] = []
        #: cached ``tuple(_active_sorted)`` — the class *set* changes
        #: only on first-appearance/last-leave, far more rarely than the
        #: counts, so the memo key reuses one shared tuple
        self._active_tuple: tuple | None = None
        #: class -> index into the parallel lists (O(1) count bumps; the
        #: suffix is renumbered on the rare first-appearance insert)
        self._active_pos: dict[_ContentionClass, int] = {}
        #: incrementally maintained aggregate columns, parallel to
        #: ``_active_sorted``: ``_sub[k][i]`` is class i's ladder value
        #: for aggregate k (SM demand, DRAM/L2/fault pool weight) at its
        #: current member count.  Updated O(1) per membership change, so
        #: pricing folds a ready-made float list instead of rebuilding
        #: it — same floats, same signature order, bitwise-equal sums.
        self._sub: tuple[list[float], ...] = ([], [], [], [])
        #: pricing memo keyed by the active (classes, counts) multiset —
        #: churn workloads revisit the same running sets, so repeat
        #: reprices become two tuple copies and a dict hit.  At high
        #: stream counts the count multisets rarely repeat; once misses
        #: dominate, the memo turns itself off so the hot path stops
        #: paying the key build + store for nothing.
        self._price_memo: dict[tuple, list] | None = {}
        self._price_memo_hits = 0
        self._price_memo_calls = 0

    def class_add(self, op: KernelOp) -> _ContentionClass:
        """Register one running kernel; returns its class."""
        cls = self.class_of(op)
        pos = self._active_pos.get(cls)
        if pos is None:
            pos = bisect_left(self._active_keys, cls.signature)
            self._active_keys.insert(pos, cls.signature)
            self._active_sorted.insert(pos, cls)
            self._active_counts.insert(pos, 1)
            ladders = cls._ladders
            for k, column in enumerate(self._sub):
                column.insert(pos, ladders[k][1])
            self._active_tuple = None
            renumber = self._active_pos
            renumber[cls] = pos
            for i in range(pos + 1, len(self._active_sorted)):
                renumber[self._active_sorted[i]] = i
        else:
            count = self._active_counts[pos] + 1
            self._active_counts[pos] = count
            cls.extend_ladders(count)
            ladders = cls._ladders
            for k, column in enumerate(self._sub):
                column[pos] = ladders[k][count]
        return cls

    def class_remove(self, cls: _ContentionClass) -> None:
        """Deregister one running member of ``cls``."""
        pos = self._active_pos[cls]
        count = self._active_counts[pos] - 1
        if count:
            self._active_counts[pos] = count
            ladders = cls._ladders
            for k, column in enumerate(self._sub):
                column[pos] = ladders[k][count]
        else:
            del self._active_keys[pos]
            del self._active_sorted[pos]
            del self._active_counts[pos]
            for column in self._sub:
                del column[pos]
            self._active_tuple = None
            renumber = self._active_pos
            del renumber[cls]
            for i in range(pos, len(self._active_sorted)):
                renumber[self._active_sorted[i]] = i

    @property
    def active_class_count(self) -> int:
        return len(self._active_sorted)

    def reprice_classes(
        self,
    ) -> list[tuple[_ContentionClass, float, float]]:
        """Price the active classes: ``[(class, rate, sm_share), ...]``.

        O(classes); bitwise equal to what :meth:`allocate` would assign
        each class's members on the same running set.  Results are
        memoized on the (classes, counts) multiset: pricing is a pure
        function of it, and engine churn cycles through a small family
        of running sets, so repeat sets cost one dict lookup.
        """
        if not self._active_sorted:
            return []
        classes = self._active_tuple
        if classes is None:
            classes = self._active_tuple = tuple(self._active_sorted)
        memo = self._price_memo
        if memo is None:
            rates, shares = self._price_active(classes)
            return list(zip(classes, rates, shares))
        key = (classes, tuple(self._active_counts))
        priced = memo.get(key)
        self._price_memo_calls += 1
        if priced is None:
            rates, shares = self._price_active(classes)
            priced = list(zip(classes, rates, shares))
            if len(memo) >= 8192:
                memo.clear()
            memo[key] = priced
            if (
                self._price_memo_calls >= 512
                and self._price_memo_hits * 10 < self._price_memo_calls
            ):
                self._price_memo = None
        else:
            self._price_memo_hits += 1
        return priced

    def _price_active(
        self, classes: tuple
    ) -> tuple[list[float], list[float]]:
        """:meth:`ContentionModel._price_sorted` over the live multiset,
        folding the incrementally maintained aggregate columns instead
        of rebuilding them from the ladders: ``_sub[k]`` holds exactly
        the floats the generic listcomp would produce, in the same
        signature order, so ``sum()`` is bitwise-identical."""
        _lads, fracs, durations, pool_used, live_pools = self._columns_for(
            classes
        )
        sub = self._sub
        total_demand = sum(sub[0])
        if total_demand <= 1.0:
            shares = fracs[:]
            speeds = [1.0] * len(fracs)
        else:
            sm_scale = 1.0 / total_demand
            shares = [frac * sm_scale for frac in fracs]
            speeds = [share / frac for share, frac in zip(shares, fracs)]

        for pool in live_pools:
            weight = sum(sub[pool])
            if weight <= 1.0:
                continue
            cap = 1.0 / weight
            speeds = [
                (cap if cap < speed else speed) if used[pool] else speed
                for speed, used in zip(speeds, pool_used)
            ]

        return [
            speed / duration
            for speed, duration in zip(speeds, durations)
        ], shares
