"""Resource-sharing (contention) model.

Given the set of operations currently running on the device, the model
assigns each one a progress rate in work-units/second.  Rates stay
constant until the running set changes, so the engine can jump the clock
straight to the next completion.

Modelled resources
------------------
* **SMs** — each kernel can occupy at most the SM fraction its grid
  geometry allows (``threads_total / max_resident_threads``).  When the
  summed demand exceeds the device, allocations shrink proportionally
  (water-filling).  Small grids or tiny blocks leave SMs free: that is the
  space-sharing headroom the paper exploits.
* **Device-memory and L2 bandwidth** — each kernel's bandwidth demand is
  proportional to its compute speed; when aggregate demand exceeds device
  bandwidth, everyone slows by the same factor.  This yields the ~30-40 %
  contention loss of Fig. 9.
* **FP64 units** — double-precision FLOPs draw from a separate (much
  smaller on consumer parts) throughput pool, which is why B&S saturates
  a GTX 1660 but not a P100.
* **PCIe** — one link per direction; concurrent transfers in the same
  direction split the bandwidth evenly.
* **Page-fault controller** — kernels whose data was not prefetched
  migrate it on demand; all faulting kernels share the controller's
  sustained bandwidth, making it the bottleneck under concurrency
  (section V-C's argument for automatic prefetching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.ops import (
    KernelOp,
    Operation,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import GPUSpec

#: Progress below this is treated as a stall (guards divide-by-zero).
_EPSILON = 1e-18


@dataclass(frozen=True)
class RateAllocation:
    """Rates assigned to the running set at one instant.

    ``rates`` maps op_id -> work-units/second.  ``kernel_sm_share`` maps
    op_id -> granted SM fraction (for timeline/occupancy reporting).
    """

    rates: dict[int, float]
    kernel_sm_share: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class KernelTimings:
    """Uncontended roofline terms for one kernel launch, in seconds.

    ``duration`` is the max of the steady-state terms — the classical
    roofline: a kernel is as slow as its most saturated resource — plus
    the page-fault term.  Fault migration is *additive*: on-demand UM
    pages stall the kernel at first touch rather than overlapping with
    its steady-state execution (which is precisely why the paper's
    automatic prefetching wins).
    """

    compute_time: float
    dram_time: float
    l2_time: float
    instruction_time: float
    fault_time: float
    sm_fraction: float

    @property
    def duration(self) -> float:
        steady = max(
            self.compute_time,
            self.dram_time,
            self.l2_time,
            self.instruction_time,
            _EPSILON,
        )
        return steady + self.fault_time


class ContentionModel:
    """Computes per-operation progress rates for a running set."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        #: single-slot memo keyed on the running-set signature: rates
        #: are a pure function of the set, so an unchanged set (e.g.
        #: between instantaneous drains, or one device's subset of a
        #: multi-GPU engine's running set) never re-prices
        self._memo_key: frozenset[int] | None = None
        self._memo_result: RateAllocation | None = None

    # -- single-kernel roofline -----------------------------------------

    def kernel_sm_fraction(
        self, threads_total: int, cap: float = 1.0
    ) -> float:
        """Fraction of the device's SMs a launch can occupy on its own.

        ``cap`` models occupancy limited by shared memory or registers:
        even an arbitrarily large grid cannot exceed it.
        """
        frac = threads_total / self.spec.max_resident_threads
        frac = max(frac, 1.0 / self.spec.sm_count)
        return min(1.0, frac, cap)

    def kernel_timings(self, op: KernelOp) -> KernelTimings:
        """Uncontended execution-time components of one kernel."""
        res = op.resources
        assert res is not None
        sm_frac = self.kernel_sm_fraction(
            res.threads_total, res.sm_fraction_cap
        )
        # Compute-like resources scale with the SM fraction actually
        # occupied; bandwidth-like resources are device-wide.
        flops_rate = self.spec.flops_rate(res.fp64) * sm_frac
        instr_rate = self.spec.instruction_rate() * sm_frac
        dram_bw = self.spec.dram_bandwidth_gbs * 1e9
        l2_bw = self.spec.l2_bandwidth_gbs * 1e9
        fault_bw = self.spec.pagefault_bandwidth_gbs * 1e9

        compute_time = res.flops / max(flops_rate, _EPSILON)
        instruction_time = res.instructions / max(instr_rate, _EPSILON)
        dram_time = res.dram_bytes / dram_bw
        l2_time = res.l2_bytes / l2_bw
        if res.fault_bytes > 0:
            if fault_bw <= 0:
                raise ValueError(
                    f"{self.spec.name} has no page-fault engine but kernel"
                    f" {op.label!r} has fault_bytes set"
                )
            fault_time = res.fault_bytes / fault_bw
        else:
            fault_time = 0.0
        return KernelTimings(
            compute_time=compute_time,
            dram_time=dram_time,
            l2_time=l2_time,
            instruction_time=instruction_time,
            fault_time=fault_time,
            sm_fraction=sm_frac,
        )

    def kernel_duration(self, op: KernelOp) -> float:
        """Uncontended wall-time of one kernel launch."""
        return self.kernel_timings(op).duration

    # -- running-set rate allocation -------------------------------------

    def allocate(self, running: list[Operation]) -> RateAllocation:
        """Assign progress rates to every running operation.

        Kernels interact through SM allocation, the shared DRAM/L2/FP64
        pools and the page-fault controller; transfers interact through
        per-direction PCIe sharing.  Kernels and transfers do not slow
        each other down (DMA engines are independent of the SMs), which is
        exactly the transfer/compute overlap the scheduler exploits.
        """
        key = frozenset(op.op_id for op in running)
        if key == self._memo_key:
            assert self._memo_result is not None
            return self._memo_result
        rates: dict[int, float] = {}
        sm_share: dict[int, float] = {}

        kernels = [op for op in running if isinstance(op, KernelOp)]
        transfers = [op for op in running if isinstance(op, TransferOp)]

        self._allocate_kernels(kernels, rates, sm_share)
        self._allocate_transfers(transfers, rates)

        for op in running:
            if op.op_id not in rates:
                # Zero-duration ops complete immediately; the engine
                # handles them before asking for rates, but be safe.
                rates[op.op_id] = float("inf")
        result = RateAllocation(rates=rates, kernel_sm_share=sm_share)
        self._memo_key = key
        self._memo_result = result
        return result

    def _allocate_kernels(
        self,
        kernels: list[KernelOp],
        rates: dict[int, float],
        sm_share: dict[int, float],
    ) -> None:
        if not kernels:
            return
        timings = {k.op_id: self.kernel_timings(k) for k in kernels}

        # 1. SM water-filling: grant each kernel its demanded fraction,
        #    scaled down if the device is over-committed.
        total_demand = sum(t.sm_fraction for t in timings.values())
        sm_scale = 1.0 if total_demand <= 1.0 else 1.0 / total_demand

        # 2. Tentative speed given granted SMs only.
        #    ``speed`` is the fraction of the kernel's uncontended rate.
        speed: dict[int, float] = {}
        for k in kernels:
            t = timings[k.op_id]
            granted = t.sm_fraction * sm_scale
            sm_share[k.op_id] = granted
            speed[k.op_id] = granted / t.sm_fraction  # <= 1.0

        # 3. Shared device-wide pools: DRAM bandwidth, L2 bandwidth and
        #    the page-fault controller.  A kernel whose uncontended
        #    duration is T and whose pool term is p uses fraction
        #    ``w = p/T`` of the pool at full speed, so the pool's
        #    aggregate weight is ``W = sum(w)`` over its users; when the
        #    pool is over-subscribed every user is capped at speed
        #    ``1/W`` (proportional sharing), which caps aggregate
        #    utilisation at ``sum((1/W) * w) = 1``.  Non-users are
        #    untouched.  Both cap terms — the SM water-filling scale and
        #    ``1/W`` — can only shrink when a kernel is added, so the
        #    allocation is *monotone*: adding a kernel never raises any
        #    existing kernel's rate (the property the engine's
        #    next-completion jumps rely on, and that a redistribution
        #    heuristic would violate).  (FP64 units need no extra pool:
        #    they live per-SM, so their sharing is exactly the SM
        #    water-filling above — the scarcity of FP64 on consumer
        #    parts is captured in the solo roofline.)
        for pool_time in (
            lambda t: t.dram_time,
            lambda t: t.l2_time,
            lambda t: t.fault_time,
        ):
            self._cap_shared_pool(kernels, timings, speed, pool_time)

        for k in kernels:
            t = timings[k.op_id]
            rates[k.op_id] = speed[k.op_id] / t.duration

    @staticmethod
    def _cap_shared_pool(kernels, timings, speed, pool_time) -> None:
        """Cap every pool user's ``speed`` at its proportional share.

        With weights ``w_i = pool_time_i / duration_i`` the pool supports
        everyone at full speed iff ``W = sum(w_i) <= 1``; beyond that each
        user is capped at ``1/W``.  The cap depends only on the *set* of
        users (not on their current speeds), which makes the resulting
        allocation monotone under adding kernels.
        """
        weight = 0.0
        for k in kernels:
            t = timings[k.op_id]
            weight += pool_time(t) / t.duration
        if weight <= 1.0:
            return
        cap = 1.0 / weight
        for k in kernels:
            t = timings[k.op_id]
            if pool_time(t) > 0:
                speed[k.op_id] = min(speed[k.op_id], cap)

    #: Rate assigned to transfers queued behind the DMA engine head.
    #: Must be positive (the engine rejects stalled ops) but small enough
    #: to be negligible over any simulated horizon.
    _DMA_QUEUE_RATE = 1e-6

    def _allocate_transfers(
        self, transfers: list[TransferOp], rates: dict[int, float]
    ) -> None:
        """PCIe transfer rates.

        GPUs have one DMA copy engine per direction: same-direction
        transfers do not split the link, they serialize in submission
        order (the staircase visible in the paper's Fig. 10 timeline).
        Opposite directions run full duplex.  The head of each
        direction's queue gets the full link; the rest idle until the
        engine reprices on its completion.
        """
        if not transfers:
            return
        pcie_bw = self.spec.pcie_bandwidth_gbs * 1e9
        by_dir: dict[TransferDirection, list[TransferOp]] = {}
        for t in transfers:
            by_dir.setdefault(t.direction, []).append(t)
        for ops in by_dir.values():
            ops.sort(key=lambda t: t.op_id)  # submission order
            rates[ops[0].op_id] = pcie_bw
            for t in ops[1:]:
                rates[t.op_id] = self._DMA_QUEUE_RATE
