"""Execution-timeline recording.

Every completed operation leaves a :class:`TimelineRecord`.  The overlap
metrics of section V-F (CT/TC/CC/TOT) are computed from these records by
:mod:`repro.metrics.overlap`; Fig. 10's ML timeline is rendered straight
from a :class:`Timeline`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class IntervalKind(enum.Enum):
    """Coarse classification of a timeline interval."""

    KERNEL = "kernel"
    TRANSFER_HTOD = "htod"
    TRANSFER_DTOH = "dtoh"
    TRANSFER_D2D = "d2d"
    EVENT = "event"

    @property
    def is_transfer(self) -> bool:
        return self in (
            IntervalKind.TRANSFER_HTOD,
            IntervalKind.TRANSFER_DTOH,
            IntervalKind.TRANSFER_D2D,
        )


@dataclass(frozen=True)
class TimelineRecord:
    """One completed operation on the device timeline."""

    op_id: int
    label: str
    kind: IntervalKind
    stream_id: int
    start: float
    end: float
    nbytes: float = 0.0
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TimelineRecord") -> bool:
        """True if the two intervals intersect with positive measure."""
        return self.start < other.end and other.start < self.end

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"record {self.label!r}: end {self.end} < start {self.start}"
            )


class Timeline:
    """An append-only list of completed-operation records.

    Aggregates (``start``/``end``/``makespan``, per-kind duration and
    byte totals) and the per-stream grouping are maintained
    incrementally in :meth:`add`: metrics and the serving harness query
    them per request, and a full scan per query made long-lived engines
    O(records) per step.  Running sums accumulate in append order, so
    they are bit-identical to the scans they replace.
    """

    def __init__(self) -> None:
        self._records: list[TimelineRecord] = []
        self._kernels: list[TimelineRecord] = []
        self._transfers: list[TimelineRecord] = []
        self._by_stream: dict[int, list[TimelineRecord]] = {}
        self._start: float | None = None
        self._end: float | None = None
        self._kernel_time: float = 0.0
        self._transfer_time: float = 0.0
        self._transfer_bytes: float = 0.0

    def __call__(self) -> "Timeline":
        """Identity call, so both timeline spellings resolve everywhere:
        the legacy runtime exposed ``rt.timeline`` as a property and the
        Session API's canonical surface is ``sess.timeline()`` — with
        the attribute being a Timeline *and* callable, Session-generic
        code works unchanged on the deprecation shims and vice versa."""
        return self

    def add(self, record: TimelineRecord) -> None:
        self._records.append(record)
        self._by_stream.setdefault(record.stream_id, []).append(record)
        duration = record.duration
        if duration > 0:
            if self._start is None or record.start < self._start:
                self._start = record.start
            if self._end is None or record.end > self._end:
                self._end = record.end
        if record.kind is IntervalKind.KERNEL:
            self._kernels.append(record)
            self._kernel_time += duration
        elif record.kind.is_transfer:
            self._transfers.append(record)
            self._transfer_time += duration
            self._transfer_bytes += record.nbytes

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TimelineRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[TimelineRecord, ...]:
        return tuple(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._kernels.clear()
        self._transfers.clear()
        self._by_stream.clear()
        self._start = None
        self._end = None
        self._kernel_time = 0.0
        self._transfer_time = 0.0
        self._transfer_bytes = 0.0

    # -- selections -------------------------------------------------------

    def kernels(self) -> list[TimelineRecord]:
        return list(self._kernels)

    def transfers(self) -> list[TimelineRecord]:
        return list(self._transfers)

    def by_stream(self, stream_id: int) -> list[TimelineRecord]:
        return list(self._by_stream.get(stream_id, ()))

    def stream_ids(self) -> list[int]:
        return sorted(self._by_stream)

    # -- aggregates ---------------------------------------------------------

    @property
    def start(self) -> float:
        """Start of the earliest non-empty interval (0.0 if empty)."""
        return 0.0 if self._start is None else self._start

    @property
    def end(self) -> float:
        return 0.0 if self._end is None else self._end

    @property
    def makespan(self) -> float:
        """Total elapsed device time: first start to last end.

        This matches the paper's definition of execution time ("from the
        first kernel scheduling until the end of execution").
        """
        return self.end - self.start

    def total_kernel_time(self) -> float:
        return self._kernel_time

    def total_transfer_time(self) -> float:
        return self._transfer_time

    def total_transferred_bytes(self) -> float:
        return self._transfer_bytes

    # -- rendering ----------------------------------------------------------

    def render_ascii(self, width: int = 96) -> str:
        """Render the timeline as ASCII art, one row per stream.

        Used by the Fig. 10 bench and the examples; deliberately coarse
        (character resolution) but faithful to interval positions.
        """
        if not self._records or self.makespan <= 0:
            return "(empty timeline)"
        t0, t1 = self.start, self.end
        scale = (width - 1) / (t1 - t0)
        lines = []
        # One pass over the maintained per-stream grouping: the legacy
        # implementation re-scanned every record once per stream.
        for sid in self.stream_ids():
            row = [" "] * width
            for rec in self._by_stream[sid]:
                if rec.duration <= 0:
                    continue
                a = int((rec.start - t0) * scale)
                b = max(a + 1, int((rec.end - t0) * scale))
                if rec.kind is IntervalKind.KERNEL:
                    ch = "#"
                elif rec.kind is IntervalKind.TRANSFER_HTOD:
                    ch = ">"
                elif rec.kind is IntervalKind.TRANSFER_D2D:
                    ch = "="
                else:
                    ch = "<"
                for i in range(a, min(b, width)):
                    row[i] = ch
                # Tag the interval with the first letters of its label.
                tag = (rec.label or "")[: max(0, b - a)]
                for j, c in enumerate(tag):
                    if a + j < width:
                        row[a + j] = c
            lines.append(f"S{sid:<3d} |" + "".join(row))
        header = (
            f"t=[{t0 * 1e3:.3f} ms .. {t1 * 1e3:.3f} ms]   "
            "# kernel   > HtoD   < DtoH"
        )
        return "\n".join([header, *lines])


def merge_intervals(
    intervals: Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals as a sorted disjoint list.

    Zero-length intervals are dropped.  Shared helper for the overlap
    metrics (the paper counts each overlapped second once: "we consider
    the union of the overlap intervals").
    """
    items = sorted((a, b) for a, b in intervals if b > a)
    merged: list[tuple[float, float]] = []
    for a, b in items:
        if merged and a <= merged[-1][1]:
            prev_a, prev_b = merged[-1]
            merged[-1] = (prev_a, max(prev_b, b))
        else:
            merged.append((a, b))
    return merged


def intervals_measure(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of ``intervals``."""
    return sum(b - a for a, b in merge_intervals(intervals))


def intersect_two(
    xs: list[tuple[float, float]], ys: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Intersection of two disjoint sorted interval lists."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(xs) and j < len(ys):
        a = max(xs[i][0], ys[j][0])
        b = min(xs[i][1], ys[j][1])
        if a < b:
            out.append((a, b))
        if xs[i][1] <= ys[j][1]:
            i += 1
        else:
            j += 1
    return out
