"""GPU hardware specifications for the simulator.

The three presets mirror the GPUs used in the paper's evaluation
(section V-A).  Peak numbers come from the vendor datasheets; *effective*
rates used by the roofline model apply a fixed efficiency factor, since
real kernels never reach theoretical peaks.

The parameters the experiments are actually sensitive to are the *ratios*
between devices (FP64:FP32 throughput, PCIe vs. device-memory bandwidth,
SM count), not the absolute values; the reproduction bands tolerate
absolute-time differences as long as the speedup shapes hold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class GPUArchitecture(enum.Enum):
    """NVIDIA GPU micro-architectures relevant to the paper.

    The scheduler is *architecture-aware* (section IV-C): architectures
    older than Pascal have no page-fault mechanism for unified memory, so
    data must be moved eagerly before a kernel launches and the CPU must
    not touch UM arrays while any kernel is running.
    """

    MAXWELL = "maxwell"
    PASCAL = "pascal"
    TURING = "turing"

    @property
    def supports_page_faults(self) -> bool:
        """Pascal and newer migrate UM pages on demand."""
        return self is not GPUArchitecture.MAXWELL


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name, e.g. ``"Tesla P100"``.
    architecture:
        Micro-architecture; controls the unified-memory behaviour.
    sm_count:
        Number of streaming multiprocessors.
    max_threads_per_sm:
        Resident-thread capacity of one SM (2048 on all three presets).
    clock_ghz:
        Boost clock, used to convert instruction counts to seconds.
    fp32_gflops:
        Effective single-precision throughput (GFLOP/s).
    fp64_gflops:
        Effective double-precision throughput; consumer parts run FP64 at
        1/32 of FP32, the P100 at 1/2, which is what makes the B&S
        benchmark behave so differently across devices (section V-F).
    dram_bandwidth_gbs:
        Effective device-memory bandwidth (GB/s).
    l2_bandwidth_gbs:
        Effective L2-cache bandwidth (GB/s).
    l2_size_mb:
        L2 capacity, only used for reporting.
    device_memory_gb:
        Device memory capacity; Table I sizes inputs against this.
    pcie_bandwidth_gbs:
        Effective host-device bandwidth per direction (PCIe 3.0 x16 in the
        paper's testbeds; ~12 GB/s effective of the 15.75 GB/s peak).
    pagefault_bandwidth_gbs:
        Sustained migration bandwidth of the UM page-fault controller.
        Far below PCIe peak: on-demand migration pays per-fault latency.
        Shared across all faulting kernels, which is why un-prefetched
        concurrent kernels bottleneck on it (section V-C).
    kernel_launch_overhead_us:
        Host-side cost of issuing one kernel.
    event_overhead_us:
        Host-side cost of recording/waiting one CUDA event.
    ipc_peak:
        Per-SM instructions-per-cycle ceiling used by the instruction
        roofline term.
    """

    name: str
    architecture: GPUArchitecture
    sm_count: int
    max_threads_per_sm: int
    clock_ghz: float
    fp32_gflops: float
    fp64_gflops: float
    dram_bandwidth_gbs: float
    l2_bandwidth_gbs: float
    l2_size_mb: float
    device_memory_gb: float
    pcie_bandwidth_gbs: float
    pagefault_bandwidth_gbs: float
    kernel_launch_overhead_us: float = 5.0
    event_overhead_us: float = 2.0
    ipc_peak: float = 4.0

    @property
    def device_memory_bytes(self) -> int:
        return int(self.device_memory_gb * 1e9)

    @property
    def max_resident_threads(self) -> int:
        """Total threads the device can keep resident at once."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def supports_page_faults(self) -> bool:
        return self.architecture.supports_page_faults

    def flops_rate(self, double_precision: bool) -> float:
        """Effective FLOP/s for the requested precision."""
        gflops = self.fp64_gflops if double_precision else self.fp32_gflops
        return gflops * 1e9

    def instruction_rate(self) -> float:
        """Effective instructions/s across the whole device."""
        return self.ipc_peak * self.clock_ghz * 1e9 * self.sm_count


# Effective-rate presets.  Peaks derated by ~70-75% to typical achieved
# rates; what matters downstream is the ratio structure across devices.

GTX960 = GPUSpec(
    name="GTX 960",
    architecture=GPUArchitecture.MAXWELL,
    sm_count=8,
    max_threads_per_sm=2048,
    clock_ghz=1.18,
    fp32_gflops=1_800.0,
    fp64_gflops=56.0,  # 1/32 ratio
    dram_bandwidth_gbs=84.0,
    l2_bandwidth_gbs=250.0,
    l2_size_mb=1.0,
    device_memory_gb=2.0,
    pcie_bandwidth_gbs=10.0,
    pagefault_bandwidth_gbs=0.0,  # Maxwell: no page-fault mechanism
)

GTX1660_SUPER = GPUSpec(
    name="GTX 1660 Super",
    architecture=GPUArchitecture.TURING,
    sm_count=22,
    max_threads_per_sm=1024,
    clock_ghz=1.78,
    fp32_gflops=3_800.0,
    fp64_gflops=118.0,  # 1/32 ratio
    dram_bandwidth_gbs=250.0,
    l2_bandwidth_gbs=750.0,
    l2_size_mb=1.5,
    device_memory_gb=6.0,
    pcie_bandwidth_gbs=11.0,
    pagefault_bandwidth_gbs=4.5,
)

TESLA_P100 = GPUSpec(
    name="Tesla P100",
    architecture=GPUArchitecture.PASCAL,
    sm_count=56,
    max_threads_per_sm=2048,
    clock_ghz=1.33,
    fp32_gflops=7_000.0,
    fp64_gflops=3_500.0,  # 1/2 ratio: 20x the 1660's FP64
    dram_bandwidth_gbs=550.0,
    l2_bandwidth_gbs=1_600.0,
    l2_size_mb=4.0,
    device_memory_gb=12.2,
    pcie_bandwidth_gbs=11.5,
    pagefault_bandwidth_gbs=5.0,
)

ALL_GPUS: tuple[GPUSpec, ...] = (GTX960, GTX1660_SUPER, TESLA_P100)

_GPU_INDEX = {
    "gtx960": GTX960,
    "960": GTX960,
    "gtx1660": GTX1660_SUPER,
    "gtx1660super": GTX1660_SUPER,
    "1660": GTX1660_SUPER,
    "p100": TESLA_P100,
    "teslap100": TESLA_P100,
}


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a preset by a forgiving name (``"P100"``, ``"gtx 960"``...).

    Raises
    ------
    KeyError
        If the name does not match any preset.
    """
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    if key in _GPU_INDEX:
        return _GPU_INDEX[key]
    raise KeyError(
        f"unknown GPU {name!r}; known presets: "
        + ", ".join(sorted({s.name for s in ALL_GPUS}))
    )
