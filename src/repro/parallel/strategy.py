"""Execution strategies: where each planned :class:`SlotWork` runs.

The service plans placement rounds sequentially (admission, placement,
capture-cache lookups and fault draws are inherently ordered), then
hands the round's work units to a strategy:

* ``sequential`` — in-process loop; the golden reference every other
  strategy must match bit-for-bit.
* ``threading`` — a thread pool; the GIL serializes the interpreter,
  so this wins no wall-clock but *proves the isolation boundary*: any
  shared mutable state between slot executions shows up as a
  fingerprint mismatch here first.
* ``process`` — persistent forked workers with picklable work units
  (:mod:`repro.parallel.process`); real multi-core speedup, paid for
  in serialization.

All three return one :class:`~repro.parallel.work.SlotOutcome` per
work; the service merges them in slot-id order, so results never
depend on completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

from repro.parallel.work import SlotOutcome, SlotWork, execute_slot_work
from repro.serve.fleet import FleetSlot

__all__ = [
    "STRATEGIES",
    "ExecutionStrategy",
    "SequentialStrategy",
    "ThreadingStrategy",
    "make_strategy",
    "resolve_workers",
]

#: the strategy matrix, in golden-reference-first order
STRATEGIES = ("sequential", "threading", "process")


def resolve_workers(workers: int | None, slot_count: int) -> int:
    """Effective worker count: never more than there are slots (a
    worker per slot saturates the fork/join), defaulting to one per
    slot capped at the machine's cores."""
    if workers is not None:
        return max(1, min(workers, slot_count))
    return max(1, min(slot_count, os.cpu_count() or 1))


class ExecutionStrategy:
    """Executes one placement round's slot work units."""

    name = "?"

    def execute(self, works: list[SlotWork]) -> list[SlotOutcome]:
        raise NotImplementedError

    def note_cold_restart(self, slot_index: int) -> None:
        """A slot crash-restarted parent-side; strategies holding
        remote slot replicas must mirror it before that slot's next
        work (no-op for in-process strategies — they share the slot
        objects)."""

    def close(self) -> None:
        """Release pools/processes; idempotent."""


class SequentialStrategy(ExecutionStrategy):
    """In-process, in-order execution — the golden reference."""

    name = "sequential"

    def __init__(
        self,
        slots: list[FleetSlot],
        config,
        trace: bool = False,
    ) -> None:
        self.slots = slots
        self.config = config
        self.trace = trace

    def execute(self, works: list[SlotWork]) -> list[SlotOutcome]:
        return [
            execute_slot_work(
                self.slots[w.slot_index], w, self.config,
                trace=self.trace,
            )
            for w in works
        ]


class ThreadingStrategy(SequentialStrategy):
    """One thread per slot work.  Slot executions share no state (the
    per-work tracer buffers exist exactly for this), so the GIL is the
    only serialization left."""

    name = "threading"

    def __init__(
        self,
        slots: list[FleetSlot],
        config,
        trace: bool = False,
        workers: int | None = None,
    ) -> None:
        super().__init__(slots, config, trace)
        self._pool = ThreadPoolExecutor(
            max_workers=resolve_workers(workers, len(slots)),
            thread_name_prefix="repro-slot",
        )

    def execute(self, works: list[SlotWork]) -> list[SlotOutcome]:
        futures = [
            self._pool.submit(
                execute_slot_work,
                self.slots[w.slot_index],
                w,
                self.config,
                trace=self.trace,
            )
            for w in works
        ]
        # Collect in submission order — completion order must never
        # leak into results.
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_strategy(
    name: str,
    slots: list[FleetSlot],
    config,
    *,
    workers: int | None = None,
    trace: bool = False,
) -> ExecutionStrategy:
    """Build the strategy ``name`` over ``slots`` (lazy import keeps
    ``multiprocessing`` off the sequential path)."""
    if name == "sequential":
        return SequentialStrategy(slots, config, trace=trace)
    if name == "threading":
        return ThreadingStrategy(
            slots, config, trace=trace, workers=workers
        )
    if name == "process":
        from repro.parallel.process import ProcessStrategy

        return ProcessStrategy(
            slots, config, trace=trace, workers=workers
        )
    raise ValueError(
        f"unknown execution strategy {name!r}; expected one of"
        f" {STRATEGIES}"
    )
