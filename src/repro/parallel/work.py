"""Picklable per-slot work units and the slot-local batch executor.

This module is the isolation boundary of the parallel substrate: a
:class:`SlotWork` carries *everything* one fleet slot needs to simulate
one placement round's batch — the requests, the (pre-derived) capture
plan, the dispatch-time fault draws — and :func:`execute_slot_work`
runs it against a :class:`~repro.serve.fleet.FleetSlot` touching **no
service-global state**: no admission queue, no capture cache, no tenant
accounting, no shared tracer.  Everything the service needs back rides
the returned :class:`SlotOutcome`, which the parent merges in slot-id
order (see ``SchedulerService._merge_round``) so every execution
strategy — sequential, threading, process — produces bit-identical
reports.

The submission helpers (:func:`submit_context`, :func:`submit_replay`,
:func:`read_outputs`) are the former ``SchedulerService`` private
methods, hoisted to module level so worker processes can import them
by qualified name (a bound-method closure would not pickle).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.context import (
    annotate_kernel_access_sets,
    kernel_history_recorder,
)
from repro.core.history import KernelExecutionRecord
from repro.gpusim.ops import KernelOp
from repro.gpusim.timeline import TimelineRecord
from repro.kernels.kernel import KernelLaunch, normalize_dim
from repro.kernels.profile import combine_resources
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine
from repro.multigpu.array import MultiGpuArray
from repro.obs.trace import TraceEvent, Tracer
from repro.serve.capture import CapturePlan
from repro.serve.fleet import FleetSlot
from repro.serve.request import GraphRequest

__all__ = [
    "SlotOutcome",
    "SlotWork",
    "Submission",
    "execute_slot_work",
    "read_outputs",
    "submit_context",
    "submit_replay",
]


@dataclass
class SlotWork:
    """One placement round's batch for one slot.

    Built sequentially by the service's plan phase (so admission,
    placement, capture-cache lookups and fault draws stay
    deterministic), then executed by whichever strategy the service
    runs.  Picklable end to end for the process strategy.
    """

    slot_index: int
    #: coalesced batch, head first (the service's plan phase popped
    #: these from the admission queue)
    batch: list[GraphRequest]
    #: pre-derived capture plan (None: context path — the plan was a
    #: cache miss, derived and cached parent-side for the *next* batch)
    plan: CapturePlan | None
    batch_id: int
    #: DEGRADE stretch factor pinned at dispatch time
    slowdown: float
    #: transfer-fault draw pinned at dispatch time (lifecycle state is
    #: parent-owned; workers must not re-draw)
    transfer_fault: bool
    #: slot virtual time when the batch was planned (trace span start)
    clock_start: float


@dataclass
class SlotOutcome:
    """What one executed :class:`SlotWork` sends back to the service."""

    slot_index: int
    batch_id: int
    #: slot virtual time after the batch fully drained (post-degrade
    #: stretch; stream reclaim is clock-neutral)
    finish: float
    #: per batch member, in batch order:
    #: ``(request_id, outputs, start_time, read_clock)`` — the virtual
    #: time the member's outputs became readable (its result finish
    #: time, pre-stretch)
    results: list[tuple[int, dict[str, np.ndarray], float, float]]
    #: per batch member, in batch order: ``(tenant, kernel records)``
    histories: list[tuple[str, list[KernelExecutionRecord]]]
    #: buffered engine/coherence trace events (tracing runs only)
    trace_events: list[TraceEvent] | None = None
    # -- process strategy only: slot-state deltas the parent mirrors --
    #: timeline records appended by this batch (meta sanitized to
    #: picklable primitives); None for in-process strategies, which
    #: mutate the real slot engine directly
    timeline_records: list[TimelineRecord] | None = None
    #: absolute engine counter snapshot after the batch
    engine_counters: dict | None = None
    #: absolute slot roll-up counter snapshot after the batch
    slot_counters: dict | None = None
    #: absolute kernels-launched total for the slot
    kernels_launched: int = 0


class Submission:
    """In-flight bookkeeping for one request inside a batch."""

    def __init__(
        self,
        request: GraphRequest,
        slot: FleetSlot,
        start_time: float,
        batch_id: int,
        batch_size: int,
        replayed: bool,
    ) -> None:
        self.request = request
        self.slot = slot
        self.start_time = start_time
        self.batch_id = batch_id
        self.batch_size = batch_size
        self.replayed = replayed
        self.arrays: dict[str, DeviceArray | MultiGpuArray] = {}
        self.context = None            # context path only
        self.coherence: CoherenceEngine | None = None   # replay path
        self.history: list[KernelExecutionRecord] = []  # replay path


def submit_context(
    slot: FleetSlot,
    request: GraphRequest,
    config,
    batch_id: int,
    batch_size: int,
) -> Submission:
    """Serve one request through a fresh execution context: the full
    dependency-inference scheduling path of the paper (single-GPU
    slots) or the multi-GPU device-placement scheduler (slots with
    ``gpus > 1`` — the graph transparently spans the slot)."""
    rt = slot.session
    graph = request.graph
    ctx = rt.renew_context(
        op_tags={
            "tenant": request.tenant,
            "request": request.request_id,
        },
        drain=False,
    )
    sub = Submission(
        request, slot, slot.engine.clock, batch_id, batch_size,
        replayed=False,
    )
    sub.context = ctx
    for name, decl in graph.arrays.items():
        sub.arrays[name] = rt.array(
            decl.shape, dtype=decl.dtype, name=name
        )
    for name, decl in graph.arrays.items():
        if decl.init is not None:
            sub.arrays[name].copy_from_host(decl.init)
    for launch in graph.launches:
        kernel = slot.kernel_for(graph.kernel_by_name(launch.kernel))
        args = tuple(
            sub.arrays[a] if isinstance(a, str) else a
            for a in launch.args
        )
        kernel(launch.grid, launch.block)(*args)
        slot.kernels_launched += 1
    return sub


def submit_replay(
    slot: FleetSlot,
    request: GraphRequest,
    plan: CapturePlan,
    config,
    batch_id: int,
    batch_size: int,
    member: int = 0,
) -> Submission:
    """Serve one request by replaying the cached capture plan:
    pre-assigned streams, pre-computed event waits, no per-launch
    dependency inference.  On a multi-GPU slot, plan stream ``i``
    runs on slot device ``i % gpus`` (the deterministic mapping the
    plan was keyed under), and data movement flows through the
    coherence engine's multi-GPU location-set overlay."""
    rt = slot.session
    engine = slot.engine
    graph = request.graph
    tags = {
        "tenant": request.tenant,
        "request": request.request_id,
        "replay": True,
    }
    sub = Submission(
        request, slot, engine.clock, batch_id, batch_size,
        replayed=True,
    )
    # Replay bypasses execution contexts, so the request gets its
    # own coherence engine: shared-input migration hazards, movement
    # policy, cross-acquire coalescing windows and state transitions
    # all live there (no manual coherence management on this path).
    coherence = CoherenceEngine(
        engine,
        policy=config.scheduler.resolve_movement(rt.spec),
        op_tags=tags,
        window=config.scheduler.movement_window,
    )
    sub.coherence = coherence
    # Each batch member replays on its own stream slice so members
    # space-share instead of serializing behind shared FIFOs.
    streams = slot.replay_streams(plan.stream_count, member=member)
    engine.charge_host_time(config.replay_overhead_us * 1e-6)

    multi = slot.gpus > 1
    for name, decl in graph.arrays.items():
        arr: DeviceArray | MultiGpuArray
        if multi:
            arr = MultiGpuArray(
                decl.shape,
                dtype=decl.dtype,
                devices=rt.devices,
                name=name,
            )
        else:
            arr = DeviceArray(
                decl.shape, dtype=decl.dtype, device=rt.device,
                name=name,
            )
        rt.adopt_array(arr)  # freed with the batch
        if decl.init is not None:
            # No hook installed: copy_from_host applies the host
            # -write transition itself; declare it to the engine so
            # planned overlays and pending migrations reset too.
            arr.copy_from_host(decl.init)
            if multi:
                coherence.cpu_write_full_multi(arr, mark=False)
            else:
                coherence.cpu_access(arr, AccessKind.WRITE, arr.nbytes)
        sub.arrays[name] = arr

    events: dict[int, object] = {}
    for launch_decl, step in zip(graph.launches, plan.steps):
        stream = streams[step.stream]
        for w in step.waits:
            engine.wait_event(stream, events[w])

        kernel = slot.kernel_for(
            graph.kernel_by_name(launch_decl.kernel)
        )
        bound = kernel.bind_args(
            tuple(
                sub.arrays[a] if isinstance(a, str) else a
                for a in launch_decl.args
            )
        )
        launch = KernelLaunch(
            kernel=bound.kernel,
            grid=normalize_dim(launch_decl.grid),
            block=normalize_dim(launch_decl.block),
            args=bound.args,
            array_args=bound.array_args,
            scalar_args=bound.scalar_args,
        )
        accesses = list(launch.array_args)
        device_index = step.stream % slot.gpus
        if multi:
            acq = coherence.acquire_multi(
                accesses, stream, device_index, label=launch.label
            )
        else:
            acq = coherence.acquire(
                accesses, stream, label=launch.label
            )
        resources = launch.resources()
        if acq.fault_bytes > 0:
            resources = combine_resources(resources, acq.fault_bytes)
        op = KernelOp(
            label=launch.label,
            resources=resources,
            compute_fn=launch.execute,
        )
        if multi:
            # Race-detector tokens are per (array, device) copy,
            # exactly like the multi-GPU execution context.
            op.info["reads"] = frozenset(
                (id(a), device_index) for a, k in accesses if k.reads
            )
            op.info["writes"] = frozenset(
                (id(a), device_index) for a, k in accesses if k.writes
            )
            op.info["array_names"] = {
                (id(a), device_index): f"{a.name}@gpu{device_index}"
                for a, _ in accesses
            }
            op.info["device"] = device_index
        else:
            annotate_kernel_access_sets(op, launch)
        op.info.update(tags)
        op.on_complete.append(
            kernel_history_recorder(launch, sub.history.append)
        )
        if multi:
            coherence.release_multi(acq, accesses, device_index, op)
        else:
            coherence.release(acq, op)
        engine.submit(stream, op)
        slot.kernels_launched += 1
        finish_event = None
        if step.record_event or acq.fault_replicas:
            finish_event = engine.record_event(
                stream, label=f"replay:{launch.label}"
            )
            coherence.register_fault_ordering(acq, finish_event)
        if step.record_event:
            events[step.index] = finish_event
    return sub


def read_outputs(
    sub: Submission,
) -> tuple[dict[str, np.ndarray], float]:
    """Read the request's outputs (synchronizing just enough);
    returns them with the virtual time they became readable.
    Recording is a separate step — a mid-batch fault voids the
    whole batch *after* its outputs were (wastefully) read."""
    engine = sub.slot.engine
    graph = sub.request.graph
    outputs: dict[str, np.ndarray] = {}
    for name in graph.outputs:
        arr = sub.arrays[name]
        if sub.context is not None:
            # Attached array: the CPU-access hook syncs producers
            # precisely and charges the readback migration.
            outputs[name] = arr.to_numpy()
        else:
            # Replay path (engine already drained): declare the
            # readback to the request's coherence engine, mirroring
            # the hook's behaviour on the context path.
            assert sub.coherence is not None
            if isinstance(arr, MultiGpuArray):
                sub.coherence.cpu_read_multi(
                    arr, engine.default_stream
                )
            else:
                sub.coherence.cpu_access(
                    arr, AccessKind.READ, arr.nbytes,
                    stream=engine.default_stream,
                )
            outputs[name] = (
                arr.kernel_view.copy()
                if arr.materialized
                else np.zeros(arr.shape, dtype=arr.dtype)
            )
    return outputs, engine.clock


def _sanitize_meta(meta: dict) -> dict:
    """Timeline-record meta restricted to picklable primitives; the
    Chrome exporter's ``_clean_args`` drops everything else anyway, so
    exports from mirrored records stay identical."""
    return {
        k: v
        for k, v in meta.items()
        if v is None or isinstance(v, (str, int, float, bool))
    }


def execute_slot_work(
    slot: FleetSlot,
    work: SlotWork,
    config,
    *,
    trace: bool = False,
    collect_state: bool = False,
) -> SlotOutcome:
    """Simulate one batch on one slot; the parallel-safe core of the
    old ``SchedulerService._execute_batch``.

    Touches only ``slot`` (its engine, session, counters, kernel
    caches) plus the work unit itself.  With ``trace``, engine and
    coherence events are buffered on a private tracer (restored on
    exit) so concurrent slots cannot interleave a shared event list —
    the parent appends the buffers in slot-id order.  With
    ``collect_state`` (the process strategy), the outcome additionally
    carries the timeline/counter deltas the parent mirrors onto its
    own slot objects.
    """
    engine = slot.engine
    # getattr: frozen reference engines in the golden tests predate the
    # tracer attribute.
    saved_tracer = getattr(engine, "tracer", None)
    buffer = Tracer() if trace else None
    if buffer is not None:
        engine.tracer = buffer
    timeline_cursor = (
        len(engine.timeline.records) if collect_state else 0
    )
    try:
        batch = work.batch
        # The slot idles until the last coalesced arrival (or retry
        # backoff floor): a batch cannot causally start before its
        # members exist (the classic batching latency trade).
        start_floor = max(r.dispatch_floor for r in batch)
        if engine.clock < start_floor:
            engine.charge_host_time(start_floor - engine.clock)
        t0 = engine.clock
        engine.charge_host_time(config.dispatch_overhead_us * 1e-6)
        plan = work.plan
        submissions = [
            submit_replay(
                slot, r, plan, config, work.batch_id, len(batch),
                member=i,
            )
            if plan is not None
            else submit_context(
                slot, r, config, work.batch_id, len(batch)
            )
            for i, r in enumerate(batch)
        ]
        if plan is not None:
            # Replay bypasses the per-array CPU hooks, so drain before
            # the manual readbacks below.
            engine.sync_all()
        finalized = [
            (sub, *read_outputs(sub)) for sub in submissions
        ]
        engine.sync_all()
        if work.slowdown > 1.0 and engine.clock > t0:
            # A degraded slot stretches the whole batch span: the
            # extra wall time lands after the fact, which keeps the
            # in-batch schedule (and its numerics) untouched.
            engine.charge_host_time(
                (engine.clock - t0) * (work.slowdown - 1.0)
            )
        # Reclaim per-request streams and absorb per-request coherence
        # counters into the slot roll-up, so a long-lived slot engine
        # stays bounded.  Histories travel back to the parent — tenant
        # accounting is service-owned.
        histories: list[tuple[str, list[KernelExecutionRecord]]] = []
        for sub in submissions:
            if sub.context is not None:
                records = [
                    rec
                    for name in sub.context.history.kernels()
                    for rec in sub.context.history.executions(name)
                ]
                engine.reclaim_streams(
                    sub.context.reclaimable_streams()
                )
                slot.counters.merge(sub.context.coherence.counters)
            else:
                records = list(sub.history)
                assert sub.coherence is not None
                engine.reclaim_streams(
                    sub.coherence.take_owned_streams()
                )
                slot.counters.merge(sub.coherence.counters)
            histories.append((sub.request.tenant, records))
        slot.session.free_arrays()
        finish = engine.clock
        results = [
            (sub.request.request_id, outputs, sub.start_time, read_clock)
            for sub, outputs, read_clock in finalized
        ]
        outcome = SlotOutcome(
            slot_index=work.slot_index,
            batch_id=work.batch_id,
            finish=finish,
            results=results,
            histories=histories,
            trace_events=list(buffer.events) if buffer is not None else None,
        )
        if collect_state:
            outcome.timeline_records = [
                dataclasses.replace(rec, meta=_sanitize_meta(rec.meta))
                for rec in engine.timeline.records[timeline_cursor:]
            ]
            outcome.engine_counters = engine.counters.snapshot()
            outcome.slot_counters = slot.counters.snapshot()
            outcome.kernels_launched = slot.kernels_launched
        return outcome
    finally:
        if buffer is not None:
            engine.tracer = saved_tracer
