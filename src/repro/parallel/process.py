"""The process execution strategy: persistent forked slot workers.

Layout: slots shard onto ``workers`` long-lived daemon processes by
``slot_index % workers`` — a *fixed deterministic partition*, the same
discipline parallel branch-and-bound and parallel DDM matching use to
keep parallel results canonical.  Each worker rebuilds its shard's
:class:`~repro.serve.fleet.FleetSlot` objects from (index, GPU specs)
at startup and keeps them hot across rounds: engine clocks, timelines,
kernel caches and replay-stream pools accumulate worker-side exactly
as they would in-process, while the parent mirrors clock/counter/
timeline state from each :class:`~repro.parallel.work.SlotOutcome` so
placement, watermark shedding and reports read identically.

Protocol (one duplex pipe per worker):

* parent → worker: ``("round", [cold-restart slot ids], [SlotWork])``
  or ``("close",)``
* worker → parent: ``("ok", [SlotOutcome])`` or ``("err", traceback)``

Workers never see the admission queue, capture cache, tenant state or
fault lifecycles — fault effects arrive pre-drawn on the work unit,
and crash restarts arrive as explicit cold-restart notices with the
next round, so parent and worker slot replicas never diverge.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field

from repro.gpusim.specs import GPUSpec
from repro.obs.trace import set_default_tracer
from repro.parallel.strategy import ExecutionStrategy, resolve_workers
from repro.parallel.work import SlotOutcome, SlotWork, execute_slot_work
from repro.serve.fleet import FleetSlot

__all__ = ["ProcessStrategy", "WorkerInit"]


@dataclass
class WorkerInit:
    """Everything one worker needs to rebuild its slot shard."""

    #: (slot index, GPU specs) per slot owned by this worker
    slots: list[tuple[int, list[GPUSpec]]] = field(default_factory=list)
    #: the service's ServeConfig (scheduler config rides inside it)
    config: object = None
    #: buffer trace events per work and ship them back
    trace: bool = False


def _worker_main(conn, init: WorkerInit) -> None:
    """Worker loop: rebuild the slot shard, execute rounds forever."""
    # A fork inherits the parent's module state, including any enabled
    # default tracer; worker slots must build against the null tracer
    # (their events are buffered per work unit instead).
    set_default_tracer(None)
    slots = {
        index: FleetSlot(index, specs, config=init.config.scheduler)
        for index, specs in init.slots
    }
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg[0] == "close":
            break
        _, restarts, works = msg
        try:
            for index in restarts:
                slots[index].cold_restart()
            outcomes = [
                execute_slot_work(
                    slots[work.slot_index],
                    work,
                    init.config,
                    trace=init.trace,
                    collect_state=True,
                )
                for work in works
            ]
            conn.send(("ok", outcomes))
        except BaseException:
            conn.send(("err", traceback.format_exc()))


class ProcessStrategy(ExecutionStrategy):
    """Fork/join over persistent worker processes."""

    name = "process"

    def __init__(
        self,
        slots: list[FleetSlot],
        config,
        trace: bool = False,
        workers: int | None = None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.workers = resolve_workers(workers, len(slots))
        #: slots that crash-restarted parent-side since their worker's
        #: last round; shipped with the owning worker's next message
        self._pending_restarts: set[int] = set()
        # fork (not spawn): workers inherit the imported modules and
        # kernel functions directly, and start in milliseconds.
        ctx = multiprocessing.get_context("fork")
        self._procs = []
        self._conns = []
        for k in range(self.workers):
            shard = [
                (s.index, list(s.session.specs))
                for s in slots
                if s.index % self.workers == k
            ]
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    WorkerInit(slots=shard, config=config, trace=trace),
                ),
                daemon=True,
                name=f"repro-slot-worker-{k}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def note_cold_restart(self, slot_index: int) -> None:
        self._pending_restarts.add(slot_index)

    def execute(self, works: list[SlotWork]) -> list[SlotOutcome]:
        by_worker: dict[int, list[SlotWork]] = {}
        for work in works:
            by_worker.setdefault(
                work.slot_index % self.workers, []
            ).append(work)
        targets = sorted(by_worker)
        # Scatter every round message before gathering any reply: the
        # fork/join overlap is the whole point.
        for k in targets:
            restarts = sorted(
                i
                for i in self._pending_restarts
                if i % self.workers == k
            )
            self._pending_restarts.difference_update(restarts)
            self._conns[k].send(("round", restarts, by_worker[k]))
        outcomes: list[SlotOutcome] = []
        for k in targets:
            try:
                status, payload = self._conns[k].recv()
            except EOFError:
                raise RuntimeError(
                    f"parallel slot worker {k} died mid-round"
                ) from None
            if status != "ok":
                raise RuntimeError(
                    f"parallel slot worker {k} failed:\n{payload}"
                )
            outcomes.extend(payload)
        return outcomes

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
