"""Parallel simulation substrate: shard per-slot simulation across
real cores with a deterministic merge.

Fleet slots only interact through service-level admission and
placement decisions; between placement rounds their simulations are
embarrassingly parallel.  ``repro.parallel`` exploits exactly that
boundary: the service plans a *round* of per-slot work units
sequentially, an :class:`~repro.parallel.strategy.ExecutionStrategy`
executes them (in-process, threads, or forked worker processes), and
the service merges the outcomes **in slot-id order with virtual-time
tie-breaks** — so report fingerprints, counters and traces are
bit-identical across the whole strategy matrix.

See README "Parallel execution" for the determinism contract and when
``process`` wins.
"""

from repro.parallel.strategy import (
    STRATEGIES,
    ExecutionStrategy,
    SequentialStrategy,
    ThreadingStrategy,
    make_strategy,
    resolve_workers,
)
from repro.parallel.work import (
    SlotOutcome,
    SlotWork,
    Submission,
    execute_slot_work,
)

__all__ = [
    "STRATEGIES",
    "ExecutionStrategy",
    "SequentialStrategy",
    "SlotOutcome",
    "SlotWork",
    "Submission",
    "ThreadingStrategy",
    "execute_slot_work",
    "make_strategy",
    "resolve_workers",
]
