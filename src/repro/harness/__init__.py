"""Experiment harness: one function per paper figure/table.

Each ``figure*``/``table*`` function runs the required benchmark grid on
the simulator, returns the structured data, and can render the same
rows/series the paper reports (``render=True`` prints an ASCII table).
The ``benchmarks/`` tree wraps these in pytest-benchmark targets.
"""

from repro.harness.runner import ExperimentCell, run_cell, sweep_cells
from repro.harness import figures
from repro.harness.figures import (
    figure1,
    figure2,
    table1,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.harness.serving import serve_bench
from repro.harness.cluster import cluster_bench
from repro.harness.movement import movement_bench
from repro.harness.parallel import parallel_bench
from repro.harness.simbench import sim_bench

__all__ = [
    "serve_bench",
    "cluster_bench",
    "movement_bench",
    "parallel_bench",
    "sim_bench",
    "ExperimentCell",
    "run_cell",
    "sweep_cells",
    "figures",
    "figure1",
    "figure2",
    "table1",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
]
