"""Reproduction of every table and figure in the paper's evaluation.

Each function runs the necessary grid, returns structured data and — with
``render=True`` — prints rows shaped like the paper's plots.  Absolute
times come from the simulator, so the numbers to compare are the shapes:
who wins, by what factor, and where the crossovers are (see
EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gpusim.specs import ALL_GPUS, GTX1660_SUPER
from repro.metrics import (
    compute_hardware_metrics,
    compute_overlaps,
    contention_free_time,
    geomean,
)
from repro.harness.runner import DEFAULT_ITERATIONS, run_cell
from repro.workloads import Mode, create_benchmark
from repro.workloads.suite import BENCHMARKS, default_scales

BENCH_ORDER = ["vec", "b&s", "img", "ml", "hits", "dl"]
GPU_NAMES = ["GTX 960", "GTX 1660 Super", "Tesla P100"]


@dataclass
class FigureData:
    """Result of one figure reproduction."""

    name: str
    rows: list[dict[str, Any]]
    summary: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        if not self.rows:
            return f"== {self.name}: no data =="
        cols = list(self.rows[0].keys())
        widths = {
            c: max(len(c), *(len(_fmt(r[c])) for r in self.rows))
            for c in cols
        }
        lines = [f"== {self.name} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in cols))
        for r in self.rows:
            lines.append(
                "  ".join(_fmt(r[c]).ljust(widths[c]) for c in cols)
            )
        for key, value in self.summary.items():
            lines.append(f"{key}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3g}" if abs(v) < 1000 else f"{v:.4g}"
    return str(v)


def _mid_scale(name: str, gpu: str) -> int:
    scales = default_scales(name, gpu)
    return scales[min(1, len(scales) - 1)]


# ---------------------------------------------------------------------------
# Fig. 1 — achievable hand-tuned speedup (motivation)
# ---------------------------------------------------------------------------

def figure1(
    gpus: tuple[str, ...] = ("GTX 1660 Super", "Tesla P100"),
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """Hand-tuned multi-stream CUDA speedup over serial execution.

    Paper: geomean 1.51x on the GTX 1660 Super, 1.62x on the P100.
    """
    rows = []
    per_gpu: dict[str, list[float]] = {g: [] for g in gpus}
    for name in BENCH_ORDER:
        row: dict[str, Any] = {"benchmark": name}
        for gpu in gpus:
            scale = _mid_scale(name, gpu)
            serial = run_cell(name, gpu, scale, Mode.SERIAL, iterations)
            tuned = run_cell(name, gpu, scale, Mode.HANDTUNED, iterations)
            sp = serial.elapsed / tuned.elapsed
            row[gpu] = sp
            per_gpu[gpu].append(sp)
        rows.append(row)
    data = FigureData(
        name="Figure 1: hand-tuned CUDA speedup vs serial",
        rows=rows,
        summary={
            f"geomean {g}": geomean(v) for g, v in per_gpu.items()
        },
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Table I — memory footprints
# ---------------------------------------------------------------------------

def table1(render: bool = False) -> FigureData:
    """Device-memory footprint ranges per benchmark per GPU."""
    rows = []
    for name in BENCH_ORDER:
        row: dict[str, Any] = {"benchmark": name}
        for spec in ALL_GPUS:
            scales = default_scales(name, spec)
            lo = BENCHMARKS[name](scales[0], execute=False)
            hi = BENCHMARKS[name](scales[-1], execute=False)
            row[spec.name] = (
                f"{lo.memory_footprint_bytes() / 1e9:.1f}-"
                f"{hi.memory_footprint_bytes() / 1e9:.1f} GB"
            )
        rows.append(row)
    rows.append(
        {
            "benchmark": "GPU memory",
            **{
                s.name: f"{s.device_memory_gb:.1f} GB" for s in ALL_GPUS
            },
        }
    )
    data = FigureData(name="Table I: memory footprints", rows=rows)
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Figs. 2 & 6 — benchmark DAG structures with stream assignment
# ---------------------------------------------------------------------------

def figure2(
    benchmark: str = "ml",
    gpu: str = "GTX 1660 Super",
    render: bool = False,
) -> FigureData:
    """The computation DAG a benchmark induces, with the scheduler's
    stream assignment — Fig. 2's ML pipeline (and, for the other
    benchmark names, the corresponding panel of Fig. 6).

    The DAG is *inferred at run time* from argument usage; this function
    replays one iteration through the parallel scheduler and reports
    each kernel's stream plus the dependency edges with the array that
    caused them (Fig. 2's edge labels).
    """
    from repro.core.policies import SchedulerConfig
    from repro.session import Session

    bench = create_benchmark(benchmark, _mid_scale(benchmark, gpu),
                             iterations=1, execute=False)
    rt = Session(gpu=gpu, config=SchedulerConfig())
    arrays = {
        name: rt.array(
            s.shape, dtype=s.dtype, name=name, materialize=False
        )
        for name, s in bench.array_specs().items()
    }
    kernels = {
        k.name: rt.build_kernel(lambda *a: None, k.name, k.signature, k.cost)
        for k in bench.kernel_specs()
    }
    bench.refresh(arrays, 0)
    elements = []
    for inv in bench.invocations():
        args = tuple(
            arrays[a] if isinstance(a, str) else a for a in inv.args
        )
        launch = kernels[inv.kernel](inv.grid, inv.block)(*args)
        elements.append(launch)
    rt.sync()
    rows = []
    kernel_elems = [v for v in rt.dag.vertices if v.is_kernel]
    for i, elem in enumerate(kernel_elems):
        parents = [
            (e.parent.label, e.array.name)
            for e in rt.dag.edges
            if e.child is elem and e.parent.is_kernel
        ]
        rows.append(
            {
                "#": i,
                "kernel": elem.label,
                "stream": (
                    elem.stream.label if elem.stream is not None else "-"
                ),
                "depends on": (
                    ", ".join(f"{p}({a})" for p, a in parents) or "-"
                ),
            }
        )
    data = FigureData(
        name=(
            f"Figure 2/6: inferred DAG and stream assignment"
            f" ({benchmark} on {gpu})"
        ),
        rows=rows,
        summary={
            "vertices": rt.dag.num_vertices,
            "edges": rt.dag.num_edges,
            "streams": len(
                {r["stream"] for r in rows if r["stream"] != "-"}
            ),
        },
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 7 — parallel vs serial GrCUDA scheduling
# ---------------------------------------------------------------------------

def figure7(
    scales_per_gpu: int | None = None,
    block_sizes: tuple[int, ...] = (256,),
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """Parallel-scheduler speedup over the serial GrCUDA scheduler.

    Paper: geomean 44 % across the three GPUs (960: 25 %, P100: 61 %),
    "speedups are mostly independent of the input data size".
    """
    rows = []
    per_gpu: dict[str, list[float]] = {g: [] for g in GPU_NAMES}
    for name in BENCH_ORDER:
        for gpu in GPU_NAMES:
            scales = default_scales(name, gpu)
            if scales_per_gpu is not None:
                scales = scales[:scales_per_gpu]
            for scale in scales:
                for block in block_sizes:
                    serial = run_cell(
                        name, gpu, scale, Mode.SERIAL, iterations,
                        block_size=block,
                    )
                    par = run_cell(
                        name, gpu, scale, Mode.PARALLEL, iterations,
                        block_size=block,
                    )
                    sp = serial.elapsed / par.elapsed
                    per_gpu[gpu].append(sp)
                    rows.append(
                        {
                            "benchmark": name,
                            "gpu": gpu,
                            "scale": scale,
                            "block": block,
                            "serial_ms": serial.elapsed * 1e3,
                            "parallel_ms": par.elapsed * 1e3,
                            "speedup": sp,
                        }
                    )
    summary = {
        f"geomean {g}": geomean(v) for g, v in per_gpu.items() if v
    }
    summary["geomean all"] = geomean(
        [v for vs in per_gpu.values() for v in vs]
    )
    data = FigureData(
        name="Figure 7: parallel vs serial GrCUDA speedup",
        rows=rows,
        summary=summary,
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 8 — GrCUDA vs CUDA Graphs baselines
# ---------------------------------------------------------------------------

def figure8(
    scales_per_gpu: int | None = None,
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """GrCUDA parallel scheduler vs the three hand-optimized baselines.

    Paper: "never significantly slower than any of the CUDA Graphs
    baselines and often faster"; gaps vs the graph modes come from
    automatic prefetching, parity vs hand-tuned events.
    """
    baselines = [Mode.GRAPH_MANUAL, Mode.GRAPH_CAPTURE, Mode.HANDTUNED]
    rows = []
    per_baseline: dict[str, list[float]] = {m.value: [] for m in baselines}
    for name in BENCH_ORDER:
        for gpu in GPU_NAMES:
            scales = default_scales(name, gpu)
            if scales_per_gpu is not None:
                scales = scales[:scales_per_gpu]
            for scale in scales:
                grcuda = run_cell(
                    name, gpu, scale, Mode.PARALLEL, iterations
                )
                row: dict[str, Any] = {
                    "benchmark": name,
                    "gpu": gpu,
                    "scale": scale,
                    "grcuda_ms": grcuda.elapsed * 1e3,
                }
                for mode in baselines:
                    base = run_cell(name, gpu, scale, mode, iterations)
                    sp = base.elapsed / grcuda.elapsed
                    row[f"vs {mode.value}"] = sp
                    per_baseline[mode.value].append(sp)
                rows.append(row)
    data = FigureData(
        name="Figure 8: GrCUDA vs CUDA Graphs baselines"
        " (speedup of GrCUDA, >1 = GrCUDA faster)",
        rows=rows,
        summary={
            f"geomean vs {m}": geomean(v)
            for m, v in per_baseline.items()
        },
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 9 — contention-free bound
# ---------------------------------------------------------------------------

def figure9(
    scales_per_gpu: int | None = None,
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """Parallel execution relative to the contention-free bound.

    Paper: "relative execution time ... often around 70% of the
    contention-free performance bound"; B&S around 15-20 %.
    """
    rows = []
    ratios: dict[str, list[float]] = {b: [] for b in BENCH_ORDER}
    for name in BENCH_ORDER:
        for gpu in GPU_NAMES:
            scales = default_scales(name, gpu)
            if scales_per_gpu is not None:
                scales = scales[:scales_per_gpu]
            for scale in scales:
                bench = create_benchmark(
                    name, scale, iterations=iterations, execute=False
                )
                result = bench.run(gpu, Mode.PARALLEL)
                bound = contention_free_time(bench, gpu)
                ratio = bound / result.elapsed
                ratios[name].append(ratio)
                rows.append(
                    {
                        "benchmark": name,
                        "gpu": gpu,
                        "scale": scale,
                        "bound_ms": bound * 1e3,
                        "parallel_ms": result.elapsed * 1e3,
                        "ratio": ratio,
                    }
                )
    data = FigureData(
        name="Figure 9: fraction of contention-free peak (1.0 = no"
        " contention loss)",
        rows=rows,
        summary={
            f"mean {b}": sum(v) / len(v)
            for b, v in ratios.items()
            if v
        },
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 10 — example ML timeline
# ---------------------------------------------------------------------------

def figure10(
    gpu: str = "GTX 1660 Super",
    scale: int | None = None,
    iterations: int = 2,
    render: bool = False,
) -> FigureData:
    """One ML-ensemble execution timeline with its overlap metrics.

    Needs at least two iterations: the transfer/compute overlaps of the
    paper's timeline happen between a batch's upload and the previous
    batch's kernels.
    """
    scale = scale or _mid_scale("ml", gpu)
    bench = create_benchmark(
        "ml", scale, iterations=iterations, execute=False
    )
    result = bench.run(gpu, Mode.PARALLEL)
    overlaps = compute_overlaps(result.timeline)
    art = result.timeline.render_ascii(width=100)
    data = FigureData(
        name="Figure 10: ML execution timeline",
        rows=[
            {"metric": k, "percent": v}
            for k, v in overlaps.as_percentages().items()
        ],
        summary={"timeline": "\n" + art},
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 11 — overlap fractions
# ---------------------------------------------------------------------------

def figure11(
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """CT/TC/CC/TOT overlap per benchmark per GPU, with the speedup."""
    rows = []
    for gpu in GPU_NAMES:
        for name in BENCH_ORDER:
            scale = _mid_scale(name, gpu)
            serial = run_cell(name, gpu, scale, Mode.SERIAL, iterations)
            par = run_cell(name, gpu, scale, Mode.PARALLEL, iterations)
            m = compute_overlaps(par.result.timeline)
            pct = m.as_percentages()
            rows.append(
                {
                    "gpu": gpu,
                    "benchmark": name,
                    "CT%": pct["CT"],
                    "TC%": pct["TC"],
                    "CC%": pct["CC"],
                    "TOT%": pct["TOT"],
                    "speedup": serial.elapsed / par.elapsed,
                }
            )
    data = FigureData(
        name="Figure 11: transfer/computation overlap per benchmark",
        rows=rows,
    )
    if render:
        print(data.render())
    return data


# ---------------------------------------------------------------------------
# Fig. 12 — hardware metrics
# ---------------------------------------------------------------------------

def figure12(
    gpu: str = "GTX 1660 Super",
    iterations: int = DEFAULT_ITERATIONS,
    render: bool = False,
) -> FigureData:
    """Device throughput / IPC / GFLOPS, serial vs parallel, on the GPU
    the paper had root access to (the GTX 1660 Super)."""
    spec = GTX1660_SUPER if gpu == "GTX 1660 Super" else None
    from repro.gpusim.specs import gpu_by_name

    spec = spec or gpu_by_name(gpu)
    rows = []
    for name in BENCH_ORDER:
        scale = _mid_scale(name, gpu)
        serial = run_cell(name, gpu, scale, Mode.SERIAL, iterations)
        par = run_cell(name, gpu, scale, Mode.PARALLEL, iterations)
        hw_s = compute_hardware_metrics(serial.result.timeline, spec)
        hw_p = compute_hardware_metrics(par.result.timeline, spec)
        rows.append(
            {
                "benchmark": name,
                "dram_serial_GB/s": hw_s.dram_throughput_gbs,
                "dram_parallel_GB/s": hw_p.dram_throughput_gbs,
                "l2_serial_GB/s": hw_s.l2_throughput_gbs,
                "l2_parallel_GB/s": hw_p.l2_throughput_gbs,
                "ipc_serial": hw_s.ipc,
                "ipc_parallel": hw_p.ipc,
                "gflops_serial": hw_s.gflops,
                "gflops_parallel": hw_p.gflops,
            }
        )
    data = FigureData(
        name=f"Figure 12: hardware metrics on the {spec.name}",
        rows=rows,
    )
    if render:
        print(data.render())
    return data
