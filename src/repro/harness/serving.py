"""The ``serve-bench`` experiment: serving throughput under mixed load.

Not a paper figure — the serving-layer counterpart of the evaluation:
``tenants`` logical clients submit ``requests`` mixed task graphs (the
suite's workloads at serving scales) against a simulated GPU fleet, and
the report carries the service-level indicators a serving system is
judged on: p50/p95/p99 latency, sustained throughput, fleet utilization,
batching and capture-cache effectiveness.
"""

from __future__ import annotations

import numpy as np

from repro.multigpu.scheduler import DevicePlacementPolicy
from repro.serve.admission import AdmissionPolicy
from repro.serve.request import execute_serial
from repro.serve.service import SchedulerService, ServeConfig, ServiceReport
from repro.serve.workloads import mixed_workload_graphs


def _coerce(value, enum_cls):
    if isinstance(value, enum_cls):
        return value
    for member in enum_cls:
        if member.value == value or member.name.lower() == str(value).lower():
            return member
    raise ValueError(
        f"unknown {enum_cls.__name__} {value!r}; choose from"
        f" {[m.value for m in enum_cls]}"
    )


def serve_bench(
    tenants: int = 4,
    requests: int = 100,
    fleet_size: int = 2,
    admission: AdmissionPolicy | str = AdmissionPolicy.FAIR_SHARE,
    placement: DevicePlacementPolicy | str = (
        DevicePlacementPolicy.LEAST_LOADED
    ),
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    validate: bool = False,
    render: bool = False,
) -> ServiceReport:
    """Run one serving benchmark and return its report.

    ``validate=True`` re-executes every request's graph alone on a
    private serial runtime and asserts numerical equality — slow, but
    the ground-truth check the acceptance tests rely on.
    """
    if tenants <= 0 or requests <= 0 or fleet_size <= 0:
        raise ValueError("tenants, requests and fleet_size must be positive")
    admission = _coerce(admission, AdmissionPolicy)
    placement = _coerce(placement, DevicePlacementPolicy)

    service = SchedulerService(
        fleet_size=fleet_size,
        gpu=gpu,
        config=ServeConfig(admission=admission, placement=placement),
    )
    # Tenants with descending priorities: under the priority policy
    # tenant0 is the premium client, the rest queue behind it.
    for t in range(tenants):
        service.register_tenant(f"tenant{t}", priority=tenants - 1 - t)

    graphs = mixed_workload_graphs(requests, seed=seed)
    rng = np.random.default_rng(seed)
    arrival = 0.0
    submitted = []
    for i, graph in enumerate(graphs):
        arrival += float(
            rng.exponential(mean_interarrival_us * 1e-6)
        )
        submitted.append(
            (
                service.submit(
                    f"tenant{i % tenants}", graph, arrival_time=arrival
                ),
                graph,
            )
        )

    report = service.run()

    if validate:
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            result = by_id[request_id]
            reference = execute_serial(graph, gpu=gpu)
            for name, expected in reference.items():
                got = result.outputs[name]
                if not np.array_equal(got, expected):
                    raise AssertionError(
                        f"request {request_id} ({graph.name}) output"
                        f" {name!r} diverges from serial execution"
                    )

    if render:
        print(report.render())
        if validate:
            print(
                f"\nvalidated: all {len(submitted)} requests match"
                " serial single-runtime execution"
            )
    return report
