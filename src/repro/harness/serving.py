"""The ``serve-bench`` experiment: serving throughput under mixed load.

Not a paper figure — the serving-layer counterpart of the evaluation:
``tenants`` logical clients submit ``requests`` mixed task graphs (the
suite's workloads at serving scales) against a simulated GPU fleet, and
the report carries the service-level indicators a serving system is
judged on: p50/p95/p99 latency, sustained throughput, fleet utilization,
batching and capture-cache effectiveness.

The fleet is a **topology spec** — ``fleet="2,2,1,1"`` builds four
slots holding 2, 2, 1 and 1 GPUs: each slot is a real multi-GPU
session, so admitted graphs span the slot's devices under the in-slot
placement policy while the service-level policy picks slots.
``bench_out`` writes the headline numbers to a JSON file (the CI
``serve-smoke`` artifact).
"""

from __future__ import annotations

import json

import numpy as np

from repro.faults import FaultPlan
from repro.multigpu.scheduler import DevicePlacementPolicy
from repro.obs.export import write_chrome_trace
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionPolicy
from repro.serve.fleet import parse_fleet_spec
from repro.serve.request import execute_serial, reset_request_ids
from repro.serve.service import SchedulerService, ServeConfig, ServiceReport
from repro.serve.workloads import traffic_mix_graphs

#: default Chrome-trace artifact path when ``--trace`` is given bare
DEFAULT_TRACE_PATH = "TRACE_serving.json"


def _coerce(value, enum_cls):
    if isinstance(value, enum_cls):
        return value
    for member in enum_cls:
        if member.value == value or member.name.lower() == str(value).lower():
            return member
    raise ValueError(
        f"unknown {enum_cls.__name__} {value!r}; choose from"
        f" {[m.value for m in enum_cls]}"
    )


def report_summary(report: ServiceReport) -> dict:
    """The headline numbers of one serving run as JSON-ready data."""
    m = report.metrics
    models = report.fleet.gpu_models()
    return {
        "fleet": report.fleet.topology,
        "total_gpus": report.fleet.total_gpus,
        "gpu": models[0] if len(models) == 1 else " + ".join(models),
        "slot_models": [
            [spec.name for spec in slot.session.specs]
            for slot in report.fleet.slots
        ],
        "admission": report.config.admission.value,
        "placement": report.fleet.policy.value,
        "parallel": report.config.parallel,
        "movement_window": report.config.scheduler.movement_window,
        "requests": m.completed,
        "tenants": m.tenants,
        "makespan_s": m.makespan,
        "throughput_rps": m.throughput_rps,
        "latency_ms": {
            "p50": m.latency.p50 * 1e3,
            "p95": m.latency.p95 * 1e3,
            "p99": m.latency.p99 * 1e3,
            "worst": m.latency.worst * 1e3,
        },
        "queue_wait_ms": {
            "p50": m.queue_wait.p50 * 1e3,
            "p95": m.queue_wait.p95 * 1e3,
        },
        "slot_utilization": list(m.device_utilization),
        "mean_utilization": m.mean_utilization,
        "batches": m.batches,
        "batched_requests": m.batched_requests,
        "capture_hits": m.capture_hits,
        "capture_misses": m.capture_misses,
        "window_flushes": report.counters.get(
            "coherence.window_flushes", 0
        ),
        "window_flush_causes": {
            name.rsplit(".", 1)[-1]: value
            for name, value in report.counters.items()
            if name.startswith("coherence.window_flush.")
        },
        "kernels_per_slot": report.fleet.kernel_counts(),
        # Contention-class engine health: serving workloads are many
        # short streams, so the class count staying far below the live
        # stream count is the end-to-end win of class-based pricing.
        # ``engine.classes`` is a per-engine high-watermark; the merge
        # sums it across fleet slots.
        "engine_classes_peak": report.counters.get("engine.classes", 0),
        "engine_repricings": report.counters.get("engine.repricings", 0),
        "engine_class_repricings": report.counters.get(
            "engine.class_repricings", 0
        ),
        "engine_heap_stale_drops": report.counters.get(
            "engine.heap_stale_drops", 0
        ),
        # The canonical replay-determinism digest: CI reads this one
        # field instead of recomputing digests ad hoc.
        "fingerprint": report.fingerprint(),
        "counters": dict(report.counters),
    }


def report_fingerprint(report: ServiceReport) -> str:
    """Deprecated alias for :meth:`ServiceReport.fingerprint` (the
    digest moved into :mod:`repro.serve.service` so serving, chaos and
    cluster checks share one canonical implementation)."""
    return report.fingerprint()


def _submit_traffic(
    service: SchedulerService,
    *,
    tenants: int,
    requests: int,
    traffic: str,
    seed: int,
    mean_interarrival_us: float,
    deadline_us: float | None = None,
) -> list[tuple[int, object]]:
    """Register ``tenants`` clients and submit the standard serving
    traffic: the named mix under seeded Poisson arrivals.  Returns the
    ``(request_id, graph)`` pairs in submission order — the shared
    arrival process of serve-bench, chaos-grid and parallel-bench.
    """
    # Tenants with descending priorities: under the priority policy
    # tenant0 is the premium client, the rest queue behind it.
    for t in range(tenants):
        service.register_tenant(f"tenant{t}", priority=tenants - 1 - t)

    graphs = traffic_mix_graphs(requests, mix=traffic, seed=seed)
    rng = np.random.default_rng(seed)
    arrival = 0.0
    submitted = []
    for i, graph in enumerate(graphs):
        arrival += float(
            rng.exponential(mean_interarrival_us * 1e-6)
        )
        submitted.append(
            (
                service.submit(
                    f"tenant{i % tenants}",
                    graph,
                    arrival_time=arrival,
                    deadline=(
                        arrival + deadline_us * 1e-6
                        if deadline_us is not None
                        else None
                    ),
                ),
                graph,
            )
        )
    return submitted


def serve_bench(
    tenants: int = 4,
    requests: int = 100,
    fleet_size: int = 2,
    fleet: str | list[int] | None = None,
    admission: AdmissionPolicy | str = AdmissionPolicy.FAIR_SHARE,
    placement: DevicePlacementPolicy | str = (
        DevicePlacementPolicy.LEAST_LOADED
    ),
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    traffic: str = "uniform",
    movement_window: int = 0,
    faults: str | FaultPlan | None = None,
    fault_seed: int | None = None,
    deadline_us: float | None = None,
    width_normalized: bool = True,
    parallel: str = "sequential",
    workers: int | None = None,
    validate: bool = False,
    render: bool = False,
    bench_out: str | None = None,
    trace: bool = False,
    trace_out: str | None = None,
) -> ServiceReport:
    """Run one serving benchmark and return its report.

    ``fleet`` is a topology spec — ``"2,2,1,1"`` or ``[2, 2, 1, 1]``
    GPUs per slot — overriding the flat ``fleet_size`` (which builds
    1-GPU slots); ``traffic`` names a serving mix from
    :data:`repro.serve.workloads.TRAFFIC_MIXES`; ``movement_window``
    sizes the coherence engine's cross-acquire BATCHED coalescing
    window.  ``validate=True`` re-executes every request's graph alone
    on a private serial runtime and asserts numerical equality — slow,
    but the ground-truth check the acceptance tests rely on.

    ``trace`` (or a ``trace_out`` path, which implies it) records every
    span the service, fleet, coherence and engine layers emit and writes
    a Chrome-trace/Perfetto JSON next to the benchmark output: one
    process per fleet-slot device, one per-tenant request track, plus
    the raw tracer tracks.  The tracer is passed explicitly to the
    service — never installed globally — so ``validate``'s private
    serial runtimes stay out of the trace.

    ``faults`` injects a deterministic fault plan (a
    :class:`~repro.faults.FaultPlan` or its DSL string, e.g.
    ``"crash:slot=1,at=2e-3;restart:slot=1,at=4e-3"``);
    ``fault_seed`` instead *generates* a seeded chaos plan over the
    expected arrival horizon.  ``deadline_us`` gives every request an
    arrival-relative deadline.  Under faults, ``validate`` checks the
    *completed* requests against serial execution — shed / timed-out /
    failed requests have no outputs to check, but every submission must
    still reach a terminal status (asserted unconditionally).

    ``parallel`` selects the execution strategy for per-slot simulation
    (``sequential`` / ``threading`` / ``process``) and ``workers`` caps
    the worker pool; every strategy produces the same fingerprint (see
    README "Parallel execution").
    """
    if tenants <= 0 or requests <= 0 or fleet_size <= 0:
        raise ValueError("tenants, requests and fleet_size must be positive")
    if faults is not None and fault_seed is not None:
        raise ValueError("pass either faults or fault_seed, not both")
    admission = _coerce(admission, AdmissionPolicy)
    placement = _coerce(placement, DevicePlacementPolicy)
    # An unknown traffic mix raises inside traffic_mix_graphs below.
    if isinstance(fleet, str):
        fleet = parse_fleet_spec(fleet)
    slot_count = len(fleet) if fleet is not None else fleet_size
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if fault_seed is not None:
        # Horizon = the expected span of the arrival process, so seeded
        # faults actually land while the queue is live.
        faults = FaultPlan.random(
            fault_seed,
            slots=slot_count,
            horizon=requests * mean_interarrival_us * 1e-6,
        )

    from repro.core.policies import SchedulerConfig
    from repro.memory.coherence import MovementPolicy

    # The window only has meaning under BATCHED movement: asking for a
    # coalescing window implies the policy, otherwise the knob would be
    # a silent no-op under the default eager prefetcher.
    movement = MovementPolicy.BATCHED if movement_window > 0 else None
    tracer = Tracer() if (trace or trace_out) else None
    service = SchedulerService(
        fleet_size=fleet_size,
        fleet_topology=fleet,
        gpu=gpu,
        config=ServeConfig(
            admission=admission,
            placement=placement,
            faults=faults,
            width_normalized=width_normalized,
            parallel=parallel,
            workers=workers,
            scheduler=SchedulerConfig(
                movement=movement, movement_window=movement_window
            ),
        ),
        tracer=tracer,
    )
    submitted = _submit_traffic(
        service,
        tenants=tenants,
        requests=requests,
        traffic=traffic,
        seed=seed,
        mean_interarrival_us=mean_interarrival_us,
        deadline_us=deadline_us,
    )

    report = service.run()

    # The no-hang invariant: every submission reached a terminal status.
    by_id = {r.request_id: r for r in report.results}
    missing = [rid for rid, _ in submitted if rid not in by_id]
    if missing:
        raise AssertionError(
            f"{len(missing)} request(s) never reached a terminal"
            f" status: {missing[:10]}"
        )

    if validate:
        for request_id, graph in submitted:
            result = by_id[request_id]
            if not result.ok:
                continue  # shed/timed-out/failed: nothing was delivered
            reference = execute_serial(graph, gpu=gpu)
            for name, expected in reference.items():
                got = result.outputs[name]
                if not np.array_equal(got, expected):
                    raise AssertionError(
                        f"request {request_id} ({graph.name}) output"
                        f" {name!r} diverges from serial execution"
                    )

    if bench_out:
        summary = report_summary(report)
        summary["traffic"] = traffic
        summary["validated"] = bool(validate)
        if faults is not None:
            m = report.metrics
            summary["faults"] = {
                "plan": faults.describe(),
                "seed": faults.seed,
                "shed": m.shed,
                "timed_out": m.timed_out,
                "failed": m.failed,
                "terminal": m.terminal,
                "submitted": len(submitted),
                "injected": report.counters.get("faults.injected", 0),
                "retries": report.counters.get("faults.retries", 0),
                "replacements": report.counters.get(
                    "faults.replacements", 0
                ),
            }
        with open(bench_out, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")

    trace_path: str | None = None
    if tracer is not None:
        trace_path = trace_out or DEFAULT_TRACE_PATH
        write_chrome_trace(
            trace_path,
            tracer,
            results=report.results,
            other={
                "benchmark": "serve-bench",
                "fleet": report.fleet.topology,
                "gpu": gpu,
                "traffic": traffic,
                "requests": report.metrics.completed,
            },
        )

    if render:
        print(report.render())
        if validate:
            done = sum(1 for r in report.results if r.ok)
            print(
                f"\nvalidated: all {done} completed requests match"
                " serial single-runtime execution"
                + (
                    f" ({len(submitted) - done} shed/timed-out/failed)"
                    if done < len(submitted)
                    else ""
                )
            )
        if bench_out:
            print(f"wrote {bench_out}")
        if trace_path:
            print(f"wrote {trace_path}")
    return report


#: the chaos-grid scenarios: deterministic fault plans over a 6-slot
#: fleet, written against the default serve-bench arrival process
#: (~60 requests x 120 us mean interarrival ~= a 7 ms horizon)
CHAOS_SCENARIOS: dict[str, str] = {
    # the acceptance scenario: 2 of 6 slots crash mid-run, no recovery
    "crash-2of6": "crash:slot=1,at=2e-3;crash:slot=4,at=3e-3",
    # node-drain protocol: in-flight work finishes, slot comes back
    "drain-restart": (
        "drain:slot=2,at=1.5e-3;restart:slot=2,at=3e-3,warmup=5e-4"
    ),
    # slow devices: two slots throttle mid-run
    "degrade": (
        "degrade:slot=0,at=1e-3,factor=2.5;"
        "degrade:slot=3,at=2e-3,factor=1.8"
    ),
    # transient transfer errors: three one-shot flakes, retried in place
    "transfer-flakes": (
        "transfer-fault:slot=0,at=1e-3;transfer-fault:slot=2,at=2e-3;"
        "transfer-fault:slot=5,at=3e-3"
    ),
    # total permanent blackout mid-run: the tail must shed, never hang
    "blackout-shed": ";".join(
        f"crash:slot={s},at=2.5e-3" for s in range(6)
    ),
}


def chaos_grid(
    requests: int = 60,
    tenants: int = 4,
    fleet: str = "1,1,1,1,1,1",
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    deadline_us: float | None = None,
    render: bool = False,
    bench_out: str | None = None,
) -> dict:
    """The fault-tolerance acceptance grid: every chaos scenario runs
    **twice** (bit-identical reports asserted via
    :func:`report_fingerprint`), every completed request validates
    against serial execution, and every submission must reach a
    terminal status.  Returns (and optionally writes) the grid summary.
    """
    scenarios = {}
    for name, plan in CHAOS_SCENARIOS.items():
        runs = []
        for _ in range(2):
            # Request ids are process-global; reset so the two runs
            # (and the grid's scenarios) compare bit-identical.
            reset_request_ids()
            report = serve_bench(
                tenants=tenants,
                requests=requests,
                fleet=fleet,
                gpu=gpu,
                seed=seed,
                mean_interarrival_us=mean_interarrival_us,
                faults=plan,
                deadline_us=deadline_us,
                validate=True,
                render=False,
            )
            runs.append(report)
        fingerprints = [r.fingerprint() for r in runs]
        if fingerprints[0] != fingerprints[1]:
            raise AssertionError(
                f"chaos scenario {name!r} is not deterministic:"
                f" {fingerprints[0][:16]} != {fingerprints[1][:16]}"
            )
        m = runs[0].metrics
        if m.terminal != requests:
            raise AssertionError(
                f"chaos scenario {name!r} hung"
                f" {requests - m.terminal} request(s)"
            )
        scenarios[name] = {
            "plan": plan,
            "completed": m.completed,
            "shed": m.shed,
            "timed_out": m.timed_out,
            "failed": m.failed,
            "terminal": m.terminal,
            "injected": runs[0].counters.get("faults.injected", 0),
            "retries": runs[0].counters.get("faults.retries", 0),
            "replacements": runs[0].counters.get(
                "faults.replacements", 0
            ),
            "fingerprint": fingerprints[0],
            "deterministic": True,
            "validated": True,
        }
        if render:
            print(
                f"chaos {name:<16} completed={m.completed:>3}"
                f"  shed={m.shed:>3}  timed-out={m.timed_out:>3}"
                f"  failed={m.failed:>3}  (deterministic, validated)"
            )
    grid = {
        "requests": requests,
        "fleet": parse_fleet_spec(fleet),
        "seed": seed,
        "hung_requests": 0,
        "scenarios": scenarios,
    }
    if bench_out:
        # Merge into an existing serve-bench artifact when present so
        # CI uploads one BENCH_serving.json with both sections.
        payload: dict = {}
        try:
            with open(bench_out) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
        payload["chaos"] = grid
        with open(bench_out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        if render:
            print(f"wrote {bench_out}")
    return grid
