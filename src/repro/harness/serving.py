"""The ``serve-bench`` experiment: serving throughput under mixed load.

Not a paper figure — the serving-layer counterpart of the evaluation:
``tenants`` logical clients submit ``requests`` mixed task graphs (the
suite's workloads at serving scales) against a simulated GPU fleet, and
the report carries the service-level indicators a serving system is
judged on: p50/p95/p99 latency, sustained throughput, fleet utilization,
batching and capture-cache effectiveness.

The fleet is a **topology spec** — ``fleet="2,2,1,1"`` builds four
slots holding 2, 2, 1 and 1 GPUs: each slot is a real multi-GPU
session, so admitted graphs span the slot's devices under the in-slot
placement policy while the service-level policy picks slots.
``bench_out`` writes the headline numbers to a JSON file (the CI
``serve-smoke`` artifact).
"""

from __future__ import annotations

import json

import numpy as np

from repro.multigpu.scheduler import DevicePlacementPolicy
from repro.obs.export import write_chrome_trace
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionPolicy
from repro.serve.fleet import parse_fleet_spec
from repro.serve.request import execute_serial
from repro.serve.service import SchedulerService, ServeConfig, ServiceReport
from repro.serve.workloads import traffic_mix_graphs

#: default Chrome-trace artifact path when ``--trace`` is given bare
DEFAULT_TRACE_PATH = "TRACE_serving.json"


def _coerce(value, enum_cls):
    if isinstance(value, enum_cls):
        return value
    for member in enum_cls:
        if member.value == value or member.name.lower() == str(value).lower():
            return member
    raise ValueError(
        f"unknown {enum_cls.__name__} {value!r}; choose from"
        f" {[m.value for m in enum_cls]}"
    )


def report_summary(report: ServiceReport) -> dict:
    """The headline numbers of one serving run as JSON-ready data."""
    m = report.metrics
    models = report.fleet.gpu_models()
    return {
        "fleet": report.fleet.topology,
        "total_gpus": report.fleet.total_gpus,
        "gpu": models[0] if len(models) == 1 else " + ".join(models),
        "slot_models": [
            [spec.name for spec in slot.session.specs]
            for slot in report.fleet.slots
        ],
        "admission": report.config.admission.value,
        "placement": report.fleet.policy.value,
        "movement_window": report.config.scheduler.movement_window,
        "requests": m.completed,
        "tenants": m.tenants,
        "makespan_s": m.makespan,
        "throughput_rps": m.throughput_rps,
        "latency_ms": {
            "p50": m.latency.p50 * 1e3,
            "p95": m.latency.p95 * 1e3,
            "p99": m.latency.p99 * 1e3,
            "worst": m.latency.worst * 1e3,
        },
        "queue_wait_ms": {
            "p50": m.queue_wait.p50 * 1e3,
            "p95": m.queue_wait.p95 * 1e3,
        },
        "slot_utilization": list(m.device_utilization),
        "mean_utilization": m.mean_utilization,
        "batches": m.batches,
        "batched_requests": m.batched_requests,
        "capture_hits": m.capture_hits,
        "capture_misses": m.capture_misses,
        "window_flushes": report.counters.get(
            "coherence.window_flushes", 0
        ),
        "window_flush_causes": {
            name.rsplit(".", 1)[-1]: value
            for name, value in report.counters.items()
            if name.startswith("coherence.window_flush.")
        },
        "kernels_per_slot": report.fleet.kernel_counts(),
        # Contention-class engine health: serving workloads are many
        # short streams, so the class count staying far below the live
        # stream count is the end-to-end win of class-based pricing.
        # ``engine.classes`` is a per-engine high-watermark; the merge
        # sums it across fleet slots.
        "engine_classes_peak": report.counters.get("engine.classes", 0),
        "engine_repricings": report.counters.get("engine.repricings", 0),
        "engine_class_repricings": report.counters.get(
            "engine.class_repricings", 0
        ),
        "engine_heap_stale_drops": report.counters.get(
            "engine.heap_stale_drops", 0
        ),
        "counters": dict(report.counters),
    }


def serve_bench(
    tenants: int = 4,
    requests: int = 100,
    fleet_size: int = 2,
    fleet: str | list[int] | None = None,
    admission: AdmissionPolicy | str = AdmissionPolicy.FAIR_SHARE,
    placement: DevicePlacementPolicy | str = (
        DevicePlacementPolicy.LEAST_LOADED
    ),
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    traffic: str = "uniform",
    movement_window: int = 0,
    validate: bool = False,
    render: bool = False,
    bench_out: str | None = None,
    trace: bool = False,
    trace_out: str | None = None,
) -> ServiceReport:
    """Run one serving benchmark and return its report.

    ``fleet`` is a topology spec — ``"2,2,1,1"`` or ``[2, 2, 1, 1]``
    GPUs per slot — overriding the flat ``fleet_size`` (which builds
    1-GPU slots); ``traffic`` names a serving mix from
    :data:`repro.serve.workloads.TRAFFIC_MIXES`; ``movement_window``
    sizes the coherence engine's cross-acquire BATCHED coalescing
    window.  ``validate=True`` re-executes every request's graph alone
    on a private serial runtime and asserts numerical equality — slow,
    but the ground-truth check the acceptance tests rely on.

    ``trace`` (or a ``trace_out`` path, which implies it) records every
    span the service, fleet, coherence and engine layers emit and writes
    a Chrome-trace/Perfetto JSON next to the benchmark output: one
    process per fleet-slot device, one per-tenant request track, plus
    the raw tracer tracks.  The tracer is passed explicitly to the
    service — never installed globally — so ``validate``'s private
    serial runtimes stay out of the trace.
    """
    if tenants <= 0 or requests <= 0 or fleet_size <= 0:
        raise ValueError("tenants, requests and fleet_size must be positive")
    admission = _coerce(admission, AdmissionPolicy)
    placement = _coerce(placement, DevicePlacementPolicy)
    # An unknown traffic mix raises inside traffic_mix_graphs below.
    if isinstance(fleet, str):
        fleet = parse_fleet_spec(fleet)

    from repro.core.policies import SchedulerConfig
    from repro.memory.coherence import MovementPolicy

    # The window only has meaning under BATCHED movement: asking for a
    # coalescing window implies the policy, otherwise the knob would be
    # a silent no-op under the default eager prefetcher.
    movement = MovementPolicy.BATCHED if movement_window > 0 else None
    tracer = Tracer() if (trace or trace_out) else None
    service = SchedulerService(
        fleet_size=fleet_size,
        fleet_topology=fleet,
        gpu=gpu,
        config=ServeConfig(
            admission=admission,
            placement=placement,
            scheduler=SchedulerConfig(
                movement=movement, movement_window=movement_window
            ),
        ),
        tracer=tracer,
    )
    # Tenants with descending priorities: under the priority policy
    # tenant0 is the premium client, the rest queue behind it.
    for t in range(tenants):
        service.register_tenant(f"tenant{t}", priority=tenants - 1 - t)

    graphs = traffic_mix_graphs(requests, mix=traffic, seed=seed)
    rng = np.random.default_rng(seed)
    arrival = 0.0
    submitted = []
    for i, graph in enumerate(graphs):
        arrival += float(
            rng.exponential(mean_interarrival_us * 1e-6)
        )
        submitted.append(
            (
                service.submit(
                    f"tenant{i % tenants}", graph, arrival_time=arrival
                ),
                graph,
            )
        )

    report = service.run()

    if validate:
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            result = by_id[request_id]
            reference = execute_serial(graph, gpu=gpu)
            for name, expected in reference.items():
                got = result.outputs[name]
                if not np.array_equal(got, expected):
                    raise AssertionError(
                        f"request {request_id} ({graph.name}) output"
                        f" {name!r} diverges from serial execution"
                    )

    if bench_out:
        summary = report_summary(report)
        summary["traffic"] = traffic
        summary["validated"] = bool(validate)
        with open(bench_out, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")

    trace_path: str | None = None
    if tracer is not None:
        trace_path = trace_out or DEFAULT_TRACE_PATH
        write_chrome_trace(
            trace_path,
            tracer,
            results=report.results,
            other={
                "benchmark": "serve-bench",
                "fleet": report.fleet.topology,
                "gpu": gpu,
                "traffic": traffic,
                "requests": report.metrics.completed,
            },
        )

    if render:
        print(report.render())
        if validate:
            print(
                f"\nvalidated: all {len(submitted)} requests match"
                " serial single-runtime execution"
            )
        if bench_out:
            print(f"wrote {bench_out}")
        if trace_path:
            print(f"wrote {trace_path}")
    return report
