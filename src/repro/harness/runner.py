"""Grid runner for the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.workloads import Mode, RunResult, create_benchmark
from repro.workloads.suite import BENCHMARKS, default_scales

#: Iterations per execution; the paper uses 30 repetitions on real
#: hardware, where run-to-run variance exists.  The simulator is
#: deterministic, so a handful of iterations (which *do* matter — they
#: amortize one-time uploads) suffices.
DEFAULT_ITERATIONS = 4


@dataclass(frozen=True)
class ExperimentCell:
    """One (benchmark, gpu, scale, mode) measurement."""

    benchmark: str
    gpu: str
    scale: int
    mode: Mode
    block_size: int
    elapsed: float
    iterations: int
    stream_count: int
    result: RunResult = field(compare=False, repr=False)


def run_cell(
    benchmark: str,
    gpu: str | GPUSpec,
    scale: int,
    mode: Mode,
    iterations: int = DEFAULT_ITERATIONS,
    block_size: int = 256,
    execute: bool = False,
) -> ExperimentCell:
    """Execute one grid cell (timing-only by default)."""
    bench = create_benchmark(
        benchmark,
        scale,
        iterations=iterations,
        block_size=block_size,
        execute=execute,
    )
    result = bench.run(gpu, mode)
    spec = gpu_by_name(gpu) if isinstance(gpu, str) else gpu
    return ExperimentCell(
        benchmark=benchmark,
        gpu=spec.name,
        scale=scale,
        mode=mode,
        block_size=block_size,
        elapsed=result.elapsed,
        iterations=iterations,
        stream_count=result.stream_count,
        result=result,
    )


def sweep_cells(
    benchmarks: list[str] | None = None,
    gpus: list[str] | None = None,
    modes: list[Mode] | None = None,
    scales_per_gpu: int | None = None,
    iterations: int = DEFAULT_ITERATIONS,
    block_size: int = 256,
) -> list[ExperimentCell]:
    """Run the full (or truncated) benchmark grid.

    ``scales_per_gpu`` limits how many of the paper's scale points run
    per GPU (None = all that fit, per Table I).
    """
    benchmarks = benchmarks or sorted(BENCHMARKS)
    gpus = gpus or ["GTX 960", "GTX 1660 Super", "Tesla P100"]
    modes = modes or [Mode.SERIAL, Mode.PARALLEL]
    cells: list[ExperimentCell] = []
    for name in benchmarks:
        for gpu in gpus:
            scales = default_scales(name, gpu)
            if scales_per_gpu is not None:
                scales = scales[:scales_per_gpu]
            for scale in scales:
                for mode in modes:
                    cells.append(
                        run_cell(
                            name,
                            gpu,
                            scale,
                            mode,
                            iterations=iterations,
                            block_size=block_size,
                        )
                    )
    return cells
