"""The ``parallel-bench`` experiment: the execution-strategy matrix.

Runs the same serving workload under every :data:`STRATEGIES` entry and
checks the substrate's whole contract in one sweep:

- **determinism** — report fingerprints, counter snapshots and the
  canonical Chrome trace (wall-clock fields stripped) are bit-identical
  across ``sequential`` / ``threading`` / ``process``;
- **speed** — per-strategy wall-clock time and speedup over the
  refactored sequential baseline, written to ``BENCH_parallel.json``
  (the CI ``parallel-smoke`` artifact; the speedup gate lives in CI,
  where runners actually have cores — ``cpu_count`` is recorded so a
  1-core box reporting ~1x is interpretable).

Equality is asserted at a trace-friendly scale (tracing every span at
thousands of requests is needless weight), timing at full scale with
fingerprints still compared — so both halves of the contract are
exercised on every run.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.policies import SchedulerConfig
from repro.harness.serving import _submit_traffic
from repro.obs.export import canonical_trace
from repro.obs.trace import Tracer
from repro.parallel import STRATEGIES
from repro.serve.fleet import parse_fleet_spec
from repro.serve.service import SchedulerService, ServeConfig

#: the strategy-matrix scenarios: the fault-free baseline plus a fault
#: plan mixing a permanent crash (retry/re-placement path) with a
#: degrade (per-slot slowdown), both slot-scoped so work units carry
#: their effects into the workers
PARALLEL_SCENARIOS: dict[str, str | None] = {
    "fault-free": None,
    "crash-degrade": (
        "crash:slot=1,at=2e-3;degrade:slot=0,at=1e-3,factor=2.0"
    ),
}


def _run_once(
    *,
    fleet: list[int],
    parallel: str,
    workers: int | None,
    faults: str | None,
    requests: int,
    tenants: int,
    gpu: str,
    seed: int,
    mean_interarrival_us: float,
    traffic: str,
    trace: bool,
):
    """One serving run under one strategy; returns (report, tracer,
    wall_s) with the wall clock covering drain+report only."""
    tracer = Tracer() if trace else None
    service = SchedulerService(
        fleet_topology=fleet,
        gpu=gpu,
        config=ServeConfig(
            faults=faults,
            parallel=parallel,
            workers=workers,
            scheduler=SchedulerConfig(),
        ),
        tracer=tracer,
    )
    _submit_traffic(
        service,
        tenants=tenants,
        requests=requests,
        traffic=traffic,
        seed=seed,
        mean_interarrival_us=mean_interarrival_us,
    )
    t0 = time.perf_counter()
    report = service.run()
    wall = time.perf_counter() - t0
    return report, tracer, wall


def parallel_bench(
    requests: int = 1000,
    tenants: int = 4,
    fleet: str | list[int] = "2,2,1,1",
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    traffic: str = "uniform",
    workers: int | None = None,
    equality_requests: int | None = None,
    render: bool = False,
    bench_out: str | None = None,
) -> dict:
    """Run the strategy matrix and return (optionally write) the sweep.

    Raises :class:`AssertionError` the moment any strategy diverges from
    the sequential reference — fingerprint, counters or canonical trace
    at the equality scale, fingerprint at the timing scale.
    """
    if isinstance(fleet, str):
        fleet = parse_fleet_spec(fleet)
    if equality_requests is None:
        equality_requests = min(requests, 120)

    scenarios: dict[str, dict] = {}
    for name, plan in PARALLEL_SCENARIOS.items():
        # -- equality pass: traced, at the trace-friendly scale --------
        reference = None
        equality: dict[str, dict] = {}
        for strategy in STRATEGIES:
            report, tracer, _ = _run_once(
                fleet=fleet,
                parallel=strategy,
                workers=workers,
                faults=plan,
                requests=equality_requests,
                tenants=tenants,
                gpu=gpu,
                seed=seed,
                mean_interarrival_us=mean_interarrival_us,
                traffic=traffic,
                trace=True,
            )
            state = (
                report.fingerprint(),
                report.counters,
                canonical_trace(tracer, results=report.results),
            )
            if reference is None:
                reference = state
            checks = {
                "fingerprint_equal": state[0] == reference[0],
                "counters_equal": state[1] == reference[1],
                "trace_equal": state[2] == reference[2],
            }
            equality[strategy] = checks
            for check, ok in checks.items():
                if not ok:
                    raise AssertionError(
                        f"parallel-bench scenario {name!r}: strategy"
                        f" {strategy!r} failed {check} vs sequential"
                    )

        # -- timing pass: untraced, at full scale ----------------------
        timing: dict[str, dict] = {}
        base_fingerprint = None
        base_wall = None
        for strategy in STRATEGIES:
            report, _, wall = _run_once(
                fleet=fleet,
                parallel=strategy,
                workers=workers,
                faults=plan,
                requests=requests,
                tenants=tenants,
                gpu=gpu,
                seed=seed,
                mean_interarrival_us=mean_interarrival_us,
                traffic=traffic,
                trace=False,
            )
            fingerprint = report.fingerprint()
            if base_fingerprint is None:
                base_fingerprint = fingerprint
                base_wall = wall
            if fingerprint != base_fingerprint:
                raise AssertionError(
                    f"parallel-bench scenario {name!r}: strategy"
                    f" {strategy!r} fingerprint diverges at timing scale"
                )
            timing[strategy] = {
                "wall_s": wall,
                "speedup_vs_sequential": base_wall / wall if wall else 0.0,
                "fingerprint_equal": True,
            }
            if render:
                print(
                    f"parallel {name:<14} {strategy:<10}"
                    f" wall={wall:8.3f}s"
                    f"  speedup={timing[strategy]['speedup_vs_sequential']:5.2f}x"
                )
        scenarios[name] = {
            "plan": plan,
            "fingerprint": base_fingerprint,
            "equality": equality,
            "timing": timing,
        }

    sweep = {
        "schema_version": 1,
        "benchmark": "parallel-bench",
        "fleet": fleet,
        "requests": requests,
        "equality_requests": equality_requests,
        "tenants": tenants,
        "seed": seed,
        "traffic": traffic,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "strategies": list(STRATEGIES),
        "scenarios": scenarios,
    }
    if bench_out:
        with open(bench_out, "w") as fh:
            json.dump(sweep, fh, indent=2)
            fh.write("\n")
        if render:
            print(f"wrote {bench_out}")
    return sweep
