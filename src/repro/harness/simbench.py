"""Simulator-substrate micro-benchmarks (``python -m repro sim-bench``).

Every figure, serving replay and movement sweep in this repository is
bottlenecked on the discrete-event engine, so this harness measures the
engine itself at several scales and *asserts* the two properties the
event-heap refactor establishes:

* **near-linear scaling** — growing the op count by K× may grow the
  wall-clock by at most ``2.5 * K`` (the pre-refactor engine was
  quadratic in ops × streams);
* **repricings grow with running-set changes, not steps** — rates are
  piecewise-constant, so an engine step that changes nothing must not
  re-price the running set;
* **throughput is flat in stream count** — the contention-class engine
  prices one rate per *class* rather than per op, so ops/sec from 8 to
  256 live streams may degrade at most 2× (the pre-class engine lost
  ~20× over the same span);
* **disabled tracing is free** — the observability layer's promise:
  running the same churn with a ``Tracer(enabled=False)`` instead of
  the default null tracer must cost under 5% extra wall-clock (the hot
  paths are guarded by a single ``tracer.enabled`` attribute read).

Each grid cell reports the **min wall-clock of five runs**, with the
repeats interleaved across the whole grid so that machine-load drift
hits every cell equally instead of biasing whichever cell ran while the
box was busy (single runs made the 200-op/64-stream cell look ~12%
slower than steady state purely from warm-up and scheduler noise).

Results are written to ``BENCH_simulator.json`` so the perf trajectory
of the substrate is recorded alongside the paper figures.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import gpu_by_name
from repro.obs.trace import Tracer

#: Wall-clock may grow at most this factor beyond linear in op count.
NEAR_LINEAR_FACTOR = 2.5

#: Default measurement grid (ops x streams).
DEFAULT_OPS_GRID = (200, 1000, 5000)
DEFAULT_STREAMS_GRID = (8, 64, 256)

#: Interleaved repeats each grid cell takes its min wall-clock over.
CELL_REPEATS = 5

#: ops/sec at the largest op count may degrade at most this factor from
#: the smallest to the largest stream count.
STREAMS_FLAT_LIMIT = 2.0

#: Disabled tracing may cost at most this relative wall-clock overhead.
DISABLED_OVERHEAD_LIMIT = 1.05
#: Absolute slack for the overhead comparison (timer jitter at small
#: op counts would otherwise dominate the 5% relative budget).
DISABLED_OVERHEAD_EPS_S = 2e-3
#: Interleaved repeats the overhead pair takes the per-variant min over.
OVERHEAD_REPEATS = 5


@dataclass(frozen=True)
class SimBenchCell:
    """One engine micro-benchmark measurement.

    ``wall_s`` (and the derived ``ops_per_sec``) is the min over
    ``repeats`` interleaved runs; the simulation counters are from the
    last run — the churn is deterministic, so they are identical across
    repeats.
    """

    ops: int
    streams: int
    repeats: int
    wall_s: float
    sim_makespan_s: float
    steps: int
    repricings: int
    running_set_changes: int
    timeline_records: int
    classes: int
    class_repricings: int
    heap_stale_drops: int
    ops_per_sec: float


def _churn_run(
    num_ops: int,
    num_streams: int,
    gpu: str,
    tracer: Tracer | None = None,
) -> SimEngine:
    """Submit ``num_ops`` operations round-robin over ``num_streams``
    streams: a mix of kernels, transfers, cross-stream event waits and
    per-launch host-time charges — the same step pattern the scheduler
    and the serving layer impose on the engine."""
    engine = SimEngine(Device(gpu_by_name(gpu)), tracer=tracer)
    streams = [
        engine.create_stream(label=f"bench-{i}") for i in range(num_streams)
    ]
    last_event = None
    for i in range(num_ops):
        stream = streams[i % num_streams]
        if i % 11 == 7:
            engine.submit(
                stream,
                TransferOp(
                    label=f"t{i}",
                    direction=(
                        TransferDirection.HOST_TO_DEVICE
                        if i % 2
                        else TransferDirection.DEVICE_TO_HOST
                    ),
                    nbytes=float(1 << 18),
                ),
            )
        else:
            if last_event is not None and i % 7 == 3:
                # Cross-stream ordering: exercises the parked-head /
                # event-wakeup path (always acyclic: the record is
                # already submitted).
                engine.wait_event(stream, last_event)
            engine.submit(
                stream,
                KernelOp(
                    label=f"k{i}",
                    resources=KernelResourceRequest(
                        flops=1e8 + (i % 7) * 3e7,
                        fp64=False,
                        dram_bytes=float(1 << 16),
                        l2_bytes=0.0,
                        instructions=0.0,
                        threads_total=4096 * (1 + i % 4),
                    ),
                ),
            )
            if i % 13 == 5:
                last_event = engine.record_event(stream)
        # The scheduler charges host overhead per launch; this is what
        # produced the reprice-per-step pathology in the legacy engine.
        engine.charge_host_time(2e-7)
    engine.sync_all()
    return engine


def _measure_grid(
    ops_grid: tuple[int, ...],
    streams_grid: tuple[int, ...],
    gpu: str,
    repeats: int = CELL_REPEATS,
) -> list[SimBenchCell]:
    """Measure the full ops × streams grid, ``repeats`` times through,
    taking each cell's min wall-clock.  The repeats are interleaved —
    run the whole grid, then run it again — so a load spike degrades
    one pass of every cell rather than every pass of one cell."""
    keys = [
        (num_ops, num_streams)
        for num_streams in streams_grid
        for num_ops in ops_grid
    ]
    walls: dict[tuple[int, int], list[float]] = {key: [] for key in keys}
    engines: dict[tuple[int, int], SimEngine] = {}
    for _ in range(repeats):
        for key in keys:
            num_ops, num_streams = key
            t0 = time.perf_counter()
            engines[key] = _churn_run(num_ops, num_streams, gpu)
            walls[key].append(time.perf_counter() - t0)
    cells = []
    for key in keys:
        num_ops, num_streams = key
        engine = engines[key]
        wall = min(walls[key])
        counters = engine.counters
        cells.append(
            SimBenchCell(
                ops=num_ops,
                streams=num_streams,
                repeats=repeats,
                wall_s=wall,
                sim_makespan_s=engine.timeline.makespan,
                steps=engine.steps,
                repricings=engine.repricings,
                running_set_changes=engine.running_set_changes,
                timeline_records=len(engine.timeline),
                classes=int(counters.get("engine.classes")),
                class_repricings=int(
                    counters.get("engine.class_repricings")
                ),
                heap_stale_drops=int(
                    counters.get("engine.heap_stale_drops")
                ),
                ops_per_sec=num_ops / wall if wall > 0 else float("inf"),
            )
        )
    return cells


def _measure_overhead(
    num_ops: int,
    num_streams: int,
    gpu: str,
    repeats: int = OVERHEAD_REPEATS,
) -> dict:
    """The tracer-overhead cell pair: the same churn under the default
    null tracer (baseline), a constructed-but-disabled tracer, and a
    recording tracer.  Repeats are interleaved (so drift hits every
    variant equally) and each variant reports its min wall-clock — the
    run least polluted by scheduler noise."""
    walls: dict[str, list[float]] = {
        "baseline": [], "disabled": [], "enabled": []
    }
    span_count = 0
    for _ in range(repeats):
        for variant in walls:
            if variant == "baseline":
                tracer = None
            elif variant == "disabled":
                tracer = Tracer(enabled=False)
            else:
                tracer = Tracer()
            t0 = time.perf_counter()
            _churn_run(num_ops, num_streams, gpu, tracer=tracer)
            walls[variant].append(time.perf_counter() - t0)
            if variant == "enabled" and tracer is not None:
                span_count = len(tracer)
    baseline = min(walls["baseline"])
    disabled = min(walls["disabled"])
    enabled = min(walls["enabled"])
    limit = baseline * DISABLED_OVERHEAD_LIMIT + DISABLED_OVERHEAD_EPS_S
    return {
        "ops": num_ops,
        "streams": num_streams,
        "repeats": repeats,
        "baseline_wall_s": baseline,
        "disabled_wall_s": disabled,
        "enabled_wall_s": enabled,
        "disabled_ratio": disabled / max(baseline, 1e-9),
        "enabled_ratio": enabled / max(baseline, 1e-9),
        "enabled_events": span_count,
        "limit_ratio": DISABLED_OVERHEAD_LIMIT,
        "limit_wall_s": limit,
        "ok": disabled <= limit,
    }


def sim_bench(
    render: bool = True,
    gpu: str = "GTX 1660 Super",
    ops_grid: tuple[int, ...] = DEFAULT_OPS_GRID,
    streams_grid: tuple[int, ...] = DEFAULT_STREAMS_GRID,
    out_path: str | None = "BENCH_simulator.json",
    trace_out: str | None = None,
) -> dict:
    """Run the engine micro-benchmark grid and check its asymptotics.

    Raises ``AssertionError`` if scaling in op count regresses, if
    throughput degrades more than 2× from the smallest to the largest
    stream count, or if a disabled tracer costs more than 5% wall-clock
    over the untraced baseline;
    returns (and optionally writes) the structured results.
    ``trace_out`` additionally records one traced churn run and writes
    it as a Chrome-trace JSON.
    """
    if len(ops_grid) < 2 or len(set(ops_grid)) != len(ops_grid):
        raise ValueError(
            "ops_grid needs at least two distinct op counts to assert"
            f" scaling, got {ops_grid!r}"
        )
    if not streams_grid:
        raise ValueError("streams_grid must not be empty")
    ops_grid = tuple(sorted(ops_grid))
    # Warm-up: import costs, allocator pools, dict resizes.
    _churn_run(64, 4, gpu)

    cells = _measure_grid(ops_grid, streams_grid, gpu)

    near_linear = []
    for num_streams in streams_grid:
        group = {c.ops: c for c in cells if c.streams == num_streams}
        lo, hi = ops_grid[-2], ops_grid[-1]
        ops_ratio = hi / lo
        wall_ratio = group[hi].wall_s / max(group[lo].wall_s, 1e-9)
        near_linear.append(
            {
                "streams": num_streams,
                "ops_lo": lo,
                "ops_hi": hi,
                "ops_ratio": ops_ratio,
                "wall_ratio": wall_ratio,
                "limit": NEAR_LINEAR_FACTOR * ops_ratio,
                "ok": wall_ratio < NEAR_LINEAR_FACTOR * ops_ratio,
            }
        )

    repricings_bounded = [
        {
            "ops": c.ops,
            "streams": c.streams,
            "steps": c.steps,
            "repricings": c.repricings,
            "running_set_changes": c.running_set_changes,
            "ok": c.repricings <= c.running_set_changes + 1,
        }
        for c in cells
    ]

    # Streams-flatness: at the largest op count, ops/sec from the
    # smallest to the largest stream count.  The contention-class engine
    # prices per class, so the span must stay within STREAMS_FLAT_LIMIT.
    lo_streams, hi_streams = min(streams_grid), max(streams_grid)
    top_ops = ops_grid[-1]
    by_streams = {c.streams: c for c in cells if c.ops == top_ops}
    flat_ratio = by_streams[lo_streams].ops_per_sec / max(
        by_streams[hi_streams].ops_per_sec, 1e-9
    )
    streams_flatness = {
        "ops": top_ops,
        "streams_lo": lo_streams,
        "streams_hi": hi_streams,
        "ops_per_sec_lo": by_streams[lo_streams].ops_per_sec,
        "ops_per_sec_hi": by_streams[hi_streams].ops_per_sec,
        "ratio": flat_ratio,
        "limit": STREAMS_FLAT_LIMIT,
        "ok": lo_streams == hi_streams
        or flat_ratio <= STREAMS_FLAT_LIMIT,
    }

    # The tracer-overhead pair at the mid-grid scale: large enough that
    # per-op costs dominate timer jitter, small enough to stay cheap.
    overhead = _measure_overhead(ops_grid[-2], streams_grid[0], gpu)

    results = {
        # Artifact-format version: CI smoke jobs validate the required
        # keys against this before reading any numbers.
        "schema_version": 1,
        "benchmark": "sim-bench",
        "gpu": gpu,
        "near_linear_factor": NEAR_LINEAR_FACTOR,
        "cells": [asdict(c) for c in cells],
        "overhead": overhead,
        "assertions": {
            "near_linear": near_linear,
            "repricings_bounded": repricings_bounded,
            "streams_flatness": streams_flatness,
            "disabled_overhead": overhead,
        },
    }

    if render:
        print("sim-bench: engine micro-benchmarks", f"({gpu})")
        header = (
            f"{'ops':>6} {'streams':>7} {'wall [ms]':>10}"
            f" {'ops/s':>10} {'steps':>8} {'repricings':>10}"
            f" {'changes':>8} {'classes':>8}"
        )
        print(header)
        for c in cells:
            print(
                f"{c.ops:>6} {c.streams:>7} {c.wall_s * 1e3:>10.2f}"
                f" {c.ops_per_sec:>10.0f} {c.steps:>8}"
                f" {c.repricings:>10} {c.running_set_changes:>8}"
                f" {c.classes:>8}"
            )
        for check in near_linear:
            print(
                f"scaling @{check['streams']} streams:"
                f" {check['ops_lo']} -> {check['ops_hi']} ops,"
                f" wall x{check['wall_ratio']:.2f}"
                f" (limit x{check['limit']:.1f})"
                f" {'OK' if check['ok'] else 'FAIL'}"
            )
        print(
            f"streams flatness @{top_ops} ops:"
            f" {lo_streams} -> {hi_streams} streams,"
            f" ops/s x{1.0 / max(flat_ratio, 1e-9):.2f}"
            f" (ratio {flat_ratio:.2f}, limit"
            f" {STREAMS_FLAT_LIMIT:.1f})"
            f" {'OK' if streams_flatness['ok'] else 'FAIL'}"
        )
        print(
            f"tracer overhead @{overhead['ops']} ops"
            f" /{overhead['streams']} streams:"
            f" disabled x{overhead['disabled_ratio']:.3f}"
            f" enabled x{overhead['enabled_ratio']:.3f}"
            f" ({overhead['enabled_events']} events)"
            f" {'OK' if overhead['ok'] else 'FAIL'}"
        )

    if trace_out:
        from repro.obs.export import write_chrome_trace

        tracer = Tracer()
        _churn_run(ops_grid[0], streams_grid[0], gpu, tracer=tracer)
        write_chrome_trace(
            trace_out,
            tracer,
            other={
                "benchmark": "sim-bench",
                "gpu": gpu,
                "ops": ops_grid[0],
                "streams": streams_grid[0],
            },
        )
        if render:
            print(f"wrote {trace_out}")

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
        if render:
            print(f"wrote {out_path}")

    for check in near_linear:
        assert check["ok"], (
            f"engine scaling regressed at {check['streams']} streams:"
            f" {check['ops_lo']}->{check['ops_hi']} ops grew wall-clock"
            f" {check['wall_ratio']:.2f}x (limit {check['limit']:.1f}x)"
        )
    assert streams_flatness["ok"], (
        f"engine throughput is not flat in stream count:"
        f" {lo_streams} -> {hi_streams} streams at {top_ops} ops"
        f" degraded ops/sec {flat_ratio:.2f}x"
        f" (limit {STREAMS_FLAT_LIMIT:.1f}x)"
    )
    for check in repricings_bounded:
        assert check["ok"], (
            f"repricings ({check['repricings']}) exceeded running-set"
            f" changes ({check['running_set_changes']}) at"
            f" {check['ops']} ops / {check['streams']} streams:"
            " the engine re-prices without a set change"
        )
    assert overhead["ok"], (
        f"disabled tracer overhead regressed:"
        f" {overhead['disabled_wall_s']:.4f}s vs"
        f" {overhead['baseline_wall_s']:.4f}s baseline"
        f" (x{overhead['disabled_ratio']:.3f}, limit"
        f" x{DISABLED_OVERHEAD_LIMIT} + {DISABLED_OVERHEAD_EPS_S}s)"
    )
    return results
