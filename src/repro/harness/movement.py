"""Movement-policy sweep: the benchmark axis the coherence engine opens.

``python -m repro movement-bench`` runs each suite workload under every
:class:`~repro.memory.coherence.MovementPolicy` on the parallel
scheduler and prints a comparison table: device makespan, bytes moved by
engine-issued migrations, bytes left to the page-fault engine, and the
number of transfer operations (BATCHED coalescing shows up here).

Since the movement policies reach the multi-GPU path through
``Session(gpus=N)``, the sweep also covers the fleet grid: every
:class:`~repro.core.policies.DevicePlacementPolicy` × movement policy on
a two-GPU session, with the ROADMAP dominance relation asserted per
placement — eager prefetch is at least as fast as page faults on
makespan (faults serialize migration into the kernels; prefetch overlaps
it).

Functional invariant, asserted on every sweep: all policies produce
bit-identical workload results — they only decide *when*, *where* and
*in how many pieces* bytes move, never *which values* are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import DevicePlacementPolicy
from repro.gpusim.timeline import Timeline
from repro.memory.coherence import MovementPolicy
from repro.workloads import Mode
from repro.workloads.suite import create_benchmark, default_scales

DEFAULT_BENCHMARKS = ("vec", "b&s", "img", "ml")
#: makespans are simulated, not measured, so the dominance assertion
#: needs no statistical slack — only float-comparison headroom
DOMINANCE_RTOL = 1e-9


def timeline_fault_bytes(timeline: Timeline) -> float:
    """Bytes migrated by the fault engine during kernels (the charge the
    page-fault policy pays instead of issuing transfers)."""
    return sum(
        r.meta["resources"].fault_bytes
        for r in timeline.kernels()
        if r.meta.get("resources") is not None
    )


def timeline_moved_bytes(timeline: Timeline) -> float:
    """Bytes moved host-to-device by engine-issued migrations."""
    from repro.gpusim.timeline import IntervalKind

    return sum(
        r.nbytes
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


def timeline_htod_ops(timeline: Timeline) -> int:
    from repro.gpusim.timeline import IntervalKind

    return sum(
        1
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


@dataclass(frozen=True)
class MovementCell:
    """One (workload, movement policy) measurement."""

    benchmark: str
    scale: int
    policy: MovementPolicy
    elapsed: float
    moved_bytes: float
    fault_bytes: float
    htod_ops: int
    results: tuple[float, ...]


def sweep_movement_policies(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
) -> list[MovementCell]:
    """Run ``benchmarks`` under every movement policy on ``gpu``.

    Raises if any policy's results diverge from the page-fault
    baseline's — the policies must be functionally indistinguishable.
    """
    cells: list[MovementCell] = []
    for name in benchmarks:
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        reference: tuple[float, ...] | None = None
        for policy in MovementPolicy:
            bench = create_benchmark(
                name, scale, iterations=iterations, execute=execute
            )
            run = bench.run(gpu, Mode.PARALLEL, movement=policy)
            cell = MovementCell(
                benchmark=name,
                scale=scale,
                policy=policy,
                elapsed=run.elapsed,
                moved_bytes=timeline_moved_bytes(run.timeline),
                fault_bytes=timeline_fault_bytes(run.timeline),
                htod_ops=timeline_htod_ops(run.timeline),
                results=tuple(run.results),
            )
            if reference is None:
                reference = cell.results
            elif execute and cell.results != reference:
                raise AssertionError(
                    f"{name}: {policy.value} results diverged from"
                    f" {MovementPolicy.PAGE_FAULT.value}"
                )
            cells.append(cell)
    return cells


def timeline_d2d_bytes(timeline: Timeline) -> float:
    """Bytes moved device-to-device (fleet peer mirrors)."""
    from repro.gpusim.timeline import IntervalKind

    return sum(
        r.nbytes
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_D2D
    )


@dataclass(frozen=True)
class FleetMovementCell:
    """One (workload, placement, movement policy) fleet measurement."""

    benchmark: str
    scale: int
    gpus: int
    placement: DevicePlacementPolicy
    policy: MovementPolicy
    elapsed: float
    moved_bytes: float
    d2d_bytes: float
    fault_bytes: float
    htod_ops: int
    results: tuple[float, ...]


def sweep_fleet_movement(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    gpus: int = 2,
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
) -> list[FleetMovementCell]:
    """The fleet grid: placement × movement policy on a multi-GPU
    session, for every workload.

    Asserts, per (workload, placement):

    * all movement policies produce bit-identical results;
    * the ROADMAP dominance relation — eager prefetch's makespan is no
      worse than page faults' (faults serialize the same bytes into the
      kernels, so overlap can only help).
    """
    cells: list[FleetMovementCell] = []
    for name in benchmarks:
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        reference: tuple[float, ...] | None = None
        for placement in DevicePlacementPolicy:
            by_policy: dict[MovementPolicy, FleetMovementCell] = {}
            for policy in MovementPolicy:
                bench = create_benchmark(
                    name, scale, iterations=iterations, execute=execute
                )
                run = bench.run(
                    gpu, Mode.PARALLEL, movement=policy,
                    gpus=gpus, placement=placement,
                )
                cell = FleetMovementCell(
                    benchmark=name,
                    scale=scale,
                    gpus=gpus,
                    placement=placement,
                    policy=policy,
                    elapsed=run.elapsed,
                    moved_bytes=timeline_moved_bytes(run.timeline),
                    d2d_bytes=timeline_d2d_bytes(run.timeline),
                    fault_bytes=timeline_fault_bytes(run.timeline),
                    htod_ops=timeline_htod_ops(run.timeline),
                    results=tuple(run.results),
                )
                if reference is None:
                    reference = cell.results
                elif execute and cell.results != reference:
                    raise AssertionError(
                        f"{name}/{placement.value}: {policy.value} results"
                        " diverged across the fleet grid"
                    )
                by_policy[policy] = cell
                cells.append(cell)
            eager = by_policy[MovementPolicy.EAGER_PREFETCH]
            fault = by_policy[MovementPolicy.PAGE_FAULT]
            if eager.elapsed > fault.elapsed * (1 + DOMINANCE_RTOL):
                raise AssertionError(
                    f"{name}/{placement.value}: dominance violated —"
                    f" eager {eager.elapsed:.6e}s >"
                    f" fault {fault.elapsed:.6e}s"
                )
    return cells


def render_fleet_table(cells: list[FleetMovementCell]) -> str:
    lines = [
        "Fleet movement grid (placement x movement, "
        f"{cells[0].gpus if cells else 2} GPUs)",
        "=================================================",
        f"{'benchmark':<10} {'placement':<14} {'policy':<16}"
        f" {'time ms':>10} {'moved MB':>9} {'D2D MB':>8}"
        f" {'fault MB':>9} {'HtoD ops':>9}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.benchmark:<10} {cell.placement.value:<14}"
            f" {cell.policy.value:<16}"
            f" {cell.elapsed * 1e3:>10.3f}"
            f" {cell.moved_bytes / 1e6:>9.1f}"
            f" {cell.d2d_bytes / 1e6:>8.1f}"
            f" {cell.fault_bytes / 1e6:>9.1f}"
            f" {cell.htod_ops:>9}"
        )
    lines.append("")
    lines.append(
        "asserted per placement: results bit-identical across policies,"
        " eager makespan <= fault makespan"
    )
    return "\n".join(lines)


def render_movement_table(cells: list[MovementCell]) -> str:
    lines = [
        "Movement-policy sweep (parallel scheduler)",
        "==========================================",
        f"{'benchmark':<10} {'policy':<16} {'time ms':>10}"
        f" {'moved MB':>10} {'fault MB':>10} {'HtoD ops':>9}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.benchmark:<10} {cell.policy.value:<16}"
            f" {cell.elapsed * 1e3:>10.3f}"
            f" {cell.moved_bytes / 1e6:>10.1f}"
            f" {cell.fault_bytes / 1e6:>10.1f}"
            f" {cell.htod_ops:>9}"
        )
    lines.append("")
    lines.append(
        "results are bit-identical across policies (asserted per sweep)"
    )
    return "\n".join(lines)


def movement_bench(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
    render: bool = False,
    fleet_gpus: int = 2,
) -> tuple[list[MovementCell], list[FleetMovementCell]]:
    """The ``movement-bench`` experiment entry point: the single-GPU
    movement sweep plus the fleet placement × movement grid
    (``fleet_gpus=0`` skips the fleet axis)."""
    cells = sweep_movement_policies(
        benchmarks,
        gpu=gpu,
        iterations=iterations,
        scale_index=scale_index,
        execute=execute,
    )
    if render:
        print(render_movement_table(cells))
    fleet_cells: list[FleetMovementCell] = []
    if fleet_gpus > 1:
        fleet_cells = sweep_fleet_movement(
            benchmarks,
            gpu=gpu,
            gpus=fleet_gpus,
            iterations=iterations,
            scale_index=scale_index,
            execute=execute,
        )
        if render:
            print()
            print(render_fleet_table(fleet_cells))
    return cells, fleet_cells
