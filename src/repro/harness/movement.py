"""Movement-policy sweep: the benchmark axis the coherence engine opens.

``python -m repro movement-bench`` runs each suite workload under every
:class:`~repro.memory.coherence.MovementPolicy` on the parallel
scheduler and prints a comparison table: device makespan, bytes moved by
engine-issued migrations, bytes left to the page-fault engine, and the
number of transfer operations (BATCHED coalescing shows up here).  The
BATCHED policy runs twice — per-acquire (``window=0``) and with the
cross-acquire submission window — and the grid *asserts* the op-count
dominance chain per workload:

    ``batched+window HtoD ops <= batched HtoD ops <= eager HtoD ops``

Since the movement policies reach the multi-GPU path through
``Session(gpus=N)``, the sweep also covers the fleet grid: every
:class:`~repro.core.policies.DevicePlacementPolicy` × movement policy on
a two-GPU session, with the ROADMAP dominance relations asserted per
placement — eager prefetch is at least as fast as page faults on
makespan (faults serialize migration into the kernels; prefetch overlaps
it), and the same HtoD-op-count chain as the single-GPU sweep.

A third grid covers the *serving* axes: execution policy {serial,
parallel} × admission {fifo, priority, fair-share} over both serving
traffic mixes (:data:`repro.serve.workloads.TRAFFIC_MIXES`), asserting
every request's outputs against private serial execution.

Functional invariant, asserted on every sweep: all policies produce
bit-identical workload results — they only decide *when*, *where* and
*in how many pieces* bytes move, never *which values* are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import (
    AdmissionPolicy,
    DevicePlacementPolicy,
    ExecutionPolicy,
    SchedulerConfig,
)
from repro.gpusim.timeline import Timeline
from repro.memory.coherence import MovementPolicy
from repro.workloads import Mode
from repro.workloads.suite import create_benchmark, default_scales

DEFAULT_BENCHMARKS = ("vec", "b&s", "img", "ml")
#: makespans are simulated, not measured, so the dominance assertion
#: needs no statistical slack — only float-comparison headroom
DOMINANCE_RTOL = 1e-9
#: cross-acquire coalescing window the windowed-BATCHED cells run with
DEFAULT_WINDOW = 4


def timeline_fault_bytes(timeline: Timeline) -> float:
    """Bytes migrated by the fault engine during kernels (the charge the
    page-fault policy pays instead of issuing transfers)."""
    return sum(
        r.meta["resources"].fault_bytes
        for r in timeline.kernels()
        if r.meta.get("resources") is not None
    )


def timeline_moved_bytes(timeline: Timeline) -> float:
    """Bytes moved host-to-device by engine-issued migrations."""
    from repro.gpusim.timeline import IntervalKind

    return sum(
        r.nbytes
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


def timeline_htod_ops(timeline: Timeline) -> int:
    from repro.gpusim.timeline import IntervalKind

    return sum(
        1
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


def _counter(run, name: str, fallback) -> float:
    """A movement tally from the run's observability-registry snapshot,
    falling back to the timeline scan for runs that carry no counters
    (the registry is authoritative: it is what serve-bench reports, so
    the sweep reading the same cells keeps the two surfaces honest)."""
    counters = getattr(run, "counters", None)
    if counters and name in counters:
        return counters[name]
    return fallback(run.timeline)


def run_moved_bytes(run) -> float:
    """Engine-issued HtoD migration bytes (registry-first)."""
    return float(_counter(run, "coherence.htod_bytes", timeline_moved_bytes))


def run_htod_ops(run) -> int:
    """Engine-issued HtoD migration submissions (registry-first)."""
    return int(_counter(run, "coherence.htod_ops", timeline_htod_ops))


def run_fault_bytes(run) -> float:
    """Bytes left to the page-fault engine (registry-first)."""
    return float(_counter(run, "coherence.fault_bytes", timeline_fault_bytes))


def run_dtoh_bytes(run) -> float:
    """Host-readback (DtoH) bytes the coherence engine charged."""

    def _scan(timeline: Timeline) -> float:
        from repro.gpusim.timeline import IntervalKind

        return sum(
            r.nbytes
            for r in timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_DTOH
        )

    return float(_counter(run, "coherence.dtoh_bytes", _scan))


def _policy_variants(
    window: int,
) -> list[tuple[str, MovementPolicy, int]]:
    """(label, policy, movement_window) cells one sweep runs: the three
    policies per-acquire, plus windowed BATCHED when ``window > 0``."""
    variants = [(p.value, p, 0) for p in MovementPolicy]
    if window > 0:
        variants.append(
            (f"batched+w{window}", MovementPolicy.BATCHED, window)
        )
    return variants


def _assert_htod_dominance(
    scope: str, by_label: dict[str, int], window: int
) -> None:
    """The op-count chain: windowed batched <= batched <= eager."""
    eager = by_label[MovementPolicy.EAGER_PREFETCH.value]
    batched = by_label[MovementPolicy.BATCHED.value]
    if batched > eager:
        raise AssertionError(
            f"{scope}: batched issued {batched} HtoD ops >"
            f" eager's {eager} — coalescing must never add submissions"
        )
    if window > 0:
        windowed = by_label[f"batched+w{window}"]
        if windowed > batched:
            raise AssertionError(
                f"{scope}: batched+w{window} issued {windowed} HtoD ops"
                f" > per-acquire batched's {batched} — the submission"
                " window must never split transfers"
            )


@dataclass(frozen=True)
class MovementCell:
    """One (workload, movement policy) measurement."""

    benchmark: str
    scale: int
    policy: MovementPolicy
    elapsed: float
    moved_bytes: float
    fault_bytes: float
    htod_ops: int
    results: tuple[float, ...]
    #: display label (distinguishes windowed BATCHED from per-acquire)
    label: str = ""
    #: cross-acquire coalescing window the cell ran with (0 = per-acquire)
    window: int = 0
    #: host-readback bytes (registry ``coherence.dtoh_bytes``)
    dtoh_bytes: float = 0.0


def sweep_movement_policies(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
    window: int = DEFAULT_WINDOW,
) -> list[MovementCell]:
    """Run ``benchmarks`` under every movement policy on ``gpu``.

    Raises if any policy's results diverge from the page-fault
    baseline's — the policies must be functionally indistinguishable —
    or if the HtoD op-count dominance chain is violated.
    """
    cells: list[MovementCell] = []
    for name in benchmarks:
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        reference: tuple[float, ...] | None = None
        htod_by_label: dict[str, int] = {}
        for label, policy, cell_window in _policy_variants(window):
            bench = create_benchmark(
                name, scale, iterations=iterations, execute=execute
            )
            run = bench.run(
                gpu, Mode.PARALLEL, movement=policy,
                movement_window=cell_window,
            )
            cell = MovementCell(
                benchmark=name,
                scale=scale,
                policy=policy,
                elapsed=run.elapsed,
                moved_bytes=run_moved_bytes(run),
                fault_bytes=run_fault_bytes(run),
                htod_ops=run_htod_ops(run),
                results=tuple(run.results),
                label=label,
                window=cell_window,
                dtoh_bytes=run_dtoh_bytes(run),
            )
            if reference is None:
                reference = cell.results
            elif execute and cell.results != reference:
                raise AssertionError(
                    f"{name}: {label} results diverged from"
                    f" {MovementPolicy.PAGE_FAULT.value}"
                )
            htod_by_label[label] = cell.htod_ops
            cells.append(cell)
        _assert_htod_dominance(name, htod_by_label, window)
    return cells


def timeline_d2d_bytes(timeline: Timeline) -> float:
    """Bytes moved device-to-device (fleet peer mirrors)."""
    from repro.gpusim.timeline import IntervalKind

    return sum(
        r.nbytes
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_D2D
    )


def run_d2d_bytes(run) -> float:
    """Device-to-device mirror bytes (registry-first)."""
    return float(_counter(run, "coherence.d2d_bytes", timeline_d2d_bytes))


@dataclass(frozen=True)
class FleetMovementCell:
    """One (workload, placement, movement policy) fleet measurement."""

    benchmark: str
    scale: int
    gpus: int
    placement: DevicePlacementPolicy
    policy: MovementPolicy
    elapsed: float
    moved_bytes: float
    d2d_bytes: float
    fault_bytes: float
    htod_ops: int
    results: tuple[float, ...]
    label: str = ""
    window: int = 0
    #: host-readback bytes (registry ``coherence.dtoh_bytes``)
    dtoh_bytes: float = 0.0


def sweep_fleet_movement(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    gpus: int = 2,
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
    window: int = DEFAULT_WINDOW,
) -> list[FleetMovementCell]:
    """The fleet grid: placement × movement policy on a multi-GPU
    session, for every workload.

    Asserts, per (workload, placement):

    * all movement policies produce bit-identical results;
    * the ROADMAP dominance relation — eager prefetch's makespan is no
      worse than page faults' (faults serialize the same bytes into the
      kernels, so overlap can only help);
    * the HtoD op-count chain — windowed batched <= batched <= eager.
    """
    cells: list[FleetMovementCell] = []
    for name in benchmarks:
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        reference: tuple[float, ...] | None = None
        for placement in DevicePlacementPolicy:
            by_label: dict[str, FleetMovementCell] = {}
            for label, policy, cell_window in _policy_variants(window):
                bench = create_benchmark(
                    name, scale, iterations=iterations, execute=execute
                )
                run = bench.run(
                    gpu, Mode.PARALLEL, movement=policy,
                    gpus=gpus, placement=placement,
                    movement_window=cell_window,
                )
                cell = FleetMovementCell(
                    benchmark=name,
                    scale=scale,
                    gpus=gpus,
                    placement=placement,
                    policy=policy,
                    elapsed=run.elapsed,
                    moved_bytes=run_moved_bytes(run),
                    d2d_bytes=run_d2d_bytes(run),
                    fault_bytes=run_fault_bytes(run),
                    htod_ops=run_htod_ops(run),
                    results=tuple(run.results),
                    label=label,
                    window=cell_window,
                    dtoh_bytes=run_dtoh_bytes(run),
                )
                if reference is None:
                    reference = cell.results
                elif execute and cell.results != reference:
                    raise AssertionError(
                        f"{name}/{placement.value}: {label} results"
                        " diverged across the fleet grid"
                    )
                by_label[label] = cell
                cells.append(cell)
            eager = by_label[MovementPolicy.EAGER_PREFETCH.value]
            fault = by_label[MovementPolicy.PAGE_FAULT.value]
            if eager.elapsed > fault.elapsed * (1 + DOMINANCE_RTOL):
                raise AssertionError(
                    f"{name}/{placement.value}: dominance violated —"
                    f" eager {eager.elapsed:.6e}s >"
                    f" fault {fault.elapsed:.6e}s"
                )
            _assert_htod_dominance(
                f"{name}/{placement.value}",
                {lbl: c.htod_ops for lbl, c in by_label.items()},
                window,
            )
    return cells


@dataclass(frozen=True)
class ServingAxisCell:
    """One (traffic mix, execution policy, admission policy) serving
    measurement — every request validated against serial execution."""

    mix: str
    execution: ExecutionPolicy
    admission: AdmissionPolicy
    requests: int
    makespan: float
    throughput_rps: float
    p50: float
    p99: float
    batches: int
    capture_hits: int


def sweep_serving_axes(
    requests: int = 12,
    tenants: int = 3,
    fleet_size: int = 2,
    gpu: str = "GTX 1660 Super",
    mixes: tuple[str, ...] = ("uniform", "skewed"),
    seed: int = 11,
) -> list[ServingAxisCell]:
    """The serving grid: execution {serial, parallel} × admission
    {fifo, priority, fair-share} over the named traffic mixes.

    Every cell's per-request outputs are asserted equal to executing the
    same graph alone on a private serial runtime — scheduling and
    admission order must never change results.
    """
    from repro.serve import SchedulerService, ServeConfig, execute_serial
    from repro.serve.workloads import traffic_mix_graphs

    cells: list[ServingAxisCell] = []
    for mix in mixes:
        graphs = traffic_mix_graphs(requests, mix=mix, seed=seed)
        references = [execute_serial(g, gpu=gpu) for g in graphs]
        for execution in (ExecutionPolicy.SERIAL, ExecutionPolicy.PARALLEL):
            for admission in AdmissionPolicy:
                service = SchedulerService(
                    fleet_size=fleet_size,
                    gpu=gpu,
                    config=ServeConfig(
                        admission=admission,
                        scheduler=SchedulerConfig(execution=execution),
                    ),
                )
                for t in range(tenants):
                    service.register_tenant(
                        f"tenant{t}", priority=tenants - 1 - t
                    )
                submitted = []
                for i, graph in enumerate(graphs):
                    submitted.append(
                        service.submit(
                            f"tenant{i % tenants}",
                            graph,
                            arrival_time=i * 1e-4,
                        )
                    )
                report = service.run()
                by_id = {r.request_id: r for r in report.results}
                for request_id, reference in zip(submitted, references):
                    got = by_id[request_id].outputs
                    for out_name, expected in reference.items():
                        if not np.array_equal(got[out_name], expected):
                            raise AssertionError(
                                f"{mix}/{execution.value}/"
                                f"{admission.value}: request"
                                f" {request_id} output {out_name!r}"
                                " diverges from serial execution"
                            )
                m = report.metrics
                cells.append(
                    ServingAxisCell(
                        mix=mix,
                        execution=execution,
                        admission=admission,
                        requests=m.completed,
                        makespan=m.makespan,
                        throughput_rps=m.throughput_rps,
                        p50=m.latency.p50,
                        p99=m.latency.p99,
                        batches=m.batches,
                        capture_hits=m.capture_hits,
                    )
                )
    return cells


def render_serving_table(cells: list[ServingAxisCell]) -> str:
    lines = [
        "Serving axes grid (execution x admission, per traffic mix)",
        "==========================================================",
        f"{'mix':<9} {'execution':<10} {'admission':<11} {'req':>4}"
        f" {'makespan ms':>12} {'req/s':>9} {'p50 ms':>8} {'p99 ms':>8}"
        f" {'batches':>8} {'hits':>5}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.mix:<9} {cell.execution.value:<10}"
            f" {cell.admission.value:<11} {cell.requests:>4}"
            f" {cell.makespan * 1e3:>12.3f}"
            f" {cell.throughput_rps:>9.1f}"
            f" {cell.p50 * 1e3:>8.3f} {cell.p99 * 1e3:>8.3f}"
            f" {cell.batches:>8} {cell.capture_hits:>5}"
        )
    lines.append("")
    lines.append(
        "asserted per cell: every request's outputs equal private"
        " serial execution"
    )
    return "\n".join(lines)


def render_fleet_table(cells: list[FleetMovementCell]) -> str:
    lines = [
        "Fleet movement grid (placement x movement, "
        f"{cells[0].gpus if cells else 2} GPUs)",
        "=================================================",
        f"{'benchmark':<10} {'placement':<14} {'policy':<16}"
        f" {'time ms':>10} {'moved MB':>9} {'D2D MB':>8}"
        f" {'fault MB':>9} {'HtoD ops':>9}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.benchmark:<10} {cell.placement.value:<14}"
            f" {cell.label or cell.policy.value:<16}"
            f" {cell.elapsed * 1e3:>10.3f}"
            f" {cell.moved_bytes / 1e6:>9.1f}"
            f" {cell.d2d_bytes / 1e6:>8.1f}"
            f" {cell.fault_bytes / 1e6:>9.1f}"
            f" {cell.htod_ops:>9}"
        )
    lines.append("")
    lines.append(
        "asserted per placement: results bit-identical across policies,"
        " eager makespan <= fault makespan,"
        " batched+window <= batched <= eager HtoD ops"
    )
    return "\n".join(lines)


def render_movement_table(cells: list[MovementCell]) -> str:
    lines = [
        "Movement-policy sweep (parallel scheduler)",
        "==========================================",
        f"{'benchmark':<10} {'policy':<16} {'time ms':>10}"
        f" {'moved MB':>10} {'fault MB':>10} {'HtoD ops':>9}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.benchmark:<10} {cell.label or cell.policy.value:<16}"
            f" {cell.elapsed * 1e3:>10.3f}"
            f" {cell.moved_bytes / 1e6:>10.1f}"
            f" {cell.fault_bytes / 1e6:>10.1f}"
            f" {cell.htod_ops:>9}"
        )
    lines.append("")
    lines.append(
        "results are bit-identical across policies (asserted per sweep);"
        " batched+window <= batched <= eager HtoD ops (asserted)"
    )
    return "\n".join(lines)


def movement_bench(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
    render: bool = False,
    fleet_gpus: int = 2,
    window: int = DEFAULT_WINDOW,
    serving_axes: bool = True,
    serving_requests: int = 12,
    trace_out: str | None = None,
) -> tuple[
    list[MovementCell], list[FleetMovementCell], list[ServingAxisCell]
]:
    """The ``movement-bench`` experiment entry point: the single-GPU
    movement sweep, the fleet placement × movement grid (``fleet_gpus=0``
    skips it) and the serving execution × admission grid over both
    traffic mixes (``serving_axes=False`` skips it).  ``trace_out``
    additionally records one windowed-BATCHED run of the first workload
    with the span tracer installed and writes it as Chrome-trace JSON —
    the acquire/flush-window spans are the point of this trace."""
    cells = sweep_movement_policies(
        benchmarks,
        gpu=gpu,
        iterations=iterations,
        scale_index=scale_index,
        execute=execute,
        window=window,
    )
    if render:
        print(render_movement_table(cells))
    fleet_cells: list[FleetMovementCell] = []
    if fleet_gpus > 1:
        fleet_cells = sweep_fleet_movement(
            benchmarks,
            gpu=gpu,
            gpus=fleet_gpus,
            iterations=iterations,
            scale_index=scale_index,
            execute=execute,
            window=window,
        )
        if render:
            print()
            print(render_fleet_table(fleet_cells))
    serving_cells: list[ServingAxisCell] = []
    if serving_axes:
        serving_cells = sweep_serving_axes(
            requests=serving_requests, gpu=gpu
        )
        if render:
            print()
            print(render_serving_table(serving_cells))
    if trace_out:
        from repro.obs.export import write_chrome_trace
        from repro.obs.trace import Tracer, use_tracer

        name = benchmarks[0]
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        tracer = Tracer()
        bench = create_benchmark(
            name, scale, iterations=iterations, execute=execute
        )
        with use_tracer(tracer):
            bench.run(
                gpu, Mode.PARALLEL,
                movement=MovementPolicy.BATCHED,
                movement_window=window,
            )
        write_chrome_trace(
            trace_out,
            tracer,
            other={
                "benchmark": "movement-bench",
                "workload": name,
                "gpu": gpu,
                "movement": MovementPolicy.BATCHED.value,
                "movement_window": window,
            },
        )
        if render:
            print(f"wrote {trace_out}")
    return cells, fleet_cells, serving_cells
