"""Movement-policy sweep: the benchmark axis the coherence engine opens.

``python -m repro movement-bench`` runs each suite workload under every
:class:`~repro.memory.coherence.MovementPolicy` on the parallel
scheduler and prints a comparison table: device makespan, bytes moved by
engine-issued migrations, bytes left to the page-fault engine, and the
number of transfer operations (BATCHED coalescing shows up here).

Functional invariant, asserted on every sweep: all policies produce
bit-identical workload results — they only decide *when* and *in how
many pieces* bytes move, never *which values* are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.timeline import Timeline
from repro.memory.coherence import MovementPolicy
from repro.workloads import Mode
from repro.workloads.suite import create_benchmark, default_scales

DEFAULT_BENCHMARKS = ("vec", "b&s", "img", "ml")


def timeline_fault_bytes(timeline: Timeline) -> float:
    """Bytes migrated by the fault engine during kernels (the charge the
    page-fault policy pays instead of issuing transfers)."""
    return sum(
        r.meta["resources"].fault_bytes
        for r in timeline.kernels()
        if r.meta.get("resources") is not None
    )


def timeline_moved_bytes(timeline: Timeline) -> float:
    """Bytes moved host-to-device by engine-issued migrations."""
    from repro.gpusim.timeline import IntervalKind

    return sum(
        r.nbytes
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


def timeline_htod_ops(timeline: Timeline) -> int:
    from repro.gpusim.timeline import IntervalKind

    return sum(
        1
        for r in timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    )


@dataclass(frozen=True)
class MovementCell:
    """One (workload, movement policy) measurement."""

    benchmark: str
    scale: int
    policy: MovementPolicy
    elapsed: float
    moved_bytes: float
    fault_bytes: float
    htod_ops: int
    results: tuple[float, ...]


def sweep_movement_policies(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
) -> list[MovementCell]:
    """Run ``benchmarks`` under every movement policy on ``gpu``.

    Raises if any policy's results diverge from the page-fault
    baseline's — the policies must be functionally indistinguishable.
    """
    cells: list[MovementCell] = []
    for name in benchmarks:
        scales = default_scales(name, gpu)
        scale = scales[min(scale_index, len(scales) - 1)]
        reference: tuple[float, ...] | None = None
        for policy in MovementPolicy:
            bench = create_benchmark(
                name, scale, iterations=iterations, execute=execute
            )
            run = bench.run(gpu, Mode.PARALLEL, movement=policy)
            cell = MovementCell(
                benchmark=name,
                scale=scale,
                policy=policy,
                elapsed=run.elapsed,
                moved_bytes=timeline_moved_bytes(run.timeline),
                fault_bytes=timeline_fault_bytes(run.timeline),
                htod_ops=timeline_htod_ops(run.timeline),
                results=tuple(run.results),
            )
            if reference is None:
                reference = cell.results
            elif execute and cell.results != reference:
                raise AssertionError(
                    f"{name}: {policy.value} results diverged from"
                    f" {MovementPolicy.PAGE_FAULT.value}"
                )
            cells.append(cell)
    return cells


def render_movement_table(cells: list[MovementCell]) -> str:
    lines = [
        "Movement-policy sweep (parallel scheduler)",
        "==========================================",
        f"{'benchmark':<10} {'policy':<16} {'time ms':>10}"
        f" {'moved MB':>10} {'fault MB':>10} {'HtoD ops':>9}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.benchmark:<10} {cell.policy.value:<16}"
            f" {cell.elapsed * 1e3:>10.3f}"
            f" {cell.moved_bytes / 1e6:>10.1f}"
            f" {cell.fault_bytes / 1e6:>10.1f}"
            f" {cell.htod_ops:>9}"
        )
    lines.append("")
    lines.append(
        "results are bit-identical across policies (asserted per sweep)"
    )
    return "\n".join(lines)


def movement_bench(
    benchmarks=DEFAULT_BENCHMARKS,
    gpu: str = "GTX 1660 Super",
    iterations: int = 4,
    scale_index: int = 0,
    execute: bool = True,
    render: bool = False,
) -> list[MovementCell]:
    """The ``movement-bench`` experiment entry point."""
    cells = sweep_movement_policies(
        benchmarks,
        gpu=gpu,
        iterations=iterations,
        scale_index=scale_index,
        execute=execute,
    )
    if render:
        print(render_movement_table(cells))
    return cells
