"""The ``serve-bench --cluster`` experiment: multi-node serving.

The cluster-level counterpart of :mod:`repro.harness.serving`: the same
tenants and Poisson arrival process, but requests are admitted once
globally and placed across N nodes (each a full fleet with its own
topology) over a priced host-to-host interconnect.  The benchmark runs
the whole scenario ``runs`` times (request ids reset between runs) and
asserts the :meth:`~repro.cluster.ClusterReport.fingerprint` is
bit-identical across them — replay determinism is an output of the
benchmark, not a separate test — then writes the headline numbers to
``BENCH_cluster.json`` (the CI ``cluster-smoke`` artifact).
"""

from __future__ import annotations

import json

import numpy as np

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ClusterReport,
    parse_cluster_spec,
)
from repro.faults import FaultPlan
from repro.multigpu.scheduler import DevicePlacementPolicy
from repro.obs.export import write_chrome_trace
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionPolicy
from repro.serve.request import execute_serial, reset_request_ids
from repro.serve.service import ServeConfig
from repro.serve.workloads import traffic_mix_graphs

#: default Chrome-trace artifact path when ``--trace`` is given bare
DEFAULT_TRACE_PATH = "TRACE_cluster.json"


def _coerce(value, enum_cls):
    if isinstance(value, enum_cls):
        return value
    for member in enum_cls:
        if member.value == value or member.name.lower() == str(value).lower():
            return member
    raise ValueError(
        f"unknown {enum_cls.__name__} {value!r}; choose from"
        f" {[m.value for m in enum_cls]}"
    )


def cluster_report_summary(report: ClusterReport) -> dict:
    """The headline numbers of one cluster run as JSON-ready data."""
    m = report.metrics
    link = report.config.interconnect
    return {
        "nodes": report.nodes,
        "policy": report.config.policy.value,
        "interconnect": link if isinstance(link, str) else link.name,
        "requests": m.completed,
        "tenants": m.tenants,
        "makespan_s": m.makespan,
        "throughput_rps": m.throughput_rps,
        "latency_ms": {
            "p50": m.latency.p50 * 1e3,
            "p95": m.latency.p95 * 1e3,
            "p99": m.latency.p99 * 1e3,
            "worst": m.latency.worst * 1e3,
        },
        "shed": m.shed,
        "timed_out": m.timed_out,
        "failed": m.failed,
        "terminal": m.terminal,
        "network": {
            "ops": report.counters.get("cluster.net_ops", 0),
            "bytes": report.counters.get("cluster.net_bytes", 0),
            "stage_bytes": report.counters.get(
                "cluster.net_stage_bytes", 0
            ),
            "readback_bytes": report.counters.get(
                "cluster.net_readback_bytes", 0
            ),
            "retries": report.counters.get("cluster.net_retries", 0),
        },
        "placements": report.counters.get("cluster.placements", 0),
        "replacements": report.counters.get("cluster.replacements", 0),
        "node_faults_injected": report.counters.get(
            "cluster.node_faults_injected", 0
        ),
        "per_node": {
            str(index): {
                "requests": len(node_report.results),
                "completed": node_report.metrics.completed,
                "shed": node_report.metrics.shed,
                "failed": node_report.metrics.failed,
                "batches": node_report.metrics.batches,
                "capture_hits": node_report.metrics.capture_hits,
            }
            for index, node_report in sorted(report.per_node.items())
        },
        "fingerprint": report.fingerprint(),
        "counters": dict(report.counters),
    }


def cluster_bench(
    cluster: "str | list[list[int]]" = "2,1|2",
    tenants: int = 4,
    requests: int = 100,
    policy: str = "spread",
    interconnect: str = "ethernet-100g",
    admission: "AdmissionPolicy | str" = AdmissionPolicy.FAIR_SHARE,
    placement: "DevicePlacementPolicy | str" = (
        DevicePlacementPolicy.LEAST_LOADED
    ),
    gpu: str = "GTX 1660 Super",
    seed: int = 7,
    mean_interarrival_us: float = 120.0,
    traffic: str = "uniform",
    faults: "str | FaultPlan | None" = None,
    fault_seed: int | None = None,
    deadline_us: float | None = None,
    runs: int = 2,
    validate: bool = False,
    render: bool = False,
    bench_out: str | None = None,
    trace: bool = False,
    trace_out: str | None = None,
) -> ClusterReport:
    """Run one cluster benchmark (``runs`` replays) and return the last
    report.

    ``cluster`` is a ``|``-separated per-node topology spec
    (``"2,1|2"`` = node0 with slots of 2 and 1 GPUs, node1 with one
    2-GPU slot); ``policy`` picks the node scheduler (bin-pack /
    spread / affinity); ``interconnect`` prices cross-node staging and
    readback.  ``faults`` takes a node-scoped plan (DSL:
    ``"crash:node=1,at=2e-3"``); ``fault_seed`` generates one with
    :meth:`FaultPlan.random_nodes` over the arrival horizon.

    The scenario executes ``runs`` times with request ids reset between
    runs and the fingerprints are asserted equal — a nondeterministic
    cluster is a failed benchmark.  ``validate=True`` additionally
    checks every completed request against private serial execution.
    """
    if tenants <= 0 or requests <= 0:
        raise ValueError("tenants and requests must be positive")
    if runs <= 0:
        raise ValueError("runs must be positive")
    if faults is not None and fault_seed is not None:
        raise ValueError("pass either faults or fault_seed, not both")
    admission = _coerce(admission, AdmissionPolicy)
    placement = _coerce(placement, DevicePlacementPolicy)
    topologies = (
        parse_cluster_spec(cluster)
        if isinstance(cluster, str)
        else [list(t) for t in cluster]
    )
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if fault_seed is not None:
        faults = FaultPlan.random_nodes(
            fault_seed,
            nodes=len(topologies),
            horizon=requests * mean_interarrival_us * 1e-6,
        )

    tracer = Tracer() if (trace or trace_out) else None

    def one_run() -> tuple[ClusterReport, list]:
        reset_request_ids()
        c = Cluster(
            [list(t) for t in topologies],
            gpu=gpu,
            config=ClusterConfig(
                policy=policy,
                interconnect=interconnect,
                faults=faults,
                serve=ServeConfig(
                    admission=admission, placement=placement
                ),
            ),
            tracer=tracer,
        )
        for t in range(tenants):
            c.register_tenant(f"tenant{t}", priority=tenants - 1 - t)
        graphs = traffic_mix_graphs(requests, mix=traffic, seed=seed)
        rng = np.random.default_rng(seed)
        arrival = 0.0
        submitted = []
        for i, graph in enumerate(graphs):
            arrival += float(
                rng.exponential(mean_interarrival_us * 1e-6)
            )
            submitted.append(
                (
                    c.submit(
                        f"tenant{i % tenants}",
                        graph,
                        arrival_time=arrival,
                        deadline=(
                            arrival + deadline_us * 1e-6
                            if deadline_us is not None
                            else None
                        ),
                    ),
                    graph,
                )
            )
        return c.run(), submitted

    report, submitted = one_run()
    fingerprint = report.fingerprint()
    for _ in range(runs - 1):
        replay, _ = one_run()
        other = replay.fingerprint()
        if other != fingerprint:
            raise AssertionError(
                f"cluster run is not deterministic:"
                f" {fingerprint[:16]} != {other[:16]}"
            )
        report = replay

    # The no-hang invariant: every submission reached a terminal status.
    by_id = {r.request_id: r for r in report.results}
    missing = [rid for rid, _ in submitted if rid not in by_id]
    if missing:
        raise AssertionError(
            f"{len(missing)} request(s) never reached a terminal"
            f" status: {missing[:10]}"
        )

    if validate:
        for request_id, graph in submitted:
            result = by_id[request_id]
            if not result.ok:
                continue
            reference = execute_serial(graph, gpu=gpu)
            for name, expected in reference.items():
                got = result.outputs[name]
                if not np.array_equal(got, expected):
                    raise AssertionError(
                        f"request {request_id} ({graph.name}) output"
                        f" {name!r} diverges from serial execution"
                    )

    if bench_out:
        summary = cluster_report_summary(report)
        summary["traffic"] = traffic
        summary["runs"] = runs
        summary["deterministic"] = True
        summary["hung_requests"] = 0
        summary["validated"] = bool(validate)
        if faults is not None:
            summary["faults"] = {
                "plan": faults.describe(),
                "seed": faults.seed,
            }
        with open(bench_out, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")

    trace_path: str | None = None
    if tracer is not None:
        trace_path = trace_out or DEFAULT_TRACE_PATH
        write_chrome_trace(
            trace_path,
            tracer,
            results=report.results,
            other={
                "benchmark": "cluster-bench",
                "cluster": report.nodes,
                "policy": report.config.policy.value,
                "gpu": gpu,
                "traffic": traffic,
                "requests": report.metrics.completed,
            },
        )

    if render:
        print(report.render())
        print(
            f"\ndeterministic: {runs} run(s) fingerprint-equal"
            f" ({fingerprint[:16]}...)"
        )
        if validate:
            done = sum(1 for r in report.results if r.ok)
            print(
                f"validated: all {done} completed requests match"
                " serial single-runtime execution"
                + (
                    f" ({len(submitted) - done} shed/timed-out/failed)"
                    if done < len(submitted)
                    else ""
                )
            )
        if bench_out:
            print(f"wrote {bench_out}")
        if trace_path:
            print(f"wrote {trace_path}")
    return report


__all__ = ["cluster_bench", "cluster_report_summary"]
