"""Exception hierarchy for the repro runtime.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the engine cannot make progress but work remains queued.

    This typically indicates a cyclic wait between streams (an event that is
    waited upon but never recorded) and is always a scheduling bug.
    """


class OutOfMemoryError(SimulationError):
    """Raised when a device allocation exceeds the GPU's device memory."""


class InvalidStateError(SimulationError):
    """Raised on API misuse, e.g. submitting to a destroyed stream."""


class SignatureError(ReproError):
    """Raised when a NIDL kernel signature cannot be parsed or does not
    match the arguments supplied at launch time."""


class LaunchError(ReproError):
    """Raised when a kernel launch is malformed (bad grid/block geometry,
    wrong argument count or type)."""


class SchedulerError(ReproError):
    """Raised when the DAG scheduler reaches an inconsistent state."""


class DataRaceError(SchedulerError):
    """Raised by the race detector when two unordered operations conflict
    on the same array.  A correct scheduler never triggers this."""


class GraphError(ReproError):
    """Raised on CUDA-Graphs-API misuse (cycles, launching a non-instantiated
    graph, capturing on a busy stream, ...)."""


class PolyglotError(ReproError):
    """Raised when a polyglot DSL expression cannot be evaluated."""


class ConfigError(ReproError, ValueError):
    """Raised when a :class:`~repro.core.policies.SchedulerConfig` (or a
    session built from one) is inconsistent — e.g. a non-positive GPU
    count, a malformed fleet/cluster topology spec, or serving-only
    knobs on a plain compute session.

    Also a :class:`ValueError`: config mistakes are value mistakes, and
    callers that guarded spec parsing with ``except ValueError`` keep
    working as parse sites migrate to this type."""


class FaultError(ReproError):
    """Base class of the fault-management hierarchy (:mod:`repro.faults`).

    Raised (or carried on a terminal :class:`~repro.serve.request.
    GraphResult` via ``raise_for_status``) when a request could not be
    completed because of an injected or simulated infrastructure fault,
    as opposed to a programming error in the graph itself.
    """


class SlotFailedError(FaultError):
    """Raised when a fleet slot crashed (or suffered a transient
    transfer fault) while a request was in flight and every retry was
    exhausted."""


class RequestTimeoutError(FaultError):
    """Raised for a request whose deadline passed before its results
    were readable (either it never started in time, or it finished too
    late)."""


class AdmissionShedError(FaultError):
    """Raised for a request shed by graceful degradation: fleet capacity
    fell below the admission watermark (or to zero with no restart
    pending) and the request was dropped instead of deadlocking the
    queue."""
