"""Small statistics helpers used throughout the evaluation harness."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's speedup aggregation).

    Raises
    ------
    ValueError
        On empty input or non-positive values (a speedup is > 0 by
        construction; zero would indicate a measurement bug).
    """
    items = list(values)
    if not items:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def median(values: Iterable[float]) -> float:
    """Median (the paper reports median execution times)."""
    items = sorted(values)
    if not items:
        raise ValueError("median of empty sequence")
    mid = len(items) // 2
    if len(items) % 2:
        return items[mid]
    return 0.5 * (items[mid - 1] + items[mid])


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved, guarding division by zero."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved
