"""Measurement machinery for the evaluation section.

* :mod:`repro.metrics.overlap` — the CT/TC/CC/TOT overlap fractions of
  section V-F (Figs. 10 and 11);
* :mod:`repro.metrics.hardware` — device-memory/L2 throughput, IPC and
  GFLOPS aggregated from kernel cost profiles (Fig. 12, the nvprof/ncu
  substitute);
* :mod:`repro.metrics.contention_free` — the contention-free execution
  bound of section V-E (Fig. 9);
* :mod:`repro.metrics.stats` — geomean/median helpers;
* :mod:`repro.metrics.service` — serving-layer indicators: latency
  percentiles (p50/p95/p99), throughput and fleet utilization.
"""

from repro.metrics.overlap import OverlapMetrics, compute_overlaps
from repro.metrics.hardware import HardwareMetrics, compute_hardware_metrics
from repro.metrics.contention_free import contention_free_time
from repro.metrics.service import (
    LatencyStats,
    ServiceMetrics,
    busy_seconds,
    compute_service_metrics,
    percentile,
)
from repro.metrics.stats import geomean, median

__all__ = [
    "OverlapMetrics",
    "compute_overlaps",
    "HardwareMetrics",
    "compute_hardware_metrics",
    "contention_free_time",
    "LatencyStats",
    "ServiceMetrics",
    "busy_seconds",
    "compute_service_metrics",
    "percentile",
    "geomean",
    "median",
]
