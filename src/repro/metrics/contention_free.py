"""Contention-free execution bound (section V-E, Fig. 9).

The paper estimates the theoretical peak of each benchmark "by looking
at dependencies between kernels and measuring their execution time with
serial scheduling so that each kernel has full access to the GPU
resources": the bound is the critical path through the dependency DAG
where every kernel runs at its uncontended (serial) speed, every input
transfer moves at full PCIe bandwidth, and unlimited concurrency is
free.  Comparing the parallel scheduler's measured time against this
bound quantifies how much performance space-sharing contention costs
(~30-40 % for most benchmarks; B&S, whose ten chains hammer the same
FP64 units and PCIe link, only reaches 15-20 % of its bound).
"""

from __future__ import annotations

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.gpusim.contention import ContentionModel
from repro.gpusim.ops import KernelOp
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.kernels.kernel import KernelLaunch, normalize_dim
from repro.kernels.signature import parse_signature
from repro.memory.array import AccessKind, DeviceArray
from repro.workloads.base import Benchmark


def _refreshed_arrays(
    benchmark: Benchmark, placeholders: dict[str, DeviceArray]
) -> tuple[set[str], set[str]]:
    """Arrays the host writes at iteration 0 and at steady state."""
    written: set[str] = set()

    def hook(array: DeviceArray, kind: AccessKind, touched: int) -> None:
        if kind.writes:
            written.add(array.name)

    for arr in placeholders.values():
        arr.set_access_hook(hook)
    benchmark.refresh(placeholders, 0)
    first = set(written)
    written.clear()
    benchmark.refresh(placeholders, 1)
    steady = set(written)
    for arr in placeholders.values():
        arr.set_access_hook(None)
    return first, steady


def _critical_path(
    benchmark: Benchmark,
    spec: GPUSpec,
    placeholders: dict[str, DeviceArray],
    stale_inputs: set[str],
) -> float:
    """Critical-path time of one iteration with the given inputs stale."""
    model = ContentionModel(spec)
    kernels = {k.name: k for k in benchmark.kernel_specs()}
    sig_access = {
        name: [p.access for p in parse_signature(k.signature) if p.is_pointer]
        for name, k in kernels.items()
    }
    specs = benchmark.array_specs()
    pcie = spec.pcie_bandwidth_gbs * 1e9

    dag = ComputationDAG()
    finish: dict[int, float] = {}
    pending_transfer = set(stale_inputs)
    makespan = 0.0
    for inv in benchmark.invocations():
        array_names = [a for a in inv.args if isinstance(a, str)]
        accesses = list(
            zip(
                (placeholders[n] for n in array_names),
                sig_access[inv.kernel],
            )
        )
        element = ComputationalElement(accesses, label=inv.kernel)
        parents = dag.add(element)

        kspec = kernels[inv.kernel]
        launch = KernelLaunch(
            kernel=None,  # type: ignore[arg-type]  # cost models ignore it
            grid=normalize_dim(inv.grid),
            block=normalize_dim(inv.block),
            args=tuple(inv.args),
            array_args=tuple(accesses),
            scalar_args=tuple(
                a for a in inv.args if not isinstance(a, str)
            ),
        )
        resources = kspec.cost.resources(launch)
        duration = model.kernel_duration(
            KernelOp(label=inv.kernel, resources=resources)
        )

        transfer = 0.0
        for name, access in zip(array_names, sig_access[inv.kernel]):
            if access.reads and name in pending_transfer:
                pending_transfer.discard(name)
                transfer += specs[name].nbytes / pcie

        start = max(
            (finish[p.element_id] for p in parents), default=0.0
        )
        end = start + transfer + duration
        finish[element.element_id] = end
        makespan = max(makespan, end)
    return makespan


def contention_free_time(
    benchmark: Benchmark, gpu: str | GPUSpec
) -> float:
    """Lower bound on the benchmark's total execution time on ``gpu``.

    First iteration pays every input upload; later iterations only the
    host-refreshed inputs.  Iterations serialize (the host consumes each
    result before refreshing the next batch).
    """
    spec = gpu_by_name(gpu) if isinstance(gpu, str) else gpu
    placeholders = {
        name: DeviceArray(
            aspec.shape, dtype=aspec.dtype, name=name, materialize=False
        )
        for name, aspec in benchmark.array_specs().items()
    }
    first_writes, steady_writes = _refreshed_arrays(benchmark, placeholders)
    first = _critical_path(benchmark, spec, placeholders, first_writes)
    if benchmark.iterations <= 1:
        return first
    steady = _critical_path(benchmark, spec, placeholders, steady_writes)
    return first + (benchmark.iterations - 1) * steady


def contention_free_ratio(
    benchmark: Benchmark, gpu: str | GPUSpec, measured: float
) -> float:
    """Fig. 9's y-value: bound / measured (1.0 = no contention loss)."""
    if measured <= 0:
        return 0.0
    return contention_free_time(benchmark, gpu) / measured
