"""Hardware-utilization metrics (section V-F, Fig. 12).

The paper collects per-kernel counters with nvprof/ncu in separate runs
and combines them with the uninstrumented timeline, noting that "the
amount of bytes read/written and the total number of instructions
executed by each kernel mostly depends on the kernel itself and is not
significantly impacted by space-sharing".  We do the same thing with the
kernel cost profiles: the per-kernel quantities come from the roofline
profiles (our counter source), and dividing by the measured makespan
yields device-level throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.specs import GPUSpec
from repro.gpusim.timeline import Timeline


@dataclass(frozen=True)
class HardwareMetrics:
    """Fig. 12's four per-benchmark quantities."""

    dram_throughput_gbs: float
    l2_throughput_gbs: float
    ipc: float
    gflops: float

    #: raw aggregates, for tests and further analysis
    total_dram_bytes: float = 0.0
    total_l2_bytes: float = 0.0
    total_instructions: float = 0.0
    total_flops: float = 0.0
    busy_time: float = 0.0


def compute_hardware_metrics(
    timeline: Timeline, spec: GPUSpec
) -> HardwareMetrics:
    """Aggregate kernel counters over the *kernel-busy* time.

    Throughputs divide the (schedule-invariant) counter totals by the
    union of kernel execution intervals, i.e. the time the SMs were
    actually occupied.  This matches the paper's Fig. 12 semantics:
    space-sharing raises utilization only when kernels *co-run* — VEC,
    whose kernels never overlap, shows no memory-throughput increase
    even though its wall-clock speedup is large.

    IPC is reported per-SM (instructions / (busy-time * clock * SMs)),
    matching the low absolute values of Fig. 12; GFLOPS counts single
    and double precision together ("GFLOPS32/64").
    """
    from repro.gpusim.timeline import intervals_measure

    busy = intervals_measure(
        (r.start, r.end) for r in timeline.kernels()
    )
    dram = l2 = instr = flops = fault_stall = 0.0
    fault_bw = spec.pagefault_bandwidth_gbs * 1e9
    for rec in timeline.kernels():
        res = rec.meta.get("resources")
        if res is None:
            continue
        dram += res.dram_bytes
        l2 += res.l2_bytes
        instr += res.instructions
        flops += res.flops
        if res.fault_bytes > 0 and fault_bw > 0:
            fault_stall += res.fault_bytes / fault_bw
    # The paper collects counters in separate, data-resident runs; our
    # equivalent is to exclude page-fault stall time from the busy time
    # (a fault-stalled SM is not "utilized" in the counter sense).
    busy = max(busy - fault_stall, 0.0)
    if busy <= 0:
        return HardwareMetrics(0.0, 0.0, 0.0, 0.0)
    cycles = busy * spec.clock_ghz * 1e9 * spec.sm_count
    return HardwareMetrics(
        dram_throughput_gbs=dram / busy / 1e9,
        l2_throughput_gbs=l2 / busy / 1e9,
        ipc=instr / cycles,
        gflops=flops / busy / 1e9,
        total_dram_bytes=dram,
        total_l2_bytes=l2,
        total_instructions=instr,
        total_flops=flops,
        busy_time=busy,
    )
