"""Transfer/computation overlap metrics (section V-F).

The paper defines four overlap measures over the execution timeline:

* **CT** — computation w.r.t. transfer: percentage of GPU kernel
  computation time that overlaps with any data transfer;
* **TC** — transfer w.r.t. computation: percentage of data-transfer time
  that overlaps with any kernel computation;
* **CC** — percentage of GPU computation overlapped with *other* GPU
  computation;
* **TOT** — any type of overlap, counting each overlapped second once
  ("we consider the union of the overlap intervals").

All are fractions in [0, 1]; Fig. 11 reports them as percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.timeline import (
    Timeline,
    TimelineRecord,
    intersect_two,
    intervals_measure,
    merge_intervals,
)


@dataclass(frozen=True)
class OverlapMetrics:
    """The four overlap fractions of Fig. 11."""

    ct: float
    tc: float
    cc: float
    tot: float

    def as_percentages(self) -> dict[str, float]:
        return {
            "CT": 100.0 * self.ct,
            "TC": 100.0 * self.tc,
            "CC": 100.0 * self.cc,
            "TOT": 100.0 * self.tot,
        }


def _spans(records: list[TimelineRecord]) -> list[tuple[float, float]]:
    return [(r.start, r.end) for r in records if r.duration > 0]


def _overlapped_fraction(
    subjects: list[TimelineRecord],
    others_union: list[tuple[float, float]],
) -> float:
    """Fraction of the subjects' total time covered by ``others_union``."""
    total = sum(r.duration for r in subjects)
    if total <= 0:
        return 0.0
    covered = 0.0
    for r in subjects:
        covered += intervals_measure(
            intersect_two([(r.start, r.end)], others_union)
        )
    return covered / total


def compute_overlaps(timeline: Timeline) -> OverlapMetrics:
    """Compute CT/TC/CC/TOT for one execution timeline."""
    kernels = [r for r in timeline.kernels() if r.duration > 0]
    transfers = [r for r in timeline.transfers() if r.duration > 0]

    transfer_union = merge_intervals(_spans(transfers))
    kernel_union = merge_intervals(_spans(kernels))

    ct = _overlapped_fraction(kernels, transfer_union)
    tc = _overlapped_fraction(transfers, kernel_union)

    # CC: for each kernel, the part covered by the union of the OTHER
    # kernels.
    total_kernel = sum(r.duration for r in kernels)
    cc_covered = 0.0
    if total_kernel > 0:
        for i, r in enumerate(kernels):
            others = merge_intervals(
                _spans(kernels[:i] + kernels[i + 1 :])
            )
            cc_covered += intervals_measure(
                intersect_two([(r.start, r.end)], others)
            )
        cc = cc_covered / total_kernel
    else:
        cc = 0.0

    # TOT: fraction of all busy time (kernels + transfers) overlapped
    # with anything else, union-counted.
    everything = kernels + transfers
    total_busy = sum(r.duration for r in everything)
    if total_busy > 0:
        tot_covered = 0.0
        for i, r in enumerate(everything):
            others = merge_intervals(
                _spans(everything[:i] + everything[i + 1 :])
            )
            tot_covered += intervals_measure(
                intersect_two([(r.start, r.end)], others)
            )
        tot = tot_covered / total_busy
    else:
        tot = 0.0

    return OverlapMetrics(ct=ct, tc=tc, cc=cc, tot=tot)
