"""Service-level metrics for the multi-tenant serving layer.

The paper's evaluation reports per-program makespans; a serving system
is judged on *distributions*: request latency percentiles (p50/p95/p99),
sustained throughput, and how busy the fleet actually was.  This module
computes those from the per-request results and per-device timelines the
:class:`repro.serve.service.SchedulerService` produces.

All times are virtual (simulated) seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.gpusim.timeline import IntervalKind, Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.request import GraphResult


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Raises
    ------
    ValueError
        On empty input or ``q`` outside [0, 100].
    """
    items = sorted(values)
    if not items:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    if len(items) == 1:
        return items[0]
    pos = (q / 100.0) * (len(items) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return items[lo]
    frac = pos - lo
    return items[lo] * (1.0 - frac) + items[hi] * frac


def busy_seconds(
    timeline: Timeline, *, include_transfers: bool = True
) -> float:
    """Measure of the union of the timeline's busy intervals.

    Overlapping kernels/transfers count once (this is *occupancy*, not
    work): the device was busy whenever at least one operation ran.
    """
    intervals = sorted(
        (r.start, r.end)
        for r in timeline
        if r.kind is IntervalKind.KERNEL
        or (include_transfers and r.kind.is_transfer)
    )
    total = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for start, end in intervals:
        if cur_start is None or start > cur_end:
            if cur_start is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_start is not None:
        total += cur_end - cur_start
    return total


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencyStats":
        items = list(values)
        if not items:
            raise ValueError("no latencies to summarize")
        return cls(
            count=len(items),
            mean=sum(items) / len(items),
            p50=percentile(items, 50),
            p95=percentile(items, 95),
            p99=percentile(items, 99),
            worst=max(items),
        )

    @classmethod
    def empty(cls) -> "LatencyStats":
        """The all-zero distribution — what a faulted run that completed
        nothing reports (raising would make a total-outage run
        unreportable)."""
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, worst=0.0)


@dataclass(frozen=True)
class ServiceMetrics:
    """Aggregate service-level indicators of one serving run."""

    completed: int
    tenants: int
    makespan: float                      # first arrival -> last completion
    throughput_rps: float                # completed / makespan
    latency: LatencyStats
    queue_wait: LatencyStats
    per_tenant: dict[str, LatencyStats] = field(default_factory=dict)
    device_busy: tuple[float, ...] = ()
    device_utilization: tuple[float, ...] = ()
    batches: int = 0
    batched_requests: int = 0            # requests that shared a batch
    capture_hits: int = 0
    capture_misses: int = 0
    #: non-completed terminal statuses (fault injection / degradation);
    #: all zero on a fault-free run
    shed: int = 0
    timed_out: int = 0
    failed: int = 0

    @property
    def terminal(self) -> int:
        """Every request that reached *some* terminal status — equals
        the submission count when the serving loop never hangs."""
        return self.completed + self.shed + self.timed_out + self.failed

    @property
    def mean_utilization(self) -> float:
        if not self.device_utilization:
            return 0.0
        return sum(self.device_utilization) / len(self.device_utilization)


def compute_service_metrics(
    results: Sequence["GraphResult"],
    device_timelines: Sequence[Timeline],
    *,
    batches: int = 0,
    capture_hits: int = 0,
    capture_misses: int = 0,
) -> ServiceMetrics:
    """Summarize a serving run from its results and device timelines.

    Latency/queue-wait distributions cover *completed* requests only —
    a shed or timed-out request has no meaningful service latency.  The
    makespan spans every terminal result, completed or not, so a run
    that shed its tail still reports how long the fleet was engaged.
    """
    if not results:
        raise ValueError("no results to summarize")
    done = [r for r in results if r.status.ok]
    first_arrival = min(r.arrival_time for r in results)
    last_finish = max(r.finish_time for r in results)
    makespan = max(last_finish - first_arrival, 1e-12)

    by_tenant: dict[str, list[float]] = {}
    for r in done:
        by_tenant.setdefault(r.tenant, []).append(r.latency)

    def stats(values: list[float]) -> LatencyStats:
        return (
            LatencyStats.from_values(values)
            if values
            else LatencyStats.empty()
        )

    from repro.serve.request import RequestStatus

    busy = tuple(busy_seconds(t) for t in device_timelines)
    return ServiceMetrics(
        completed=len(done),
        tenants=len({r.tenant for r in results}),
        makespan=makespan,
        throughput_rps=len(done) / makespan,
        latency=stats([r.latency for r in done]),
        queue_wait=stats([r.queue_wait for r in done]),
        per_tenant={
            t: LatencyStats.from_values(v) for t, v in by_tenant.items()
        },
        device_busy=busy,
        device_utilization=tuple(b / makespan for b in busy),
        batches=batches,
        batched_requests=sum(1 for r in done if r.batch_size > 1),
        capture_hits=capture_hits,
        capture_misses=capture_misses,
        shed=sum(1 for r in results if r.status is RequestStatus.SHED),
        timed_out=sum(
            1 for r in results if r.status is RequestStatus.TIMEOUT
        ),
        failed=sum(
            1 for r in results if r.status is RequestStatus.FAILED
        ),
    )
