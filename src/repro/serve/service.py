"""The multi-tenant scheduler service.

:class:`SchedulerService` is the jump from the paper's single-program
scheduler to shared-infrastructure dispatch: many logical tenants submit
:class:`~repro.serve.request.TaskGraph` s; an admission-control queue
(FIFO / priority / fair-share) decides *who* goes next; the
:class:`~repro.serve.fleet.GpuFleet` placement policy decides *where*
— which fleet *slot*, each a long-lived (possibly multi-GPU)
:class:`~repro.session.Session` — and the slot's own in-slot
:class:`~repro.core.policies.DevicePlacementPolicy` decides which of
its GPUs runs each kernel, so a single admitted graph spans devices.
Each admitted graph executes with full per-request isolation — its own
execution context (DAG, stream manager, history) on the slot's session,
via :meth:`~repro.session.Session.renew_context`-style re-entrant
context use.  Admission and placement may live directly in the
fleet-wide :class:`~repro.core.policies.SchedulerConfig` (the
unified-session spelling) or be set on :class:`ServeConfig` (the legacy
spelling); explicit ``ServeConfig`` values win.  ``ServeConfig``
placement picks slots; the scheduler config's ``placement`` governs the
in-slot device decision (defaulting to the paper's MIN_TRANSFER).

Two optimizations ride the dispatch path:

* **Batching** — admitted requests whose graphs share a topology key and
  arrived within one virtual-time window coalesce into a batch.  The
  batch pays the dispatch overhead once and its members' kernels are in
  flight *simultaneously*, so the device space-shares across tenants
  (unbatched requests on one device serialize at batch boundaries).
* **Capture cache** — the first request of a topology runs the full
  dependency-inference path while a replayable multi-stream plan is
  recorded through :mod:`repro.graphs.capture`; later requests replay the
  plan, skipping per-launch dependency computation (the CUDA-Graphs
  amortization, shared across tenants).  Plans are keyed per
  (graph topology, slot shape): a multi-GPU slot's replay assigns plan
  streams round-robin over its devices, so slots of different shapes
  derive separate plans.

Correctness invariant, enforced by the integration tests: every
request's numerical outputs are identical to executing its graph alone
on a private serial runtime
(:func:`repro.serve.request.execute_serial`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.policies import (
    AdmissionPolicy,
    DevicePlacementPolicy,
    SchedulerConfig,
)
from repro.gpusim.ops import KernelOp
from repro.core.context import (
    annotate_kernel_access_sets,
    kernel_history_recorder,
)
from repro.core.history import KernelExecutionRecord
from repro.gpusim.timeline import Timeline
from repro.kernels.kernel import KernelLaunch, normalize_dim
from repro.kernels.profile import combine_resources
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine
from repro.metrics.service import ServiceMetrics, compute_service_metrics
from repro.multigpu.array import MultiGpuArray
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.serve.admission import make_queue
from repro.serve.capture import CaptureCache, CapturePlan
from repro.serve.fleet import FleetSlot, GpuFleet, parse_fleet_spec
from repro.serve.request import GraphRequest, GraphResult, TaskGraph
from repro.serve.tenant import TenantState


@dataclass
class ServeConfig:
    """Configuration of one :class:`SchedulerService` instance.

    ``admission`` and ``placement`` left as None inherit from the
    per-device ``scheduler`` config (falling back to FIFO admission and
    least-loaded placement, each path's historical default), so a single
    :class:`~repro.core.policies.SchedulerConfig` can describe a whole
    serving deployment.
    """

    admission: AdmissionPolicy | None = None
    placement: DevicePlacementPolicy | None = None
    #: coalesce topology-identical requests whose arrivals lie within
    #: this many virtual seconds of the batch head (0 disables batching)
    batch_window: float = 500e-6
    batch_max: int = 8
    capture_cache: bool = True
    #: host-side cost of one dispatch decision (charged once per batch)
    dispatch_overhead_us: float = 5.0
    #: flat host-side cost of replaying a cached capture plan (the
    #: ``cudaGraphLaunch`` analogue, vs. per-kernel scheduling overhead
    #: on the inference path)
    replay_overhead_us: float = 3.0
    #: per-device runtime/scheduler configuration
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        self.scheduler.validate(serving=True)
        if self.admission is None:
            self.admission = self.scheduler.admission or AdmissionPolicy.FIFO
        if self.placement is None:
            self.placement = self.scheduler.resolve_placement(serving=True)

    @property
    def batching(self) -> bool:
        return self.batch_window > 0 and self.batch_max > 1


@dataclass
class ServiceReport:
    """Everything a serving run produced."""

    results: list[GraphResult]
    metrics: ServiceMetrics
    tenants: dict[str, TenantState]
    fleet: GpuFleet
    config: ServeConfig
    #: flat namespaced counter roll-up across the whole run: ``serve.*``
    #: (admission, batching, capture cache), ``engine.*`` (summed over
    #: slots) and ``coherence.*`` (summed over every retired request)
    counters: dict = field(default_factory=dict)

    def render(self) -> str:
        """ASCII summary (the ``serve-bench`` CLI output)."""
        m = self.metrics
        lines = [
            "Scheduler service report",
            "========================",
            f"admission={self.config.admission.value}"
            f"  placement={self.fleet.policy.value}"
            f"  fleet={self.fleet.describe()}",
            f"requests={m.completed}  tenants={m.tenants}"
            f"  makespan={m.makespan * 1e3:.3f} ms"
            f"  throughput={m.throughput_rps:.1f} req/s",
            f"latency ms: p50={m.latency.p50 * 1e3:.3f}"
            f"  p95={m.latency.p95 * 1e3:.3f}"
            f"  p99={m.latency.p99 * 1e3:.3f}"
            f"  worst={m.latency.worst * 1e3:.3f}",
            f"queue wait ms: p50={m.queue_wait.p50 * 1e3:.3f}"
            f"  p95={m.queue_wait.p95 * 1e3:.3f}",
            f"batches={m.batches}  batched requests={m.batched_requests}"
            f"  capture hits/misses={m.capture_hits}/{m.capture_misses}",
            "fleet utilization: "
            + "  ".join(
                f"gpu{i}={u * 100:.1f}%"
                for i, u in enumerate(m.device_utilization)
            )
            + f"  (mean {m.mean_utilization * 100:.1f}%)",
            "",
            f"{'tenant':<12} {'done':>5} {'p50 ms':>9} {'p95 ms':>9}"
            f" {'p99 ms':>9} {'worst ms':>9}",
        ]
        for name in sorted(m.per_tenant):
            s = m.per_tenant[name]
            lines.append(
                f"{name:<12} {s.count:>5} {s.p50 * 1e3:>9.3f}"
                f" {s.p95 * 1e3:>9.3f} {s.p99 * 1e3:>9.3f}"
                f" {s.worst * 1e3:>9.3f}"
            )
        return "\n".join(lines)


class _Submission:
    """In-flight bookkeeping for one request inside a batch."""

    def __init__(
        self,
        request: GraphRequest,
        slot: FleetSlot,
        start_time: float,
        batch_id: int,
        batch_size: int,
        replayed: bool,
    ) -> None:
        self.request = request
        self.slot = slot
        self.start_time = start_time
        self.batch_id = batch_id
        self.batch_size = batch_size
        self.replayed = replayed
        self.arrays: dict[str, DeviceArray | MultiGpuArray] = {}
        self.context = None            # context path only
        self.coherence: CoherenceEngine | None = None   # replay path
        self.history: list[KernelExecutionRecord] = []  # replay path


class SchedulerService:
    """Accepts task-graph submissions from many tenants and serves them
    from a simulated GPU fleet."""

    def __init__(
        self,
        fleet: GpuFleet | None = None,
        *,
        fleet_size: int = 2,
        fleet_topology: str | list[int] | None = None,
        gpu: str = "GTX 1660 Super",
        config: ServeConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        explicit_tracer = tracer
        if tracer is None:
            # Adopt an externally-built fleet's tracer so slot engines
            # and service spans land in the same trace.
            tracer = (
                fleet.tracer if fleet is not None else current_tracer()
            )
        self.tracer = tracer
        if fleet is None:
            if fleet_topology is not None:
                topology = (
                    parse_fleet_spec(fleet_topology)
                    if isinstance(fleet_topology, str)
                    else list(fleet_topology)
                )
            else:
                topology = [1] * fleet_size
            fleet = GpuFleet(
                topology,
                gpu=gpu,
                policy=self.config.placement,
                config=self.config.scheduler,
                tracer=explicit_tracer,
            )
        self.fleet = fleet
        self.queue = make_queue(self.config.admission)
        self.cache = CaptureCache(enabled=self.config.capture_cache)
        self.tenants: dict[str, TenantState] = {}
        self.results: list[GraphResult] = []
        self._batch_ids = itertools.count(1)
        self._batches = 0
        #: service-level counters (admission, batching, queue depth)
        self.counters = CounterRegistry()
        self._c_admitted = self.counters.counter("serve.admitted")
        self._c_batches = self.counters.counter("serve.batches")
        self._c_batched_requests = self.counters.counter(
            "serve.batched_requests"
        )

    # -- tenant/submission API -------------------------------------------

    def register_tenant(
        self, name: str, priority: int = 0
    ) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(name=name, priority=priority)
            self.tenants[name] = state
        else:
            state.priority = priority
        return state

    def submit(
        self,
        tenant: str,
        graph: TaskGraph,
        priority: int | None = None,
        arrival_time: float = 0.0,
    ) -> int:
        """Queue one task graph for ``tenant``; returns the request id.

        ``arrival_time`` is the virtual service time of the submission
        (workload generators space these; 0 means "present at start").
        """
        state = self.tenants.get(tenant) or self.register_tenant(tenant)
        request = GraphRequest(
            tenant=tenant,
            graph=graph,
            priority=state.priority if priority is None else priority,
            arrival_time=arrival_time,
        )
        state.submitted += 1
        self.queue.push(request)
        self._c_admitted.value += 1
        self.counters.set_max("serve.queue_depth_peak", len(self.queue))
        if self.tracer.enabled:
            self.tracer.instant(
                "admit",
                track="service",
                vt=arrival_time,
                tenant=tenant,
                request=request.request_id,
                priority=request.priority,
                queue_depth=len(self.queue),
            )
        return request.request_id

    # -- the serving loop ---------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain the admission queue, then summarize the run."""
        while len(self.queue):
            head = self.queue.pop()
            assert head is not None
            batch = [head]
            if self.config.batching:
                key = head.topology_key
                window = self.config.batch_window
                batch.extend(
                    self.queue.take_matching(
                        lambda r: (
                            r.topology_key == key
                            and abs(r.arrival_time - head.arrival_time)
                            <= window
                        ),
                        self.config.batch_max - 1,
                    )
                )
            slot = self.fleet.choose(head)
            self._execute_batch(slot, batch)
        return self.report()

    def report(self) -> ServiceReport:
        if not self.results:
            raise ValueError("no completed requests to report on")
        self._build_tenant_timelines()
        metrics = compute_service_metrics(
            self.results,
            [s.engine.timeline for s in self.fleet.slots],
            batches=self._batches,
            capture_hits=self.cache.hits,
            capture_misses=self.cache.misses,
        )
        return ServiceReport(
            results=list(self.results),
            metrics=metrics,
            tenants=dict(self.tenants),
            fleet=self.fleet,
            config=self.config,
            counters=self.counters_snapshot(),
        )

    def counters_snapshot(self) -> dict:
        """Service-wide flat counter roll-up: ``serve.*`` (admission,
        batching, capture cache) plus ``engine.*`` and ``coherence.*``
        summed across every slot and retired request."""
        merged = CounterRegistry()
        merged.merge(self.counters)
        merged.merge(self.cache.counters)
        for slot in self.fleet.slots:
            engine_counters = getattr(slot.engine, "counters", None)
            if engine_counters is not None:
                merged.merge(engine_counters)
            # slot.counters already absorbed every retired request's
            # coherence engine (context and replay paths alike) at
            # reclaim time — the live session context is one of those
            # retirees, so it is NOT merged again here.
            merged.merge(slot.counters)
        return merged.snapshot()

    # -- batch execution ---------------------------------------------------

    def _execute_batch(
        self, slot: FleetSlot, batch: list[GraphRequest]
    ) -> None:
        engine = slot.engine
        batch_id = next(self._batch_ids)
        self._batches += 1
        self._c_batches.value += 1
        if len(batch) > 1:
            self._c_batched_requests.value += len(batch)
        span = (
            self.tracer.span(
                "batch",
                track="service",
                clock=engine._clock,
                slot=slot.index,
                size=len(batch),
                batch_id=batch_id,
                tenant=batch[0].tenant,
                graph=batch[0].graph.name,
            )
            if self.tracer.enabled
            else None
        )

        # The slot idles until the last coalesced arrival: a batch
        # cannot causally start before its members exist (the classic
        # batching latency trade).
        start_floor = max(r.arrival_time for r in batch)
        if engine.clock < start_floor:
            engine.charge_host_time(start_floor - engine.clock)
        engine.charge_host_time(self.config.dispatch_overhead_us * 1e-6)

        plan = self.cache.lookup(batch[0].graph, slot.shape_key)
        # Counter granularity is per *request*: every batch member rides
        # the head's lookup outcome.  (A disabled cache counts nothing.)
        if plan is not None:
            self.cache.hits += len(batch) - 1
        elif self.cache.enabled:
            self.cache.misses += len(batch) - 1
        submissions = [
            self._submit_replay(
                slot, r, plan, batch_id, len(batch), member=i
            )
            if plan is not None
            else self._submit_context(slot, r, batch_id, len(batch))
            for i, r in enumerate(batch)
        ]
        if plan is not None:
            # Replay bypasses the per-array CPU hooks, so drain before
            # the manual readbacks below.
            engine.sync_all()
        for sub in submissions:
            self._finalize(sub)

        engine.sync_all()
        self._reclaim_batch(slot, submissions)
        slot.warm_topologies.add(batch[0].topology_key)
        if span is not None:
            span.annotate(replayed=plan is not None)
            span.close()

    def _reclaim_batch(
        self, slot: FleetSlot, submissions: list[_Submission]
    ) -> None:
        """Absorb histories, free arrays and reclaim per-request
        streams (context stream managers and coherence-owned coalescing
        streams alike), so a long-lived slot engine stays bounded."""
        for sub in submissions:
            tenant = self.tenants[sub.request.tenant]
            if sub.context is not None:
                for name in sub.context.history.kernels():
                    tenant.absorb_history(
                        sub.context.history.executions(name)
                    )
                slot.engine.reclaim_streams(
                    sub.context.reclaimable_streams()
                )
                # The per-request coherence engine retires with its
                # context: fold its movement counters into the slot's
                # roll-up so the service report can explain the run.
                slot.counters.merge(sub.context.coherence.counters)
            else:
                tenant.absorb_history(sub.history)
                assert sub.coherence is not None
                slot.engine.reclaim_streams(sub.coherence.take_owned_streams())
                slot.counters.merge(sub.coherence.counters)
        slot.session.free_arrays()
        slot.requests_served += len(submissions)

    # -- inference (context) path ---------------------------------------------

    def _submit_context(
        self,
        slot: FleetSlot,
        request: GraphRequest,
        batch_id: int,
        batch_size: int,
    ) -> _Submission:
        """Serve one request through a fresh execution context: the full
        dependency-inference scheduling path of the paper (single-GPU
        slots) or the multi-GPU device-placement scheduler (slots with
        ``gpus > 1`` — the graph transparently spans the slot)."""
        rt = slot.session
        graph = request.graph
        ctx = rt.renew_context(
            op_tags={
                "tenant": request.tenant,
                "request": request.request_id,
            },
            drain=False,
        )
        sub = _Submission(
            request, slot, slot.engine.clock, batch_id, batch_size,
            replayed=False,
        )
        sub.context = ctx
        for name, decl in graph.arrays.items():
            sub.arrays[name] = rt.array(
                decl.shape, dtype=decl.dtype, name=name
            )
        for name, decl in graph.arrays.items():
            if decl.init is not None:
                sub.arrays[name].copy_from_host(decl.init)
        for launch in graph.launches:
            kernel = slot.kernel_for(graph.kernel_by_name(launch.kernel))
            args = tuple(
                sub.arrays[a] if isinstance(a, str) else a
                for a in launch.args
            )
            kernel(launch.grid, launch.block)(*args)
            slot.kernels_launched += 1
        return sub

    # -- capture-replay path -------------------------------------------------

    def _submit_replay(
        self,
        slot: FleetSlot,
        request: GraphRequest,
        plan: CapturePlan,
        batch_id: int,
        batch_size: int,
        member: int = 0,
    ) -> _Submission:
        """Serve one request by replaying the cached capture plan:
        pre-assigned streams, pre-computed event waits, no per-launch
        dependency inference.  On a multi-GPU slot, plan stream ``i``
        runs on slot device ``i % gpus`` (the deterministic mapping the
        plan was keyed under), and data movement flows through the
        coherence engine's multi-GPU location-set overlay."""
        rt = slot.session
        engine = slot.engine
        graph = request.graph
        tags = {
            "tenant": request.tenant,
            "request": request.request_id,
            "replay": True,
        }
        sub = _Submission(
            request, slot, engine.clock, batch_id, batch_size,
            replayed=True,
        )
        # Replay bypasses execution contexts, so the request gets its
        # own coherence engine: shared-input migration hazards, movement
        # policy, cross-acquire coalescing windows and state transitions
        # all live there (no manual coherence management on this path).
        coherence = CoherenceEngine(
            engine,
            policy=self.config.scheduler.resolve_movement(rt.spec),
            op_tags=tags,
            window=self.config.scheduler.movement_window,
        )
        sub.coherence = coherence
        # Each batch member replays on its own stream slice so members
        # space-share instead of serializing behind shared FIFOs.
        streams = slot.replay_streams(plan.stream_count, member=member)
        engine.charge_host_time(self.config.replay_overhead_us * 1e-6)

        multi = slot.gpus > 1
        for name, decl in graph.arrays.items():
            arr: DeviceArray | MultiGpuArray
            if multi:
                arr = MultiGpuArray(
                    decl.shape,
                    dtype=decl.dtype,
                    devices=rt.devices,
                    name=name,
                )
            else:
                arr = DeviceArray(
                    decl.shape, dtype=decl.dtype, device=rt.device,
                    name=name,
                )
            rt.adopt_array(arr)  # freed with the batch
            if decl.init is not None:
                # No hook installed: copy_from_host applies the host
                # -write transition itself; declare it to the engine so
                # planned overlays and pending migrations reset too.
                arr.copy_from_host(decl.init)
                if multi:
                    coherence.cpu_write_full_multi(arr, mark=False)
                else:
                    coherence.cpu_access(arr, AccessKind.WRITE, arr.nbytes)
            sub.arrays[name] = arr

        events: dict[int, object] = {}
        for launch_decl, step in zip(graph.launches, plan.steps):
            stream = streams[step.stream]
            for w in step.waits:
                engine.wait_event(stream, events[w])

            kernel = slot.kernel_for(
                graph.kernel_by_name(launch_decl.kernel)
            )
            bound = kernel.bind_args(
                tuple(
                    sub.arrays[a] if isinstance(a, str) else a
                    for a in launch_decl.args
                )
            )
            launch = KernelLaunch(
                kernel=bound.kernel,
                grid=normalize_dim(launch_decl.grid),
                block=normalize_dim(launch_decl.block),
                args=bound.args,
                array_args=bound.array_args,
                scalar_args=bound.scalar_args,
            )
            accesses = list(launch.array_args)
            device_index = step.stream % slot.gpus
            if multi:
                acq = coherence.acquire_multi(
                    accesses, stream, device_index, label=launch.label
                )
            else:
                acq = coherence.acquire(
                    accesses, stream, label=launch.label
                )
            resources = launch.resources()
            if acq.fault_bytes > 0:
                resources = combine_resources(resources, acq.fault_bytes)
            op = KernelOp(
                label=launch.label,
                resources=resources,
                compute_fn=launch.execute,
            )
            if multi:
                # Race-detector tokens are per (array, device) copy,
                # exactly like the multi-GPU execution context.
                op.info["reads"] = frozenset(
                    (id(a), device_index) for a, k in accesses if k.reads
                )
                op.info["writes"] = frozenset(
                    (id(a), device_index) for a, k in accesses if k.writes
                )
                op.info["array_names"] = {
                    (id(a), device_index): f"{a.name}@gpu{device_index}"
                    for a, _ in accesses
                }
                op.info["device"] = device_index
            else:
                annotate_kernel_access_sets(op, launch)
            op.info.update(tags)
            op.on_complete.append(
                kernel_history_recorder(launch, sub.history.append)
            )
            if multi:
                coherence.release_multi(acq, accesses, device_index, op)
            else:
                coherence.release(acq, op)
            engine.submit(stream, op)
            slot.kernels_launched += 1
            finish_event = None
            if step.record_event or acq.fault_replicas:
                finish_event = engine.record_event(
                    stream, label=f"replay:{launch.label}"
                )
                coherence.register_fault_ordering(acq, finish_event)
            if step.record_event:
                events[step.index] = finish_event
        return sub

    # -- completion -----------------------------------------------------------

    def _finalize(self, sub: _Submission) -> None:
        """Read the request's outputs (synchronizing just enough) and
        record its result."""
        engine = sub.slot.engine
        graph = sub.request.graph
        outputs: dict[str, np.ndarray] = {}
        for name in graph.outputs:
            arr = sub.arrays[name]
            if sub.context is not None:
                # Attached array: the CPU-access hook syncs producers
                # precisely and charges the readback migration.
                outputs[name] = arr.to_numpy()
            else:
                # Replay path (engine already drained): declare the
                # readback to the request's coherence engine, mirroring
                # the hook's behaviour on the context path.
                assert sub.coherence is not None
                if isinstance(arr, MultiGpuArray):
                    sub.coherence.cpu_read_multi(
                        arr, engine.default_stream
                    )
                else:
                    sub.coherence.cpu_access(
                        arr, AccessKind.READ, arr.nbytes,
                        stream=engine.default_stream,
                    )
                outputs[name] = (
                    arr.kernel_view.copy()
                    if arr.materialized
                    else np.zeros(arr.shape, dtype=arr.dtype)
                )
        finish = engine.clock
        result = GraphResult(
            request_id=sub.request.request_id,
            tenant=sub.request.tenant,
            graph_name=graph.name,
            outputs=outputs,
            arrival_time=sub.request.arrival_time,
            start_time=sub.start_time,
            finish_time=finish,
            device_index=sub.slot.index,
            batch_id=sub.batch_id,
            batch_size=sub.batch_size,
            replayed=sub.replayed,
        )
        self.results.append(result)
        self.tenants[sub.request.tenant].record_completion(result.latency)

    # -- per-tenant timeline isolation ------------------------------------------

    def _build_tenant_timelines(self) -> None:
        """Rebuild each tenant's private timeline from the tenant tags
        stamped on every op (idempotent)."""
        per_tenant: dict[str, list] = {t: [] for t in self.tenants}
        for slot in self.fleet.slots:
            for record in slot.engine.timeline:
                name = record.meta.get("tenant")
                if name in per_tenant:
                    per_tenant[name].append(record)
        for name, records in per_tenant.items():
            tenant = self.tenants[name]
            tenant.timeline = Timeline()
            tenant.absorb_timeline(records)
