"""The multi-tenant scheduler service.

:class:`SchedulerService` is the jump from the paper's single-program
scheduler to shared-infrastructure dispatch: many logical tenants submit
:class:`~repro.serve.request.TaskGraph` s; an admission-control queue
(FIFO / priority / fair-share) decides *who* goes next; the
:class:`~repro.serve.fleet.GpuFleet` placement policy decides *where*
— which fleet *slot*, each a long-lived (possibly multi-GPU)
:class:`~repro.session.Session` — and the slot's own in-slot
:class:`~repro.core.policies.DevicePlacementPolicy` decides which of
its GPUs runs each kernel, so a single admitted graph spans devices.
Each admitted graph executes with full per-request isolation — its own
execution context (DAG, stream manager, history) on the slot's session,
via :meth:`~repro.session.Session.renew_context`-style re-entrant
context use.  Admission and placement may live directly in the
fleet-wide :class:`~repro.core.policies.SchedulerConfig` (the
unified-session spelling) or be set on :class:`ServeConfig` (the legacy
spelling); explicit ``ServeConfig`` values win.  ``ServeConfig``
placement picks slots; the scheduler config's ``placement`` governs the
in-slot device decision (defaulting to the paper's MIN_TRANSFER).

Two optimizations ride the dispatch path:

* **Batching** — admitted requests whose graphs share a topology key and
  arrived within one virtual-time window coalesce into a batch.  The
  batch pays the dispatch overhead once and its members' kernels are in
  flight *simultaneously*, so the device space-shares across tenants
  (unbatched requests on one device serialize at batch boundaries).
* **Capture cache** — the first request of a topology runs the full
  dependency-inference path while a replayable multi-stream plan is
  recorded through :mod:`repro.graphs.capture`; later requests replay the
  plan, skipping per-launch dependency computation (the CUDA-Graphs
  amortization, shared across tenants).  Plans are keyed per
  (graph topology, slot shape): a multi-GPU slot's replay assigns plan
  streams round-robin over its devices, so slots of different shapes
  derive separate plans.

Correctness invariant, enforced by the integration tests: every
request's numerical outputs are identical to executing its graph alone
on a private serial runtime
(:func:`repro.serve.request.execute_serial`).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.policies import (
    AdmissionPolicy,
    DevicePlacementPolicy,
    SchedulerConfig,
)
from repro.gpusim.timeline import Timeline
from repro.faults import FaultKind, FaultPlan, Transition
from repro.metrics.service import ServiceMetrics, compute_service_metrics
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.parallel.strategy import (
    STRATEGIES,
    ExecutionStrategy,
    make_strategy,
)
from repro.parallel.work import SlotOutcome, SlotWork, Submission
from repro.serve.admission import make_queue
from repro.serve.capture import CaptureCache
from repro.serve.fleet import FleetSlot, GpuFleet, parse_fleet_spec
from repro.serve.request import (
    GraphRequest,
    GraphResult,
    RequestStatus,
    TaskGraph,
)
from repro.serve.tenant import TenantState

#: backwards-compatible alias — the in-flight bookkeeping class moved
#: to :mod:`repro.parallel.work` so worker processes can import it
_Submission = Submission


@dataclass
class ServeConfig:
    """Configuration of one :class:`SchedulerService` instance.

    ``admission`` and ``placement`` left as None inherit from the
    per-device ``scheduler`` config (falling back to FIFO admission and
    least-loaded placement, each path's historical default), so a single
    :class:`~repro.core.policies.SchedulerConfig` can describe a whole
    serving deployment.  The fault-management knobs (``max_retries``,
    ``retry_backoff_us``, ``shed_watermark``) inherit the same way.
    """

    admission: AdmissionPolicy | None = None
    placement: DevicePlacementPolicy | None = None
    #: coalesce topology-identical requests whose arrivals lie within
    #: this many virtual seconds of the batch head (0 disables batching)
    batch_window: float = 500e-6
    batch_max: int = 8
    capture_cache: bool = True
    #: host-side cost of one dispatch decision (charged once per batch)
    dispatch_overhead_us: float = 5.0
    #: flat host-side cost of replaying a cached capture plan (the
    #: ``cudaGraphLaunch`` analogue, vs. per-kernel scheduling overhead
    #: on the inference path)
    replay_overhead_us: float = 3.0
    #: seeded deterministic fault-injection plan (or its DSL string form,
    #: parsed at construction); None serves fault-free
    faults: FaultPlan | str | None = None
    #: dispatch attempts after the first before a crashed/faulted
    #: request turns terminally FAILED (None inherits; default 3)
    max_retries: int | None = None
    #: base of the exponential re-dispatch backoff, in virtual
    #: microseconds: retry *k* waits ``backoff * 2**(k-1)`` after the
    #: failure (None inherits; default 200)
    retry_backoff_us: float | None = None
    #: healthy-capacity fraction below which graceful degradation sheds
    #: lowest-priority queued work (None inherits; default 0.5; 0
    #: disables shedding entirely)
    shed_watermark: float | None = None
    #: queue depth kept per admitting GPU while below the watermark —
    #: everything beyond it is shed
    shed_queue_per_gpu: int = 4
    #: LEAST_LOADED prices backlog per GPU (see
    #: :class:`~repro.serve.fleet.GpuFleet`); only consulted when the
    #: service builds its own fleet
    width_normalized: bool = True
    #: execution strategy for per-slot simulation between placement
    #: rounds: ``sequential`` (golden reference), ``threading`` or
    #: ``process`` — all three produce bit-identical reports (see
    #: :mod:`repro.parallel`)
    parallel: str = "sequential"
    #: worker count for the threading/process strategies (None: one
    #: per slot, capped at the machine's cores)
    workers: int | None = None
    #: per-device runtime/scheduler configuration
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        self.scheduler.validate(serving=True)
        if self.parallel not in STRATEGIES:
            raise ValueError(
                f"unknown execution strategy {self.parallel!r};"
                f" expected one of {STRATEGIES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.admission is None:
            self.admission = self.scheduler.admission or AdmissionPolicy.FIFO
        if self.placement is None:
            self.placement = self.scheduler.resolve_placement(serving=True)
        if isinstance(self.faults, str):
            self.faults = FaultPlan.parse(self.faults)
        if self.max_retries is None:
            self.max_retries = (
                3 if self.scheduler.max_retries is None
                else self.scheduler.max_retries
            )
        if self.retry_backoff_us is None:
            self.retry_backoff_us = (
                200.0 if self.scheduler.retry_backoff_us is None
                else self.scheduler.retry_backoff_us
            )
        if self.shed_watermark is None:
            self.shed_watermark = (
                0.5 if self.scheduler.shed_watermark is None
                else self.scheduler.shed_watermark
            )

    @property
    def batching(self) -> bool:
        return self.batch_window > 0 and self.batch_max > 1


def fingerprint_results(
    results: list[GraphResult], counters: dict
) -> str:
    """A deterministic digest of everything a serving run produced.

    Covers every result's identity, terminal status, exact virtual
    times (via ``float.hex`` — no formatting loss), placement (device,
    batch and — since the cluster layer — node), output array bytes and
    the full counter snapshot: two runs fingerprint equal iff their
    reports are bit-identical.  This is the canonical determinism
    check: serve-bench summaries carry it, the chaos grid and the
    cluster harness compare it between replays.
    """
    h = hashlib.sha256()
    for r in sorted(results, key=lambda r: r.request_id):
        h.update(
            "|".join(
                (
                    str(r.request_id),
                    r.tenant,
                    r.graph_name,
                    r.status.value,
                    str(r.attempts),
                    str(r.device_index),
                    str(r.node_index),
                    str(r.batch_id),
                    str(r.batch_size),
                    str(r.replayed),
                    r.arrival_time.hex(),
                    r.start_time.hex(),
                    r.finish_time.hex(),
                )
            ).encode()
        )
        for name in sorted(r.outputs):
            h.update(name.encode())
            h.update(r.outputs[name].tobytes())
    for name, value in sorted(counters.items()):
        h.update(f"{name}={value}".encode())
    return h.hexdigest()


@dataclass
class ServiceReport:
    """Everything a serving run produced."""

    results: list[GraphResult]
    metrics: ServiceMetrics
    tenants: dict[str, TenantState]
    fleet: GpuFleet
    config: ServeConfig
    #: flat namespaced counter roll-up across the whole run: ``serve.*``
    #: (admission, batching, capture cache), ``engine.*`` (summed over
    #: slots) and ``coherence.*`` (summed over every retired request)
    counters: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Canonical replay-determinism digest of this report (see
        :func:`fingerprint_results`)."""
        return fingerprint_results(self.results, self.counters)

    def render(self) -> str:
        """ASCII summary (the ``serve-bench`` CLI output)."""
        m = self.metrics
        lines = [
            "Scheduler service report",
            "========================",
            f"admission={self.config.admission.value}"
            f"  placement={self.fleet.policy.value}"
            f"  fleet={self.fleet.describe()}",
            f"requests={m.completed}  tenants={m.tenants}"
            f"  makespan={m.makespan * 1e3:.3f} ms"
            f"  throughput={m.throughput_rps:.1f} req/s",
        ]
        if m.shed or m.timed_out or m.failed:
            lines.append(
                f"degraded: shed={m.shed}  timed-out={m.timed_out}"
                f"  failed={m.failed}"
                f"  (injected={self.counters.get('faults.injected', 0)}"
                f"  retries={self.counters.get('faults.retries', 0)}"
                f"  replacements="
                f"{self.counters.get('faults.replacements', 0)})"
            )
        lines += [
            f"latency ms: p50={m.latency.p50 * 1e3:.3f}"
            f"  p95={m.latency.p95 * 1e3:.3f}"
            f"  p99={m.latency.p99 * 1e3:.3f}"
            f"  worst={m.latency.worst * 1e3:.3f}",
            f"queue wait ms: p50={m.queue_wait.p50 * 1e3:.3f}"
            f"  p95={m.queue_wait.p95 * 1e3:.3f}",
            f"batches={m.batches}  batched requests={m.batched_requests}"
            f"  capture hits/misses={m.capture_hits}/{m.capture_misses}",
            "fleet utilization: "
            + "  ".join(
                f"gpu{i}={u * 100:.1f}%"
                for i, u in enumerate(m.device_utilization)
            )
            + f"  (mean {m.mean_utilization * 100:.1f}%)",
            "",
            f"{'tenant':<12} {'done':>5} {'p50 ms':>9} {'p95 ms':>9}"
            f" {'p99 ms':>9} {'worst ms':>9}",
        ]
        for name in sorted(m.per_tenant):
            s = m.per_tenant[name]
            lines.append(
                f"{name:<12} {s.count:>5} {s.p50 * 1e3:>9.3f}"
                f" {s.p95 * 1e3:>9.3f} {s.p99 * 1e3:>9.3f}"
                f" {s.worst * 1e3:>9.3f}"
            )
        return "\n".join(lines)


class SchedulerService:
    """Accepts task-graph submissions from many tenants and serves them
    from a simulated GPU fleet."""

    def __init__(
        self,
        fleet: GpuFleet | None = None,
        *,
        fleet_size: int = 2,
        fleet_topology: str | list[int] | None = None,
        gpu: str = "GTX 1660 Super",
        config: ServeConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        explicit_tracer = tracer
        if tracer is None:
            # Adopt an externally-built fleet's tracer so slot engines
            # and service spans land in the same trace.
            tracer = (
                fleet.tracer if fleet is not None else current_tracer()
            )
        self.tracer = tracer
        if fleet is None:
            if fleet_topology is not None:
                topology = (
                    parse_fleet_spec(fleet_topology)
                    if isinstance(fleet_topology, str)
                    else list(fleet_topology)
                )
            else:
                topology = [1] * fleet_size
            fleet = GpuFleet(
                topology,
                gpu=gpu,
                policy=self.config.placement,
                config=self.config.scheduler,
                tracer=explicit_tracer,
                width_normalized=self.config.width_normalized,
            )
        self.fleet = fleet
        if self.config.faults is not None:
            self.fleet.attach_faults(self.config.faults)
        self.queue = make_queue(self.config.admission)
        self.cache = CaptureCache(enabled=self.config.capture_cache)
        self.tenants: dict[str, TenantState] = {}
        self.results: list[GraphResult] = []
        #: service-owned request-id allocation: concurrent services
        #: (and forked workers) never interleave ids (the module-level
        #: counter in :mod:`repro.serve.request` remains only for
        #: directly-constructed requests)
        self._request_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._batches = 0
        #: execution strategy, built lazily on first drain (services
        #: constructed for introspection never pay for worker pools)
        self._strategy: ExecutionStrategy | None = None
        #: monotone virtual-time cursor of the serving loop's dispatch
        #: decisions; drives fault-lifecycle advancement
        self._now = 0.0
        #: fault specs already counted as injected (a DRAIN makes two
        #: transitions, a RESTART makes two more — each spec counts once)
        self._injected: set[int] = set()
        #: service-level counters (admission, batching, queue depth)
        self.counters = CounterRegistry()
        self._c_admitted = self.counters.counter("serve.admitted")
        self._c_batches = self.counters.counter("serve.batches")
        self._c_batched_requests = self.counters.counter(
            "serve.batched_requests"
        )
        # faults.* counters exist only when a plan is attached, so a
        # fault-free run's counter snapshot stays bit-identical to the
        # pre-fault-subsystem output; with a plan they are registered
        # eagerly so every chaos snapshot carries all four keys.
        if self.config.faults is not None:
            for name in (
                "faults.injected",
                "faults.retries",
                "faults.shed",
                "faults.replacements",
            ):
                self.counters.counter(name)

    # -- tenant/submission API -------------------------------------------

    def register_tenant(
        self, name: str, priority: int = 0
    ) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(name=name, priority=priority)
            self.tenants[name] = state
        else:
            state.priority = priority
        return state

    def submit(
        self,
        tenant: str,
        graph: TaskGraph,
        priority: int | None = None,
        arrival_time: float = 0.0,
        deadline: float | None = None,
    ) -> int:
        """Queue one task graph for ``tenant``; returns the request id.

        ``arrival_time`` is the virtual service time of the submission
        (workload generators space these; 0 means "present at start").
        ``deadline`` is an absolute virtual time by which the results
        must be readable, else the request terminates TIMEOUT.
        """
        if deadline is not None and deadline < arrival_time:
            raise ValueError(
                f"deadline {deadline:g} precedes arrival {arrival_time:g}"
            )
        state = self.tenants.get(tenant) or self.register_tenant(tenant)
        request = GraphRequest(
            request_id=next(self._request_ids),
            tenant=tenant,
            graph=graph,
            priority=state.priority if priority is None else priority,
            arrival_time=arrival_time,
            deadline=deadline,
        )
        return self.enqueue(request)

    def enqueue(self, request: GraphRequest) -> int:
        """Queue an already-built :class:`GraphRequest`.

        The cluster layer admits once globally and hands whole request
        objects to the chosen node's service — attempts, backoff floor
        and deadline travel with the request across nodes.
        """
        state = self.tenants.get(request.tenant)
        if state is None:
            state = self.register_tenant(
                request.tenant, priority=request.priority
            )
        state.submitted += 1
        self.queue.push(request)
        self._c_admitted.value += 1
        self.counters.set_max("serve.queue_depth_peak", len(self.queue))
        if self.tracer.enabled:
            self.tracer.instant(
                "admit",
                track="service",
                vt=request.arrival_time,
                tenant=request.tenant,
                request=request.request_id,
                priority=request.priority,
                queue_depth=len(self.queue),
            )
        return request.request_id

    # -- the serving loop ---------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain the admission queue, then summarize the run (worker
        pools are released either way)."""
        try:
            self.drain()
            return self.report()
        finally:
            self.close()

    def close(self) -> None:
        """Release execution-strategy resources (worker processes /
        thread pools); idempotent.  :meth:`run` calls this itself; use
        it directly after driving :meth:`drain` by hand."""
        if self._strategy is not None:
            self._strategy.close()
            self._strategy = None

    def _ensure_strategy(self) -> ExecutionStrategy:
        if self._strategy is None:
            self._strategy = make_strategy(
                self.config.parallel,
                self.fleet.slots,
                self.config,
                workers=self.config.workers,
                trace=self.tracer.enabled,
            )
        return self._strategy

    def drain(self) -> None:
        """Serve until the admission queue is empty (no report built —
        the cluster layer drains each node per placement round and
        reports once at the end).

        The loop is a fork/join over *placement rounds*: plan a round
        of per-slot batches sequentially (admission, placement, fault
        draws — the inherently ordered decisions), execute every
        planned batch under the configured strategy (each slot's
        simulation is independent between rounds), then merge the
        outcomes in slot-id order so every strategy reports
        bit-identically.

        Every popped request reaches a terminal status — COMPLETED,
        SHED, TIMEOUT or FAILED — even under total fleet loss: when no
        slot admits and none ever will again, the remaining queue is
        shed instead of deadlocking; when a restart is pending, the
        loop fast-forwards virtual time to it.
        """
        strategy = self._ensure_strategy()
        while len(self.queue):
            works = self._plan_round()
            if not works:
                # The plan phase terminally resolved everything it
                # popped (blackout shed / timed-out heads).
                break
            outcomes = strategy.execute(works)
            self._merge_round(works, outcomes)

    def _plan_round(self) -> list[SlotWork]:
        """Pop and place one round of batches: at most one batch per
        slot, every head dispatched at the same virtual instant.

        A round ends when the queue is empty, the next head's dispatch
        floor lies in the future, or no *idle* admitting slot remains
        (busy slots' clocks only advance at execution, so placing onto
        them mid-round would read stale availability).
        """
        works: list[SlotWork] = []
        busy: set[int] = set()
        while True:
            head = self.queue.peek()
            if head is None:
                break
            if works:
                if head.dispatch_floor > self._now:
                    break
                now = self._now
            else:
                now = max(self._now, head.dispatch_floor)
            self._advance_lifecycles(now, busy=busy)
            eligible = [
                s
                for s in self.fleet.admitting_slots()
                if s.index not in busy
            ]
            if not eligible:
                if busy:
                    # Slots may revive (or free up) once the in-flight
                    # round joins; revisit this head next round.
                    break
                revive = self._earliest_revival(now)
                if revive is None:
                    # Permanent total outage: graceful degradation
                    # sheds the head and everything still queued.
                    popped = self.queue.pop()
                    assert popped is head
                    self._record_dropped(head, now, RequestStatus.SHED)
                    while len(self.queue):
                        r = self.queue.pop()
                        assert r is not None
                        self._record_dropped(r, now, RequestStatus.SHED)
                    break
                # Total-but-transient outage: fast-forward to the first
                # restart completion instead of busy-deadlocking.
                now = max(now, revive)
                self._advance_lifecycles(now)
                eligible = self.fleet.admitting_slots()
                assert eligible, "revived slot must admit"
            self._now = now
            popped = self.queue.pop()
            assert popped is head
            self._shed_to_watermark(now)
            if head.deadline is not None and now > head.deadline:
                self._record_dropped(head, now, RequestStatus.TIMEOUT)
                continue
            batch = [head]
            if self.config.batching:
                key = head.topology_key
                window = self.config.batch_window
                batch.extend(
                    self.queue.take_matching(
                        lambda r: (
                            r.topology_key == key
                            and abs(r.arrival_time - head.arrival_time)
                            <= window
                            and r.not_before <= now
                            and (r.deadline is None or now <= r.deadline)
                        ),
                        self.config.batch_max - 1,
                    )
                )
            slot = self.fleet.choose(head, eligible)
            for r in batch:
                if r.last_slot is not None:
                    if r.last_slot != slot.index:
                        self.counters.counter(
                            "faults.replacements"
                        ).value += 1
                    r.last_slot = None
            works.append(self._plan_work(slot, batch))
            busy.add(slot.index)
        return works

    def _plan_work(
        self, slot: FleetSlot, batch: list[GraphRequest]
    ) -> SlotWork:
        """Pin every service-global decision for one batch into a
        self-contained work unit: batch ids, capture-cache outcome
        (derivation happens parent-side — workers never see the
        cache), and the dispatch-time fault draws (lifecycles are
        parent-owned state)."""
        batch_id = next(self._batch_ids)
        self._batches += 1
        self._c_batches.value += 1
        if len(batch) > 1:
            self._c_batched_requests.value += len(batch)
        plan = self.cache.lookup(batch[0].graph, slot.shape_key)
        # Counter granularity is per *request*: every batch member
        # rides the head's lookup outcome.  (A disabled cache counts
        # nothing.)
        if plan is not None:
            self.cache.hits += len(batch) - 1
        elif self.cache.enabled:
            self.cache.misses += len(batch) - 1
        faulted = self.config.faults is not None
        # Degradation factor and transfer-fault draw are pinned at
        # dispatch time; a mid-batch DEGRADE only affects later
        # batches.
        slowdown = slot.lifecycle.slowdown if faulted else 1.0
        transfer_fault = bool(
            faulted and slot.lifecycle.take_transfer_fault(self._now)
        )
        return SlotWork(
            slot_index=slot.index,
            batch=batch,
            plan=plan,
            batch_id=batch_id,
            slowdown=slowdown,
            transfer_fault=transfer_fault,
            clock_start=slot.clock,
        )

    def _merge_round(
        self, works: list[SlotWork], outcomes: list[SlotOutcome]
    ) -> None:
        """Join one executed round back into service state, in slot-id
        order (every batch in a round dispatched at the same virtual
        instant, so slot id is the deterministic tie-break) — results,
        retries, tenant histories, lifecycle advancement and traces
        merge identically whatever order the strategy finished in."""
        by_slot = {o.slot_index: o for o in outcomes}
        for work in sorted(works, key=lambda w: w.slot_index):
            outcome = by_slot[work.slot_index]
            slot = self.fleet.slots[work.slot_index]
            finish = outcome.finish
            if outcome.timeline_records is not None:
                # Process strategy: mirror the worker-side slot state
                # (records append in worker order, so the timeline's
                # incremental aggregates stay bit-identical).
                for rec in outcome.timeline_records:
                    slot.engine.timeline.add(rec)
                for name, value in outcome.engine_counters.items():
                    slot.engine.counters.set(name, value)
                for name, value in outcome.slot_counters.items():
                    slot.counters.set(name, value)
                slot.engine.clock = finish
                slot.kernels_launched = outcome.kernels_launched
            if outcome.trace_events:
                self.tracer.events.extend(outcome.trace_events)
            crashed = False
            if self.config.faults is not None:
                made = slot.lifecycle.advance(
                    max(finish, slot.lifecycle.now)
                )
                crashed = self._process_transitions(slot, made)
            for tenant, records in outcome.histories:
                self.tenants[tenant].absorb_history(records)
            if crashed or work.transfer_fault:
                # The batch's work is lost (crash) or its results never
                # arrived (transient transfer fault): the simulated
                # time it burned stays on the timeline, the outputs are
                # discarded and every member re-queues with backoff (or
                # fails).
                for r in work.batch:
                    self._retry_or_fail(r, slot, finish)
            else:
                requests = {r.request_id: r for r in work.batch}
                for request_id, outputs, start, read_clock in (
                    outcome.results
                ):
                    self._record_result(
                        requests[request_id],
                        outputs,
                        start,
                        read_clock,
                        slot=slot,
                        work=work,
                    )
                slot.requests_served += len(work.batch)
                slot.warm_topologies.add(work.batch[0].topology_key)
            if self.tracer.enabled:
                attrs: dict = {
                    "slot": slot.index,
                    "size": len(work.batch),
                    "batch_id": work.batch_id,
                    "tenant": work.batch[0].tenant,
                    "graph": work.batch[0].graph.name,
                    "replayed": work.plan is not None,
                }
                if crashed or work.transfer_fault:
                    attrs["crashed"] = crashed
                    attrs["transfer_fault"] = work.transfer_fault
                self.tracer.complete(
                    "batch",
                    track="service",
                    vt_start=work.clock_start,
                    vt_end=finish,
                    **attrs,
                )

    # -- fault machinery ---------------------------------------------------

    def _advance_lifecycles(
        self, now: float, busy: "set[int] | frozenset" = frozenset()
    ) -> None:
        """Advance every slot's health machine to ``max(now, clock)``
        — a slot that has simulated up to its own clock has experienced
        every event up to it.  Slots in ``busy`` (dispatched earlier in
        the round being planned) are skipped: they were already
        advanced to this round's instant when planned, and their
        post-batch events belong to the merge phase."""
        if self.config.faults is None:
            return
        for slot in self.fleet.slots:
            if slot.index in busy:
                continue
            made = slot.lifecycle.advance(max(now, slot.clock))
            self._process_transitions(slot, made)

    def _process_transitions(
        self, slot: FleetSlot, made: list[Transition]
    ) -> bool:
        """Count injections, emit tracer instants and cold-restart
        crashed slots; returns whether a CRASH was among them."""
        crashed = False
        for t in made:
            if id(t.spec) not in self._injected:
                self._injected.add(id(t.spec))
                self.counters.counter("faults.injected").value += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault",
                    track="service",
                    vt=t.time,
                    slot=slot.index,
                    kind=t.spec.kind.value,
                    before=t.before.value,
                    after=t.after.value,
                )
            if t.spec.kind is FaultKind.CRASH and t.before is not t.after:
                crashed = True
                # The slot's (simulated) host process died: built
                # kernels and MIN_TRANSFER warmth die with it.
                slot.cold_restart()
                if self._strategy is not None:
                    # Remote slot replicas (process strategy) mirror
                    # the restart before the slot's next work unit.
                    self._strategy.note_cold_restart(slot.index)
        return crashed

    def _earliest_revival(self, now: float) -> float | None:
        """Earliest virtual time any slot could admit again, or None."""
        times = [
            t
            for s in self.fleet.slots
            if (t := s.lifecycle.earliest_admit(now)) is not None
        ]
        return min(times) if times else None

    def _shed_to_watermark(self, now: float) -> None:
        """Graceful degradation: below the healthy-capacity watermark,
        keep only ``shed_queue_per_gpu`` queued requests per admitting
        GPU and shed the least-valuable excess."""
        watermark = self.config.shed_watermark
        if not watermark or self.config.faults is None:
            return
        admitting = self.fleet.admitting_gpus()
        if admitting / self.fleet.total_gpus >= watermark:
            return
        allowed = self.config.shed_queue_per_gpu * max(1, admitting)
        excess = len(self.queue) - allowed
        if excess <= 0:
            return
        for victim in self.queue.evict_lowest(excess):
            self._record_dropped(victim, now, RequestStatus.SHED)

    def _record_dropped(
        self, request: GraphRequest, now: float, status: RequestStatus
    ) -> None:
        """Terminal non-completed status for a request that never (or
        never successfully) ran: SHED / TIMEOUT / FAILED."""
        if status is RequestStatus.SHED:
            self.counters.counter("faults.shed").value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                status.value,
                track="service",
                vt=now,
                tenant=request.tenant,
                request=request.request_id,
            )
        self.results.append(
            GraphResult(
                request_id=request.request_id,
                tenant=request.tenant,
                graph_name=request.graph.name,
                outputs={},
                arrival_time=request.arrival_time,
                start_time=now,
                finish_time=now,
                device_index=-1,
                batch_id=0,
                batch_size=1,
                replayed=False,
                status=status,
                attempts=request.attempts,
            )
        )

    def _retry_or_fail(
        self, request: GraphRequest, slot: FleetSlot, finish: float
    ) -> None:
        """A dispatch was lost to a fault: re-queue with exponential
        backoff, or terminate FAILED once retries are exhausted."""
        request.attempts += 1
        request.last_slot = slot.index
        if request.attempts > self.config.max_retries:
            self._record_dropped(request, finish, RequestStatus.FAILED)
            return
        backoff = (
            self.config.retry_backoff_us
            * 1e-6
            * (2 ** (request.attempts - 1))
        )
        request.not_before = finish + backoff
        self.counters.counter("faults.retries").value += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "retry",
                track="service",
                vt=finish,
                tenant=request.tenant,
                request=request.request_id,
                attempt=request.attempts,
                not_before=request.not_before,
                slot=slot.index,
            )
        self.queue.push(request)

    def report(self) -> ServiceReport:
        if not self.results:
            raise ValueError("no completed requests to report on")
        self._build_tenant_timelines()
        metrics = compute_service_metrics(
            self.results,
            [s.engine.timeline for s in self.fleet.slots],
            batches=self._batches,
            capture_hits=self.cache.hits,
            capture_misses=self.cache.misses,
        )
        return ServiceReport(
            results=list(self.results),
            metrics=metrics,
            tenants=dict(self.tenants),
            fleet=self.fleet,
            config=self.config,
            counters=self.counters_snapshot(),
        )

    def counters_snapshot(self) -> dict:
        """Service-wide flat counter roll-up: ``serve.*`` (admission,
        batching, capture cache) plus ``engine.*`` and ``coherence.*``
        summed across every slot and retired request."""
        merged = CounterRegistry()
        merged.merge(self.counters)
        merged.merge(self.cache.counters)
        for slot in self.fleet.slots:
            engine_counters = getattr(slot.engine, "counters", None)
            if engine_counters is not None:
                merged.merge(engine_counters)
            # slot.counters already absorbed every retired request's
            # coherence engine (context and replay paths alike) at
            # reclaim time — the live session context is one of those
            # retirees, so it is NOT merged again here.
            merged.merge(slot.counters)
        return merged.snapshot()

    # -- completion -----------------------------------------------------------

    def _record_result(
        self,
        request: GraphRequest,
        outputs: dict[str, np.ndarray],
        start_time: float,
        finish: float,
        *,
        slot: FleetSlot,
        work: SlotWork,
    ) -> None:
        timed_out = (
            request.deadline is not None and finish > request.deadline
        )
        result = GraphResult(
            request_id=request.request_id,
            tenant=request.tenant,
            graph_name=request.graph.name,
            # A timed-out request's results were never delivered.
            outputs={} if timed_out else outputs,
            arrival_time=request.arrival_time,
            start_time=start_time,
            finish_time=finish,
            device_index=slot.index,
            batch_id=work.batch_id,
            batch_size=len(work.batch),
            replayed=work.plan is not None,
            status=(
                RequestStatus.TIMEOUT
                if timed_out
                else RequestStatus.COMPLETED
            ),
            attempts=request.attempts + 1,
        )
        self.results.append(result)
        if result.ok:
            self.tenants[request.tenant].record_completion(result.latency)

    # -- per-tenant timeline isolation ------------------------------------------

    def _build_tenant_timelines(self) -> None:
        """Rebuild each tenant's private timeline from the tenant tags
        stamped on every op (idempotent)."""
        per_tenant: dict[str, list] = {t: [] for t in self.tenants}
        for slot in self.fleet.slots:
            for record in slot.engine.timeline:
                name = record.meta.get("tenant")
                if name in per_tenant:
                    per_tenant[name].append(record)
        for name, records in per_tenant.items():
            tenant = self.tenants[name]
            tenant.timeline = Timeline()
            tenant.absorb_timeline(records)
