"""Multi-tenant GPU serving layer.

The paper's scheduler extracts parallelism from *one* host program's
computation DAG.  This package makes the jump to shared infrastructure:
a :class:`SchedulerService` accepts task-graph submissions from many
logical tenants, admission-controls them (FIFO / priority / fair-share),
and dispatches them onto a :class:`GpuFleet` — a pool of long-lived
:class:`~repro.session.Session` instances placed per the multi-GPU
policies (round-robin / min-transfer / least-loaded) — with
request batching, a reusable-capture cache and service-level metrics
(p50/p95/p99 latency, throughput, fleet utilization).

Quickstart::

    from repro.serve import SchedulerService, ServeConfig, AdmissionPolicy
    from repro.serve.workloads import mixed_workload_graphs

    svc = SchedulerService(
        fleet_size=2,
        config=ServeConfig(admission=AdmissionPolicy.FAIR_SHARE),
    )
    for i, graph in enumerate(mixed_workload_graphs(16)):
        svc.submit(f"tenant{i % 4}", graph)
    report = svc.run()
    print(report.render())
"""

from repro.core.policies import DevicePlacementPolicy
from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionQueue,
    FairShareQueue,
    FifoQueue,
    PriorityQueue,
    make_queue,
)
from repro.serve.capture import CaptureCache, CapturePlan, derive_plan
from repro.serve.fleet import FleetDevice, GpuFleet
from repro.serve.request import (
    ArrayDecl,
    GraphRequest,
    GraphResult,
    KernelDecl,
    LaunchDecl,
    TaskGraph,
    execute_serial,
)
from repro.serve.service import (
    SchedulerService,
    ServeConfig,
    ServiceReport,
)
from repro.serve.tenant import TenantState

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "ArrayDecl",
    "CaptureCache",
    "CapturePlan",
    "DevicePlacementPolicy",
    "FairShareQueue",
    "FifoQueue",
    "FleetDevice",
    "GpuFleet",
    "GraphRequest",
    "GraphResult",
    "KernelDecl",
    "LaunchDecl",
    "PriorityQueue",
    "SchedulerService",
    "ServeConfig",
    "ServiceReport",
    "TaskGraph",
    "TenantState",
    "derive_plan",
    "execute_serial",
    "make_queue",
]
