"""Multi-tenant GPU serving layer.

The paper's scheduler extracts parallelism from *one* host program's
computation DAG.  This package makes the jump to shared infrastructure:
a :class:`SchedulerService` accepts task-graph submissions from many
logical tenants, admission-controls them (FIFO / priority / fair-share),
and dispatches them onto a :class:`GpuFleet` — a *topology spec* of
serving slots (e.g. ``[2, 2, 1, 1]`` GPUs per slot), each a long-lived
multi- or single-GPU :class:`~repro.session.Session`, placed per the
shared policy vocabulary (round-robin / min-transfer / least-loaded at
the service level, composing with the in-slot device placement) — with
request batching, a per-(topology, slot-shape) capture cache and
service-level metrics (p50/p95/p99 latency, throughput, fleet
utilization).

Quickstart::

    from repro.serve import SchedulerService, ServeConfig, AdmissionPolicy
    from repro.serve.workloads import mixed_workload_graphs

    svc = SchedulerService(
        fleet_size=2,
        config=ServeConfig(admission=AdmissionPolicy.FAIR_SHARE),
    )
    for i, graph in enumerate(mixed_workload_graphs(16)):
        svc.submit(f"tenant{i % 4}", graph)
    report = svc.run()
    print(report.render())
"""

from repro.core.policies import DevicePlacementPolicy
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    SlotHealth,
)
from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionQueue,
    FairShareQueue,
    FifoQueue,
    PriorityQueue,
    make_queue,
)
from repro.serve.capture import CaptureCache, CapturePlan, derive_plan
from repro.serve.fleet import (
    FleetDevice,
    FleetSlot,
    GpuFleet,
    parse_fleet_spec,
)
from repro.serve.request import (
    ArrayDecl,
    GraphRequest,
    GraphResult,
    KernelDecl,
    LaunchDecl,
    RequestStatus,
    TaskGraph,
    execute_serial,
    reset_request_ids,
)
from repro.serve.service import (
    SchedulerService,
    ServeConfig,
    ServiceReport,
)
from repro.serve.tenant import TenantState

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "ArrayDecl",
    "CaptureCache",
    "CapturePlan",
    "DevicePlacementPolicy",
    "FairShareQueue",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FifoQueue",
    "FleetDevice",
    "FleetSlot",
    "GpuFleet",
    "parse_fleet_spec",
    "GraphRequest",
    "GraphResult",
    "KernelDecl",
    "LaunchDecl",
    "PriorityQueue",
    "RequestStatus",
    "SchedulerService",
    "ServeConfig",
    "ServiceReport",
    "SlotHealth",
    "TaskGraph",
    "TenantState",
    "derive_plan",
    "execute_serial",
    "make_queue",
    "reset_request_ids",
]
