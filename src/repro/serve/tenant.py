"""Per-tenant isolation state.

Each logical tenant of the serving layer owns:

* a **kernel history** of its own (the section IV-A heuristics substrate)
  — one tenant's block-size evidence never leaks into another's
  recommendations;
* a **timeline** holding only its own operations, reconstructed from the
  tenant tags the execution contexts stamp on every op (the shared
  per-device engine timelines interleave all tenants);
* admission/latency accounting used by fair-share and the service
  metrics.

The DAG needs no tenant-level object: every *request* executes in a
fresh execution context (see
:meth:`repro.session.Session.renew_context`), so DAG
isolation is per request — strictly stronger than per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.history import KernelExecutionRecord, KernelHistory
from repro.gpusim.timeline import Timeline, TimelineRecord


@dataclass
class TenantState:
    """Everything the service tracks about one tenant."""

    name: str
    #: default priority for submissions that do not set their own
    priority: int = 0
    submitted: int = 0
    completed: int = 0
    latencies: list[float] = field(default_factory=list)
    history: KernelHistory = field(default_factory=KernelHistory)
    timeline: Timeline = field(default_factory=Timeline)

    def record_completion(self, latency: float) -> None:
        self.completed += 1
        self.latencies.append(latency)

    def absorb_history(self, records: list[KernelExecutionRecord]) -> None:
        for record in records:
            self.history.record(record)

    def absorb_timeline(self, records: list[TimelineRecord]) -> None:
        for record in records:
            self.timeline.add(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TenantState {self.name} prio={self.priority}"
            f" done={self.completed}/{self.submitted}>"
        )
