"""Task-graph submissions: what a tenant hands the serving layer.

A :class:`TaskGraph` is a *declarative*, runtime-independent description
of one client computation: the arrays it allocates (with optional host
input data), the kernels it builds and the launches of its host program
in program order.  It is exactly the information a GrCUDA host program
conveys through the Fig. 4 API, reified as data so that the
:class:`~repro.serve.service.SchedulerService` can queue it, batch it,
price it and replay it — the per-request unit the serving layer
multiplexes over the fleet.

Dependency inference stays where it always was: when a request executes,
its launches flow through a (per-request) execution context which infers
the DAG from dependency sets, or through a cached capture plan derived
from the same analysis.  Per-tenant numerical results are therefore
identical to running the same graph alone on a private runtime.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.policies import ExecutionPolicy, SchedulerConfig
from repro.errors import (
    AdmissionShedError,
    RequestTimeoutError,
    SlotFailedError,
)
from repro.session import Session
from repro.gpusim.specs import GPUSpec
from repro.kernels.profile import CostModel
from repro.kernels.signature import parse_signature

_request_ids = itertools.count(1)


def reset_request_ids(start: int = 1) -> None:
    """Restart the module-level request-id sequence (compatibility
    shim).

    Id allocation is *instance-owned* now: every
    :class:`~repro.serve.service.SchedulerService` and
    :class:`~repro.cluster.Cluster` numbers its own submissions from 1,
    so concurrent services (and forked strategy workers) never
    interleave ids and replay-determinism needs no global reset.  This
    module-level counter only backs requests constructed *directly*
    (``GraphRequest(...)`` with no explicit ``request_id``); resetting
    it keeps such ad-hoc runs comparable, and existing callers keep
    working unchanged.
    """
    global _request_ids
    _request_ids = itertools.count(start)


class RequestStatus(enum.Enum):
    """Terminal status of one served request.

    Every submitted request reaches exactly one of these — the serving
    loop never hangs a request, even under total fleet loss (graceful
    degradation sheds instead of deadlocking).
    """

    #: outputs read back, bit-identical to serial execution
    COMPLETED = "completed"
    #: dropped by graceful degradation (capacity below the watermark, or
    #: zero admitting slots with no restart pending)
    SHED = "shed"
    #: the request's deadline passed before its results were readable
    TIMEOUT = "timed-out"
    #: every retry after slot crashes / transfer faults was exhausted
    FAILED = "failed"

    @property
    def ok(self) -> bool:
        return self is RequestStatus.COMPLETED


@dataclass(frozen=True)
class ArrayDecl:
    """One array of a task graph, with optional host input data."""

    name: str
    shape: tuple[int, ...] | int
    dtype: Any = np.float32
    #: host data copied in before the first launch (None -> zeros, the
    #: fresh-UM default)
    init: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        shape = (self.shape,) if isinstance(self.shape, int) else self.shape
        n = 1
        for s in shape:
            n *= s
        return n * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class KernelDecl:
    """One kernel of a task graph: implementation + signature + cost."""

    name: str
    signature: str
    fn: Callable[..., None]
    cost: CostModel

    @property
    def identity(self) -> tuple:
        """Hashable identity used by topology keys and kernel caches."""
        return (
            self.name,
            self.signature,
            getattr(self.fn, "__qualname__", repr(self.fn)),
            repr(self.cost),
        )


@dataclass(frozen=True)
class LaunchDecl:
    """One kernel launch in host-program order.

    String entries of ``args`` name graph arrays; everything else passes
    through as a scalar (the :class:`~repro.workloads.base.Invocation`
    convention).
    """

    kernel: str
    grid: int | tuple[int, ...]
    block: int | tuple[int, ...]
    args: tuple[Any, ...]


@dataclass
class TaskGraph:
    """A complete, self-contained task-graph description."""

    name: str
    arrays: dict[str, ArrayDecl]
    kernels: tuple[KernelDecl, ...]
    launches: tuple[LaunchDecl, ...]
    #: arrays read back to the host when the graph completes; defaults
    #: (in __post_init__) to every array some launch writes
    outputs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.launches:
            raise ValueError(f"task graph {self.name!r} has no launches")
        known = set(self.arrays)
        kernel_names = {k.name for k in self.kernels}
        for launch in self.launches:
            if launch.kernel not in kernel_names:
                raise ValueError(
                    f"launch references unknown kernel {launch.kernel!r}"
                )
            for arg in launch.args:
                if isinstance(arg, str) and arg not in known:
                    raise ValueError(
                        f"launch of {launch.kernel!r} references unknown"
                        f" array {arg!r}"
                    )
        if not self.outputs:
            self.outputs = tuple(sorted(self.written_arrays()))

    # -- derived structure ------------------------------------------------

    def kernel_by_name(self, name: str) -> KernelDecl:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def signature_accesses(self) -> dict[str, list]:
        """kernel name -> pointer-parameter access kinds, in order."""
        return {
            k.name: [
                p.access for p in parse_signature(k.signature) if p.is_pointer
            ]
            for k in self.kernels
        }

    def written_arrays(self) -> set[str]:
        """Arrays written by at least one launch (per the signatures)."""
        accesses = self.signature_accesses()
        written: set[str] = set()
        for launch in self.launches:
            names = [a for a in launch.args if isinstance(a, str)]
            for name, access in zip(names, accesses[launch.kernel]):
                if access.writes:
                    written.add(name)
        return written

    @property
    def total_bytes(self) -> int:
        """UM footprint of the graph (the Table-I quantity)."""
        return sum(a.nbytes for a in self.arrays.values())

    @property
    def input_bytes(self) -> int:
        """Host input data staged in before the first launch — the
        bytes a cross-node placement must move over the cluster
        network before the graph can start."""
        return sum(
            a.nbytes for a in self.arrays.values() if a.init is not None
        )

    @property
    def output_bytes(self) -> int:
        """Bytes read back to the submitting host when the graph
        completes (the cluster-network return leg)."""
        return sum(self.arrays[name].nbytes for name in self.outputs)

    def topology_key(self) -> tuple:
        """Hashable structural identity of the graph.

        Two graphs with equal keys launch the *same kernels with the same
        signatures, geometries and argument wiring on same-shaped
        arrays* — they differ at most in array contents.  Such graphs
        share one capture plan and may be coalesced into one batch.

        Memoized: the serving loop evaluates keys per queued request per
        batch, and graphs are immutable once submitted.
        """
        cached = self.__dict__.get("_topology_key")
        if cached is not None:
            return cached
        key = (
            tuple(
                (n, a.shape if isinstance(a.shape, tuple) else (a.shape,),
                 str(np.dtype(a.dtype)))
                for n, a in sorted(self.arrays.items())
            ),
            tuple(k.identity for k in self.kernels),
            tuple(
                (d.kernel, d.grid, d.block, d.args) for d in self.launches
            ),
            self.outputs,
        )
        self.__dict__["_topology_key"] = key
        return key


@dataclass
class GraphRequest:
    """One queued submission: a task graph plus its serving envelope."""

    tenant: str
    graph: TaskGraph
    priority: int = 0
    #: virtual service time at which the request entered the system
    arrival_time: float = 0.0
    #: absolute virtual deadline: results must be readable by this time
    #: or the request times out (None = no deadline)
    deadline: float | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: dispatch attempts so far (fault retries re-queue and increment)
    attempts: int = 0
    #: earliest virtual re-dispatch time after a fault (exponential
    #: backoff floor; 0 = dispatch whenever admitted)
    not_before: float = 0.0
    #: slot index of the last failed dispatch (None = never failed);
    #: used to count re-placements onto surviving slots
    last_slot: int | None = None

    @property
    def topology_key(self) -> tuple:
        return self.graph.topology_key()

    @property
    def dispatch_floor(self) -> float:
        """Earliest virtual time this request may be dispatched."""
        return max(self.arrival_time, self.not_before)


@dataclass
class GraphResult:
    """Outcome of one served request."""

    request_id: int
    tenant: str
    graph_name: str
    outputs: dict[str, np.ndarray]
    arrival_time: float
    start_time: float          # virtual time execution began on the device
    finish_time: float         # virtual time the outputs were consumable
    device_index: int          # -1 when the request never ran (shed/timeout)
    batch_id: int
    batch_size: int = 1
    replayed: bool = False     # served from the capture cache
    status: RequestStatus = RequestStatus.COMPLETED
    #: dispatch attempts the request consumed (> 1 means fault retries)
    attempts: int = 1
    #: cluster node that served the request (-1 = single-node serving,
    #: or the request never reached a node)
    node_index: int = -1

    @property
    def ok(self) -> bool:
        return self.status.ok

    @property
    def latency(self) -> float:
        """End-to-end virtual latency: arrival -> results readable."""
        return self.finish_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.arrival_time

    def raise_for_status(self) -> None:
        """Raise the matching :mod:`repro.errors` fault for a
        non-completed terminal status (no-op when completed)."""
        if self.status is RequestStatus.COMPLETED:
            return
        detail = (
            f"request {self.request_id} ({self.graph_name},"
            f" tenant {self.tenant})"
        )
        if self.status is RequestStatus.SHED:
            raise AdmissionShedError(
                f"{detail} was shed by graceful degradation"
            )
        if self.status is RequestStatus.TIMEOUT:
            raise RequestTimeoutError(
                f"{detail} missed its deadline"
            )
        raise SlotFailedError(
            f"{detail} failed after {self.attempts} attempt(s) on"
            " faulted slots"
        )


def execute_serial(
    graph: TaskGraph, gpu: str | GPUSpec = "GTX 1660 Super"
) -> dict[str, np.ndarray]:
    """Reference execution: the graph alone on a private serial runtime.

    This is the ground truth the serving layer's results are validated
    against — one tenant, one session, original-GrCUDA serial scheduling.
    """
    rt = Session(
        gpus=1,
        gpu=gpu,
        config=SchedulerConfig(execution=ExecutionPolicy.SERIAL),
    )
    arrays = {
        name: rt.array(decl.shape, dtype=decl.dtype, name=name)
        for name, decl in graph.arrays.items()
    }
    kernels = {
        k.name: rt.build_kernel(k.fn, k.name, k.signature, cost_model=k.cost)
        for k in graph.kernels
    }
    for name, decl in graph.arrays.items():
        if decl.init is not None:
            arrays[name].copy_from_host(decl.init)
    for launch in graph.launches:
        args = tuple(
            arrays[a] if isinstance(a, str) else a for a in launch.args
        )
        kernels[launch.kernel](launch.grid, launch.block)(*args)
    outputs = {name: arrays[name].to_numpy() for name in graph.outputs}
    rt.sync()
    rt.free_arrays()
    return outputs
