"""Adapters: suite benchmarks -> servable task graphs.

The paper's benchmark suite (:mod:`repro.workloads.suite`) declares each
workload once — arrays, kernels (with roofline costs) and per-iteration
invocations.  That declaration is exactly a
:class:`~repro.serve.request.TaskGraph`, so the serving layer's mixed
workloads come straight from the suite: a tenant submitting "one VEC
iteration at scale 100k with seed 7" gets the same kernels, cost models
and inputs the figure experiments use.
"""

from __future__ import annotations

import numpy as np

from repro.memory.array import DeviceArray
from repro.serve.request import ArrayDecl, KernelDecl, LaunchDecl, TaskGraph
from repro.workloads.base import Benchmark
from repro.workloads.suite import create_benchmark


def graph_from_benchmark(
    bench: Benchmark, iteration: int = 0
) -> TaskGraph:
    """One iteration of ``bench`` as a self-contained task graph.

    Host inputs are generated exactly as the benchmark's ``refresh``
    would (same per-iteration RNG), captured into the graph's array
    declarations; launches are the benchmark's invocations verbatim.
    """
    specs = bench.array_specs()
    # Detached arrays: refresh() writes the iteration's host inputs into
    # them with no runtime attached, which costs nothing and lets us
    # snapshot the exact input data.
    staging = {
        name: DeviceArray(spec.shape, dtype=spec.dtype, name=name)
        for name, spec in specs.items()
    }
    bench.refresh(staging, iteration)
    arrays = {
        name: ArrayDecl(
            name=name,
            shape=spec.shape if isinstance(spec.shape, tuple)
            else (spec.shape,),
            dtype=spec.dtype,
            init=np.array(staging[name].kernel_view, copy=True),
        )
        for name, spec in specs.items()
    }
    kernels = tuple(
        KernelDecl(
            name=k.name, signature=k.signature, fn=k.fn, cost=k.cost
        )
        for k in bench.kernel_specs()
    )
    launches = tuple(
        LaunchDecl(
            kernel=inv.kernel,
            grid=inv.grid,
            block=inv.block,
            args=tuple(inv.args),
        )
        for inv in bench.invocations()
    )
    return TaskGraph(
        name=f"{bench.name}@{bench.scale}",
        arrays=arrays,
        kernels=kernels,
        launches=launches,
    )


#: Small per-workload scales that keep serving benchmarks fast while
#: still exercising multi-kernel DAGs with real transfers.
SERVING_SCALES: dict[str, int] = {
    "vec": 120_000,
    "b&s": 60_000,
    "ml": 4_000,
}

#: The two serving traffic mixes the benchmark grids sweep: ``uniform``
#: cycles every workload evenly (cold-cache heavy — three topologies
#: alternate); ``skewed`` leans on one hot topology (batching/capture
#: -cache heavy), the classic production shape where one model
#: dominates traffic.
TRAFFIC_MIXES: dict[str, tuple[str, ...]] = {
    "uniform": ("vec", "b&s", "ml"),
    "skewed": ("vec", "vec", "vec", "vec", "b&s", "ml"),
}


def traffic_mix_graphs(
    count: int,
    mix: str = "uniform",
    seed: int = 7,
    scales: dict[str, int] | None = None,
) -> list[TaskGraph]:
    """``count`` task graphs drawn from one named traffic mix."""
    try:
        names = TRAFFIC_MIXES[mix]
    except KeyError:
        raise ValueError(
            f"unknown traffic mix {mix!r}; choose from"
            f" {sorted(TRAFFIC_MIXES)}"
        ) from None
    return mixed_workload_graphs(
        count, seed=seed, workloads=list(names), scales=scales
    )


def mixed_workload_graphs(
    count: int,
    seed: int = 7,
    workloads: list[str] | None = None,
    scales: dict[str, int] | None = None,
) -> list[TaskGraph]:
    """``count`` task graphs cycling over the suite's workloads.

    Graphs of the same workload share a topology (same kernels, shapes
    and launch wiring) but carry different input data (per-graph seeds),
    which is exactly the mix the batching window and capture cache are
    built for.
    """
    names = workloads or list(SERVING_SCALES)
    scales = scales or SERVING_SCALES
    graphs: list[TaskGraph] = []
    for i in range(count):
        name = names[i % len(names)]
        bench = create_benchmark(
            name,
            scales.get(name, SERVING_SCALES.get(name, 10_000)),
            seed=seed + i,
            iterations=1,
        )
        graphs.append(graph_from_benchmark(bench, iteration=0))
    return graphs
