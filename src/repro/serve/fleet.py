"""The simulated GPU fleet behind the serving layer.

A :class:`GpuFleet` is a pool of :class:`~repro.session.Session`
instances — one long-lived session per fleet *slot* — plus the
service-level placement decision: *which slot serves the next admitted
request*.  Since PR 5 a slot is no longer pinned to one GPU: the fleet
takes a **topology spec** (e.g. ``[2, 2, 1, 1]`` GPUs per slot), each
slot is a real ``Session(gpus=k)``, and a single admitted graph spans
the slot's devices under the session's in-slot
:class:`~repro.core.policies.DevicePlacementPolicy` — the paper's
multi-GPU scheduler, now reachable from the serving path.

Placement therefore composes across two levels:

* **service-level** (this module): which *slot* gets the request —
  ``ROUND_ROBIN`` cycles the fleet; ``LEAST_LOADED`` picks the slot
  that becomes available earliest (ties resolve in slot-id order, so
  serving replays are reproducible); ``MIN_TRANSFER`` prefers a slot
  that has already served this graph topology (*warm*: kernels built,
  capture plan exercised), pricing cold slots at the graph's full UM
  footprint and tie-breaking on availability then slot id.
* **in-slot** (:mod:`repro.multigpu.context`): which GPU of the slot
  runs each kernel, configured through the shared
  :class:`~repro.core.policies.SchedulerConfig` ``placement`` knob
  (defaulting to the paper's MIN_TRANSFER pricing).

Each slot keeps a per-fleet kernel cache (kernels bind the session's
context *dispatcher*, so they survive per-request context renewal) and
reusable per-device replay-stream pools for capture-cache fast paths.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.policies import DevicePlacementPolicy, SchedulerConfig
from repro.errors import ConfigError
from repro.faults import FaultPlan, SlotHealth, SlotLifecycle
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.stream import SimStream
from repro.kernels.kernel import Kernel
from repro.obs.counters import CounterRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.serve.request import GraphRequest
from repro.session import Session

#: what one entry of a fleet topology spec may be (see
#: :func:`normalize_slot_spec`)
SlotSpec = "int | str | GPUSpec | Sequence[str | GPUSpec] | tuple"


def parse_fleet_spec(text: str) -> list[int]:
    """Parse a CLI fleet spec like ``"2,2,1,1"`` into GPUs-per-slot.

    Raises :class:`~repro.errors.ConfigError` (a :class:`ValueError`)
    on empty specs or non-positive counts.
    """
    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ConfigError(
            f"fleet spec {text!r} must be comma-separated integers"
            " (GPUs per slot), e.g. '2,2,1,1'"
        ) from None
    if not counts or any(c <= 0 for c in counts):
        raise ConfigError(
            f"fleet spec {text!r} needs at least one positive GPU count"
        )
    return counts


def _resolve_gpu(model: str | GPUSpec) -> GPUSpec:
    """A GPU name or spec -> spec; unknown names are a config mistake,
    not a lookup surprise."""
    if isinstance(model, GPUSpec):
        return model
    try:
        return gpu_by_name(model)
    except KeyError:
        raise ConfigError(
            f"unknown GPU model {model!r} in slot spec"
        ) from None


def normalize_slot_spec(
    entry: "SlotSpec", default_gpu: str | GPUSpec
) -> list[GPUSpec]:
    """One topology entry -> the slot's GPU list.

    Accepted forms: an ``int`` (that many ``default_gpu`` s), a GPU name
    or :class:`GPUSpec` (a 1-GPU slot), a ``(count, model)`` pair, or a
    sequence of names/specs (a heterogeneous slot).  Malformed entries
    raise :class:`~repro.errors.ConfigError` (a :class:`ValueError`).
    """
    if isinstance(entry, bool):
        raise ConfigError("a slot spec cannot be a bool")
    if isinstance(entry, int):
        if entry <= 0:
            raise ConfigError(f"a slot needs >= 1 GPU, got {entry}")
        return [_resolve_gpu(default_gpu)] * entry
    if isinstance(entry, (str, GPUSpec)):
        return [_resolve_gpu(entry)]
    entries = list(entry)
    if (
        len(entries) == 2
        and isinstance(entries[0], int)
        and isinstance(entries[1], (str, GPUSpec))
    ):
        count, model = entries
        if count <= 0:
            raise ConfigError(f"a slot needs >= 1 GPU, got {count}")
        return [_resolve_gpu(model)] * count
    if not entries:
        raise ConfigError("a slot spec cannot be empty")
    for e in entries:
        if not isinstance(e, (str, GPUSpec)):
            raise ConfigError(
                "a heterogeneous slot spec must list GPU names or"
                f" specs, got {e!r} — use an int (or a (count, model)"
                " pair) per slot for GPU counts"
            )
    return [_resolve_gpu(e) for e in entries]


class FleetSlot:
    """One serving slot of the fleet: a long-lived (possibly multi-GPU)
    session plus serving state."""

    def __init__(
        self,
        index: int,
        specs: list[GPUSpec],
        config: SchedulerConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.index = index
        self.gpus = len(specs)
        # serving=True: the shared SchedulerConfig may carry serving
        # knobs (admission) that a plain compute session must reject.
        self.session = Session(
            gpus=len(specs),
            gpu=specs if len(specs) > 1 else specs[0],
            config=config,
            serving=True,
            tracer=tracer,
        )
        # Per-device export tracks are named after the slot, not the
        # engine's attach ordinal.
        self.session.engine._obs_name = f"slot{index}"
        #: roll-up registry: retired requests' coherence counters merge
        #: here (per-request engines die with their submission)
        self.counters = CounterRegistry()
        #: kernel cache: KernelDecl.identity -> built Kernel
        self._kernels: dict[tuple, Kernel] = {}
        #: topology keys this slot has served (MIN_TRANSFER warmth)
        self.warm_topologies: set[tuple] = set()
        #: replay stream pools, one per slot device (capture fast path)
        self._replay_pools: dict[int, list[SimStream]] = {}
        self.requests_served = 0
        self.kernels_launched = 0
        #: health state machine; the default empty lifecycle never
        #: leaves HEALTHY, so fault-free serving is untouched
        self.lifecycle = SlotLifecycle(index)

    @property
    def health(self) -> SlotHealth:
        return self.lifecycle.state

    @property
    def admitting(self) -> bool:
        """Whether the slot accepts new dispatches (HEALTHY/DEGRADED)."""
        return self.lifecycle.admitting

    def cold_restart(self) -> None:
        """Forget warm state after a crash: built kernels and warm
        topologies die with the slot's (simulated) host process.  The
        service-level capture cache survives — plans are derived from
        topology alone — but MIN_TRANSFER warmth and the per-slot kernel
        cache must be re-earned after the restart."""
        self._kernels.clear()
        self.warm_topologies.clear()

    @property
    def runtime(self) -> Session:
        """Deprecated alias: the fleet is a pool of Sessions now."""
        return self.session

    @property
    def engine(self):
        return self.session.engine

    @property
    def clock(self) -> float:
        """Virtual time at which this slot would start new work."""
        return self.session.engine.clock

    @property
    def shape_key(self) -> tuple:
        """Hashable slot shape: device count + models.  Capture plans
        are keyed per (graph topology, slot shape) — a 2-GPU slot's
        replay schedule assigns devices, so a 1-GPU slot cannot share
        it."""
        return (self.gpus, tuple(s.name for s in self.session.specs))

    def kernel_for(self, decl) -> Kernel:
        """Build-or-reuse the kernel for ``decl`` on this slot."""
        kernel = self._kernels.get(decl.identity)
        if kernel is None:
            kernel = self.session.build_kernel(
                decl.fn, decl.name, decl.signature, cost_model=decl.cost
            )
            self._kernels[decl.identity] = kernel
        return kernel

    def replay_streams(
        self, stream_count: int, member: int = 0
    ) -> list[SimStream]:
        """The replay streams for one batch member: plan stream ``i``
        maps to slot device ``i % gpus`` (the deterministic round-robin
        the replay path shares with plan derivation), drawn from
        per-device pools that grow on demand.  Members get disjoint
        stream slices so they space-share instead of serializing behind
        shared FIFOs; pool streams are only used between engine syncs,
        so cross-batch reuse is safe."""
        per_member = -(-stream_count // self.gpus)  # ceil
        out: list[SimStream] = []
        next_on_device: dict[int, int] = {}
        for i in range(stream_count):
            device_index = i % self.gpus
            ordinal = next_on_device.get(device_index, 0)
            next_on_device[device_index] = ordinal + 1
            slot_index = member * per_member + ordinal
            pool = self._replay_pools.setdefault(device_index, [])
            while len(pool) <= slot_index:
                pool.append(
                    self.engine.create_stream(
                        label=(
                            f"replay{self.index}-g{device_index}"
                            f"-{len(pool)}"
                        ),
                        device_index=device_index,
                    )
                )
            out.append(pool[slot_index])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FleetSlot {self.index} {self.gpus}x"
            f" {self.session.spec.name} served={self.requests_served}>"
        )


#: Backwards-compatible name: a 1-GPU slot is what used to be a
#: ``FleetDevice``.
FleetDevice = FleetSlot


class GpuFleet:
    """A fleet of serving slots with a service-level placement policy."""

    def __init__(
        self,
        slots: "Sequence[SlotSpec]",
        policy: DevicePlacementPolicy = DevicePlacementPolicy.LEAST_LOADED,
        config: SchedulerConfig | None = None,
        gpu: str | GPUSpec = "GTX 1660 Super",
        tracer: Tracer | None = None,
        width_normalized: bool = True,
    ) -> None:
        if not slots:
            raise ValueError("a fleet needs at least one slot")
        self.tracer = current_tracer() if tracer is None else tracer
        # Slots get the *raw* optional: with no explicit tracer each
        # engine resolves the ambient default itself (and Session never
        # forwards a tracer kwarg the engine wasn't asked for).
        self.slots = [
            FleetSlot(
                i,
                normalize_slot_spec(entry, gpu),
                config=config,
                tracer=tracer,
            )
            for i, entry in enumerate(slots)
        ]
        self.policy = policy
        #: LEAST_LOADED prices backlog/gpus (a 2-GPU slot drains ~2x
        #: faster) instead of the raw engine clock; False restores the
        #: pre-normalization pricing for A/B benchmarking
        self.width_normalized = width_normalized
        self._rr_next = 0

    def attach_faults(self, plan: FaultPlan) -> None:
        """Arm each slot's lifecycle with its share of ``plan``.

        Specs targeting slot indexes outside the fleet — or whole
        cluster nodes, which only a :class:`~repro.cluster.Cluster` can
        honour — are rejected: a silently ignored fault would make a
        chaos run vacuously green.
        """
        top = plan.max_slot()
        if top >= len(self.slots):
            raise ValueError(
                f"fault plan targets slot {top} but the fleet has only"
                f" {len(self.slots)} slot(s)"
            )
        if plan.node_scoped():
            raise ValueError(
                "fault plan contains node-scoped specs; attach it to a"
                " Cluster, not a single fleet"
            )
        for slot in self.slots:
            slot.lifecycle = SlotLifecycle(
                slot.index, plan.for_slot(slot.index)
            )

    def admitting_slots(self) -> list[FleetSlot]:
        """Slots currently accepting dispatches (lifecycle order is
        slot-id order, so the list is deterministic)."""
        return [s for s in self.slots if s.admitting]

    def admitting_gpus(self) -> int:
        return sum(s.gpus for s in self.slots if s.admitting)

    @classmethod
    def build(
        cls,
        size: int,
        gpu: str | GPUSpec = "GTX 1660 Super",
        policy: DevicePlacementPolicy = DevicePlacementPolicy.LEAST_LOADED,
        config: SchedulerConfig | None = None,
        gpus_per_slot: int = 1,
        tracer: Tracer | None = None,
        width_normalized: bool = True,
    ) -> "GpuFleet":
        """Factory: a homogeneous fleet of ``size`` slots, each with
        ``gpus_per_slot`` × ``gpu``."""
        if size <= 0:
            raise ValueError("fleet size must be positive")
        return cls(
            [gpus_per_slot] * size,
            policy=policy,
            config=config,
            gpu=gpu,
            tracer=tracer,
            width_normalized=width_normalized,
        )

    @property
    def devices(self) -> list[FleetSlot]:
        """Deprecated alias for :attr:`slots` (pre-topology name)."""
        return self.slots

    @property
    def topology(self) -> list[int]:
        """GPUs per slot, e.g. ``[2, 2, 1, 1]``."""
        return [slot.gpus for slot in self.slots]

    @property
    def total_gpus(self) -> int:
        return sum(slot.gpus for slot in self.slots)

    def gpu_models(self) -> list[str]:
        """Distinct GPU model names across the whole fleet, sorted."""
        return sorted(
            {
                spec.name
                for slot in self.slots
                for spec in slot.session.specs
            }
        )

    def describe(self) -> str:
        """Human-readable topology: ``[2,2,1,1]x GTX 1660 Super`` for a
        homogeneous fleet, all models listed for a mixed one."""
        shape = f"[{','.join(str(g) for g in self.topology)}]"
        models = self.gpu_models()
        if len(models) == 1:
            return f"{shape}x {models[0]}"
        return f"{shape}x mixed({' + '.join(models)})"

    def __len__(self) -> int:
        return len(self.slots)

    # -- placement ---------------------------------------------------------

    def choose(
        self,
        request: GraphRequest,
        eligible: "Sequence[FleetSlot] | None" = None,
    ) -> FleetSlot:
        """Pick the slot that serves ``request`` per the policy.

        ``eligible`` restricts the choice (the fault-aware serving loop
        passes the admitting slots); None considers the whole fleet.
        Every policy's key ends in the slot id, so equal-cost slots
        resolve in stable slot-id order and serving runs replay
        deterministically.
        """
        slot = self._choose(request, self.slots if eligible is None else eligible)
        if self.tracer.enabled:
            self.tracer.instant(
                "place",
                track="service",
                vt=slot.clock,
                policy=self.policy.value,
                tenant=request.tenant,
                request=request.request_id,
                slot=slot.index,
                warm=request.topology_key in slot.warm_topologies,
            )
        return slot

    def _choose(
        self, request: GraphRequest, slots: "Sequence[FleetSlot]"
    ) -> FleetSlot:
        if not slots:
            raise ValueError("no eligible slots to place on")
        if self.policy is DevicePlacementPolicy.ROUND_ROBIN:
            # Walk the ring from the cursor until an eligible slot comes
            # up, so a fleet with non-admitting slots keeps cycling the
            # survivors in the same deterministic order.
            allowed = {s.index for s in slots}
            for _ in range(len(self.slots)):
                slot = self.slots[self._rr_next]
                self._rr_next = (self._rr_next + 1) % len(self.slots)
                if slot.index in allowed:
                    return slot
            raise ValueError("no eligible slots to place on")
        if self.policy is DevicePlacementPolicy.LEAST_LOADED:
            if self.width_normalized:
                # Price the *backlog ahead of this request* per GPU: a
                # 2-GPU slot drains its queue ~2x faster, so raw engine
                # clocks over-penalize wide slots.  The raw clock stays
                # as the tie-break so idle slots (zero backlog each)
                # still resolve by availability, then slot id.
                floor = request.dispatch_floor
                return min(
                    slots,
                    key=lambda s: (
                        max(0.0, s.clock - floor) / s.gpus,
                        s.clock,
                        s.index,
                    ),
                )
            return min(slots, key=lambda s: (s.clock, s.index))
        # MIN_TRANSFER: migration cost first, availability tie-break.
        key = request.topology_key
        return min(
            slots,
            key=lambda s: (
                0 if key in s.warm_topologies
                else request.graph.total_bytes,
                s.clock,
                s.index,
            ),
        )

    # -- fleet-level accounting ---------------------------------------------

    @property
    def makespan(self) -> float:
        """Virtual time by which every slot has drained."""
        return max(s.clock for s in self.slots)

    def kernel_counts(self) -> list[int]:
        return [s.kernels_launched for s in self.slots]


__all__ = [
    "FleetDevice",
    "FleetSlot",
    "GpuFleet",
    "DevicePlacementPolicy",
    "normalize_slot_spec",
    "parse_fleet_spec",
]
