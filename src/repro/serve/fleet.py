"""The simulated GPU fleet behind the serving layer.

A :class:`GpuFleet` is a pool of :class:`~repro.session.Session`
instances — one long-lived single-GPU session (device + engine) per
fleet slot — plus the placement decision: *which GPU serves the next
admitted request*.  Placement reuses the runtime's policy vocabulary
(:class:`repro.core.policies.DevicePlacementPolicy`):

* ``ROUND_ROBIN`` — cycle through the fleet;
* ``LEAST_LOADED`` — the device that becomes available earliest (its
  engine's virtual clock is the time it would start new work);
* ``MIN_TRANSFER`` — the serving analogue of "compute data location and
  migration costs at run time": a device that has already served this
  graph topology is *warm* (kernels built, capture plan exercised, no
  setup bytes to move) and is preferred; cold devices are priced at the
  graph's full UM footprint, tie-broken by availability.

Each device keeps a per-fleet kernel cache (kernels bind the runtime's
context *dispatcher*, so they survive per-request context renewal) and a
reusable replay-stream pool for capture-cache fast paths.
"""

from __future__ import annotations

from repro.core.policies import DevicePlacementPolicy, SchedulerConfig
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.stream import SimStream
from repro.kernels.kernel import Kernel
from repro.serve.request import GraphRequest
from repro.session import Session


class FleetDevice:
    """One GPU of the fleet: a long-lived session plus serving state."""

    def __init__(self, index: int, spec: GPUSpec,
                 config: SchedulerConfig | None = None) -> None:
        self.index = index
        # serving=True: the shared SchedulerConfig may carry serving
        # knobs (admission) that a plain compute session must reject.
        self.session = Session(gpus=1, gpu=spec, config=config,
                               serving=True)
        #: kernel cache: KernelDecl.identity -> built Kernel
        self._kernels: dict[tuple, Kernel] = {}
        #: topology keys this device has served (MIN_TRANSFER warmth)
        self.warm_topologies: set[tuple] = set()
        #: replay stream pool (capture fast path)
        self._replay_streams: list[SimStream] = []
        self.requests_served = 0
        self.kernels_launched = 0

    @property
    def runtime(self) -> Session:
        """Deprecated alias: the fleet is a pool of Sessions now."""
        return self.session

    @property
    def engine(self):
        return self.session.engine

    @property
    def clock(self) -> float:
        """Virtual time at which this device would start new work."""
        return self.session.engine.clock

    def kernel_for(self, decl) -> Kernel:
        """Build-or-reuse the kernel for ``decl`` on this device."""
        kernel = self._kernels.get(decl.identity)
        if kernel is None:
            kernel = self.session.build_kernel(
                decl.fn, decl.name, decl.signature, cost_model=decl.cost
            )
            self._kernels[decl.identity] = kernel
        return kernel

    def lease_replay_streams(self, count: int) -> list[SimStream]:
        """``count`` idle streams from the replay pool, growing it on
        demand.  Pool streams are only used between engine syncs, so
        reuse is safe."""
        while len(self._replay_streams) < count:
            self._replay_streams.append(
                self.engine.create_stream(
                    label=f"replay{self.index}-{len(self._replay_streams)}"
                )
            )
        return self._replay_streams[:count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FleetDevice {self.index} {self.session.spec.name}"
            f" served={self.requests_served}>"
        )


class GpuFleet:
    """A pool of simulated GPUs with a placement policy."""

    def __init__(
        self,
        gpus: list[str | GPUSpec],
        policy: DevicePlacementPolicy = DevicePlacementPolicy.LEAST_LOADED,
        config: SchedulerConfig | None = None,
    ) -> None:
        if not gpus:
            raise ValueError("a fleet needs at least one GPU")
        specs = [gpu_by_name(g) if isinstance(g, str) else g for g in gpus]
        self.devices = [
            FleetDevice(i, spec, config=config)
            for i, spec in enumerate(specs)
        ]
        self.policy = policy
        self._rr_next = 0

    @classmethod
    def build(
        cls,
        size: int,
        gpu: str | GPUSpec = "GTX 1660 Super",
        policy: DevicePlacementPolicy = DevicePlacementPolicy.LEAST_LOADED,
        config: SchedulerConfig | None = None,
    ) -> "GpuFleet":
        """Factory: a homogeneous fleet of ``size`` × ``gpu``."""
        if size <= 0:
            raise ValueError("fleet size must be positive")
        return cls([gpu] * size, policy=policy, config=config)

    def __len__(self) -> int:
        return len(self.devices)

    # -- placement ---------------------------------------------------------

    def choose(self, request: GraphRequest) -> FleetDevice:
        """Pick the device that serves ``request`` per the policy."""
        if self.policy is DevicePlacementPolicy.ROUND_ROBIN:
            device = self.devices[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self.devices)
            return device
        if self.policy is DevicePlacementPolicy.LEAST_LOADED:
            return min(self.devices, key=lambda d: (d.clock, d.index))
        # MIN_TRANSFER: migration cost first, availability tie-break.
        key = request.topology_key
        return min(
            self.devices,
            key=lambda d: (
                0 if key in d.warm_topologies
                else request.graph.total_bytes,
                d.clock,
                d.index,
            ),
        )

    # -- fleet-level accounting ---------------------------------------------

    @property
    def makespan(self) -> float:
        """Virtual time by which every device has drained."""
        return max(d.clock for d in self.devices)

    def kernel_counts(self) -> list[int]:
        return [d.kernels_launched for d in self.devices]


__all__ = [
    "FleetDevice",
    "GpuFleet",
    "DevicePlacementPolicy",
]
