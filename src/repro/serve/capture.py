"""Reusable-capture cache keyed on graph topology.

The first time a topology is served, the service pays the full
dependency-inference path *and* records the equivalent multi-stream
schedule through :class:`repro.graphs.capture.StreamCapture` — exactly
the stream-capture baseline of section V-D, run once per distinct
topology instead of once per program.  Every later request with the same
:meth:`~repro.serve.request.TaskGraph.topology_key` replays the cached
plan: kernels are submitted straight onto pre-assigned streams with
pre-computed event waits, skipping per-launch dependency computation —
the CUDA-Graphs amortization, applied fleet-wide.

The plan itself is topology-pure (stream indices + wait edges), so it
serves every tenant; cache entries are keyed per **(graph topology,
slot shape)** — a multi-GPU fleet slot replays plan stream ``i`` on
slot device ``i % gpus``, so slots of different shapes (device count or
model mix) must not share an entry even though the wait edges coincide.
Correctness is unchanged because the plan derives from the same
dependency-set analysis the runtime scheduler performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.graphs.capture import StreamCapture
from repro.graphs.graph import CudaGraph
from repro.graphs.planner import StreamPlanStep, plan_streams
from repro.kernels.registry import build_kernel
from repro.memory.array import DeviceArray
from repro.obs.counters import CounterRegistry
from repro.serve.request import TaskGraph


@dataclass(frozen=True)
class CapturePlan:
    """One cached, replayable schedule for a graph topology."""

    steps: tuple[StreamPlanStep, ...]
    stream_count: int
    #: the captured CUDA graph (introspection: node/edge counts)
    captured: CudaGraph


class CaptureCache:
    """(topology, slot shape)-keyed cache of :class:`CapturePlan` s."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._plans: dict[tuple, CapturePlan] = {}
        #: hit/miss tallies, on the observability registry so the
        #: serve-bench summary reads them under one namespace; the
        #: ``hits`` / ``misses`` attributes stay as read/write
        #: properties (the service adds batch riders directly)
        self.counters = CounterRegistry()
        #: requests served from a cached plan (the service also counts
        #: batch members that ride a head request's lookup)
        self._c_hits = self.counters.counter("serve.capture_hits")
        #: requests that paid the full inference path
        self._c_misses = self.counters.counter("serve.capture_misses")

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._c_hits.value = value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._c_misses.value = value

    def __len__(self) -> int:
        return len(self._plans)

    def peek(
        self, graph: TaskGraph, shape_key: tuple | None = None
    ) -> bool:
        """Whether a plan is already cached for ``graph`` on a slot of
        ``shape_key`` — no counter effect, no plan derivation.  The
        cluster AFFINITY policy asks this about *other* nodes' caches;
        only a real dispatch may move the hit/miss tallies."""
        return (
            self.enabled
            and (graph.topology_key(), shape_key) in self._plans
        )

    def lookup(
        self, graph: TaskGraph, shape_key: tuple | None = None
    ) -> CapturePlan | None:
        """The cached plan for ``graph``'s topology on a slot of
        ``shape_key`` (see :attr:`repro.serve.fleet.FleetSlot.shape_key`;
        None means a shape-agnostic single entry), counting a hit; on a
        miss the plan is derived, cached and returned as None so the
        caller takes the capture (context) path once."""
        if not self.enabled:
            return None
        key = (graph.topology_key(), shape_key)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        self._plans[key] = derive_plan(graph)
        return None


def derive_plan(graph: TaskGraph) -> CapturePlan:
    """Derive the replay schedule for one topology.

    Dependencies come from the same dependency-set analysis the runtime
    scheduler performs, run offline on placeholder arrays; the resulting
    schedule is recorded through :class:`StreamCapture` (streams + event
    record/wait calls, the section V-D baseline idiom) and kept both as
    plan steps for the replay executor and as the captured
    :class:`CudaGraph`.
    """
    accesses_of = graph.signature_accesses()
    placeholders = {
        name: DeviceArray(1, name=name) for name in graph.arrays
    }
    dag = ComputationDAG()
    index_of: dict[int, int] = {}
    parents_of: list[list[int]] = []
    for i, launch in enumerate(graph.launches):
        names = [a for a in launch.args if isinstance(a, str)]
        kinds = accesses_of[launch.kernel]
        element = ComputationalElement(
            [(placeholders[n], k) for n, k in zip(names, kinds)],
            label=f"{launch.kernel}#{i}",
        )
        parents = dag.add(element)
        index_of[element.element_id] = i
        parents_of.append([index_of[p.element_id] for p in parents])

    steps = tuple(plan_streams(parents_of))
    stream_count = 1 + max(s.stream for s in steps)

    # Record the schedule through stream capture, as a hand-optimized
    # host program would: one capturing stream per planned stream, waits
    # expressed through captured events.
    capture = StreamCapture(name=f"serve:{graph.name}")
    cap_streams = [capture.stream() for _ in range(stream_count)]
    cap_kernels = {
        k.name: build_kernel(k.fn, k.name, k.signature, cost_model=k.cost)
        for k in graph.kernels
    }
    events: dict[int, object] = {}
    for launch, step in zip(graph.launches, steps):
        stream = cap_streams[step.stream]
        for w in step.waits:
            capture.wait_event(stream, events[w])
        capture.launch(
            stream,
            cap_kernels[launch.kernel],
            launch.grid,
            launch.block,
            tuple(
                placeholders[a] if isinstance(a, str) else a
                for a in launch.args
            ),
        )
        if step.record_event:
            events[step.index] = capture.record_event(stream)
    captured = capture.end_capture()

    return CapturePlan(
        steps=steps,
        stream_count=stream_count,
        captured=captured,
    )
