"""Admission control: which queued request is dispatched next.

Three policies, selectable per service instance (and from the
``serve-bench`` CLI):

* **FIFO** — strict arrival order; simple, but a heavy tenant ahead of
  you delays everyone.
* **PRIORITY** — higher request priority first (FIFO within a priority
  level).  Starvation of low-priority tenants is possible *by design*;
  use fair-share when that is unacceptable.
* **FAIR_SHARE** — least-service-first across tenants: the next request
  comes from the backlogged tenant that has been admitted the fewest
  requests so far (FIFO within a tenant).  Between any two continuously
  backlogged tenants the admitted counts never diverge by more than one,
  so no tenant starves.

All queues also support :meth:`AdmissionQueue.take_matching`, the hook
the batching layer uses to pull topology-identical requests forward into
the batch being formed (admission accounting still charges their
tenants).
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import defaultdict, deque
from typing import Callable

# The policy enum lives with the rest of the policy space so one
# SchedulerConfig can carry it; re-exported here for compatibility.
from repro.core.policies import AdmissionPolicy
from repro.serve.request import GraphRequest

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "FairShareQueue",
    "FifoQueue",
    "PriorityQueue",
    "make_queue",
]


def make_queue(policy: AdmissionPolicy) -> "AdmissionQueue":
    """Factory: the queue implementation for ``policy``."""
    return {
        AdmissionPolicy.FIFO: FifoQueue,
        AdmissionPolicy.PRIORITY: PriorityQueue,
        AdmissionPolicy.FAIR_SHARE: FairShareQueue,
    }[policy]()


class AdmissionQueue(abc.ABC):
    """Common bookkeeping for every admission policy."""

    def __init__(self) -> None:
        self._seq = itertools.count()
        #: requests admitted (popped/taken) per tenant, the service
        #: measure fair-share balances
        self.admitted_counts: dict[str, int] = defaultdict(int)

    # -- policy interface -------------------------------------------------

    @abc.abstractmethod
    def push(self, request: GraphRequest) -> None:
        """Enqueue a submission."""

    @abc.abstractmethod
    def pop(self) -> GraphRequest | None:
        """Admit the next request per the policy (None when empty)."""

    @abc.abstractmethod
    def peek(self) -> GraphRequest | None:
        """The request :meth:`pop` would admit next, without removing it
        or charging admission accounting (None when empty)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def pending_by_tenant(self) -> dict[str, int]:
        """Queued-request counts per tenant (introspection/tests)."""

    @abc.abstractmethod
    def _remove_matching(
        self, predicate: Callable[[GraphRequest], bool], limit: int
    ) -> list[GraphRequest]: ...

    # -- shared machinery ---------------------------------------------------

    def take_matching(
        self, predicate: Callable[[GraphRequest], bool], limit: int
    ) -> list[GraphRequest]:
        """Remove and return up to ``limit`` queued requests matching
        ``predicate`` (queue order).  Used to coalesce batches; admission
        accounting is charged as if the requests were popped."""
        if limit <= 0:
            return []
        taken = self._remove_matching(predicate, limit)
        for r in taken:
            self.admitted_counts[r.tenant] += 1
        return taken

    def evict_lowest(self, count: int) -> list[GraphRequest]:
        """Remove and return the ``count`` least-valuable queued
        requests: lowest priority first, newest arrival first within a
        priority (the graceful-degradation shed order — fresh low-value
        work goes before old high-value work).

        Evicted requests are *not* charged to admission accounting (they
        were never served); survivors keep their relative queue order.
        """
        if count <= 0:
            return []
        queued = self._remove_matching(lambda r: True, len(self))
        victims = sorted(
            queued,
            key=lambda r: (
                r.priority, -r.arrival_time, -r.request_id
            ),
        )[:count]
        victim_ids = {r.request_id for r in victims}
        for r in queued:
            if r.request_id not in victim_ids:
                self.push(r)
        return victims

    def _note_admitted(self, request: GraphRequest) -> None:
        self.admitted_counts[request.tenant] += 1


class FifoQueue(AdmissionQueue):
    """Strict arrival order."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[GraphRequest] = deque()

    def push(self, request: GraphRequest) -> None:
        self._queue.append(request)

    def pop(self) -> GraphRequest | None:
        if not self._queue:
            return None
        request = self._queue.popleft()
        self._note_admitted(request)
        return request

    def peek(self) -> GraphRequest | None:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def pending_by_tenant(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for r in self._queue:
            counts[r.tenant] += 1
        return dict(counts)

    def _remove_matching(self, predicate, limit) -> list[GraphRequest]:
        taken: list[GraphRequest] = []
        kept: deque[GraphRequest] = deque()
        while self._queue:
            r = self._queue.popleft()
            if len(taken) < limit and predicate(r):
                taken.append(r)
            else:
                kept.append(r)
        self._queue = kept
        return taken


class PriorityQueue(AdmissionQueue):
    """Higher ``request.priority`` first; FIFO within a level."""

    def __init__(self) -> None:
        super().__init__()
        #: heap on (-priority, submission seq): stable priority order
        self._heap: list[tuple[tuple[int, int], GraphRequest]] = []

    def push(self, request: GraphRequest) -> None:
        heapq.heappush(
            self._heap, ((-request.priority, next(self._seq)), request)
        )

    def pop(self) -> GraphRequest | None:
        if not self._heap:
            return None
        _, request = heapq.heappop(self._heap)
        self._note_admitted(request)
        return request

    def peek(self) -> GraphRequest | None:
        return self._heap[0][1] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def pending_by_tenant(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for _, r in self._heap:
            counts[r.tenant] += 1
        return dict(counts)

    def _remove_matching(self, predicate, limit) -> list[GraphRequest]:
        # Matches leave in admission (priority) order, not heap-array
        # order; the survivors are re-heapified.
        entries = sorted(self._heap, key=lambda e: e[0])
        taken: list[GraphRequest] = []
        kept: list[tuple[tuple[int, int], GraphRequest]] = []
        for key, r in entries:
            if len(taken) < limit and predicate(r):
                taken.append(r)
            else:
                kept.append((key, r))
        heapq.heapify(kept)
        self._heap = kept
        return taken


class FairShareQueue(AdmissionQueue):
    """Least-service-first across tenants, FIFO within a tenant.

    ``pop`` always serves a backlogged tenant whose admitted count is
    minimal among backlogged tenants — the starvation-freedom invariant
    the property tests pin down.
    """

    def __init__(self) -> None:
        super().__init__()
        self._per_tenant: dict[str, deque[tuple[int, GraphRequest]]] = (
            defaultdict(deque)
        )

    def push(self, request: GraphRequest) -> None:
        self._per_tenant[request.tenant].append(
            (next(self._seq), request)
        )

    def pop(self) -> GraphRequest | None:
        backlogged = [t for t, q in self._per_tenant.items() if q]
        if not backlogged:
            return None
        # Least admitted first; tie-break on the oldest queued request
        # so equal-share tenants still serve in arrival order.
        tenant = min(
            backlogged,
            key=lambda t: (
                self.admitted_counts[t],
                self._per_tenant[t][0][0],
            ),
        )
        _, request = self._per_tenant[tenant].popleft()
        self._note_admitted(request)
        return request

    def peek(self) -> GraphRequest | None:
        backlogged = [t for t, q in self._per_tenant.items() if q]
        if not backlogged:
            return None
        tenant = min(
            backlogged,
            key=lambda t: (
                self.admitted_counts[t],
                self._per_tenant[t][0][0],
            ),
        )
        return self._per_tenant[tenant][0][1]

    def __len__(self) -> int:
        return sum(len(q) for q in self._per_tenant.values())

    def pending_by_tenant(self) -> dict[str, int]:
        return {t: len(q) for t, q in self._per_tenant.items() if q}

    def _remove_matching(self, predicate, limit) -> list[GraphRequest]:
        # Two passes: find every match first, THEN truncate to the
        # globally-oldest ``limit`` — a per-tenant scan that applied the
        # limit while walking would prefer whichever tenant the dict
        # yields first over older queued requests.
        matches: list[tuple[int, GraphRequest]] = []
        for queue in self._per_tenant.values():
            matches.extend(e for e in queue if predicate(e[1]))
        matches.sort(key=lambda e: e[0])  # global arrival order
        chosen = {seq for seq, _ in matches[:limit]}
        for tenant, queue in self._per_tenant.items():
            self._per_tenant[tenant] = deque(
                e for e in queue if e[0] not in chosen
            )
        return [r for seq, r in matches[:limit]]
