"""Trace exporters: Chrome-trace/Perfetto JSON and flat JSONL.

The Chrome Trace Event Format (the JSON understood by
``chrome://tracing`` and https://ui.perfetto.dev) wants complete events
(``ph: "X"``) with µs timestamps and *integer* ``pid``/``tid`` track
ids, plus ``"M"`` metadata events naming them.  The exporter interns
three families of tracks:

* **per-device tracks** — one process per engine (named from
  ``Tracer.attach_engine`` or an explicit ``timelines`` mapping), one
  thread per simulated stream, events straight from
  :class:`~repro.gpusim.timeline.Timeline` records.  Virtual start/end
  convert exactly (µs = seconds × 1e6), so trace timestamps match the
  timeline bit-for-bit after the fixed scale.
* **per-tenant tracks** — one ``tenants`` process, one thread per
  tenant, one event per served request (from serving ``GraphResult``
  rows: arrival → finish with queue/batch/replay attributes).
* **tracer span tracks** — one ``tracer`` process, one thread per span
  track (``admission``, ``coherence``, ``engine0`` …), events from the
  recorded :class:`~repro.obs.trace.TraceEvent` s.

All timestamps in the file are **virtual** µs; wall-clock stamps ride
along in ``args`` so a Perfetto query can still compare simulator cost
to simulated time.  :func:`validate_chrome_trace` is the schema check
the test suite and CI run — it is also a CLI:
``python -m repro.obs.export trace.json``.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.gpusim.timeline import Timeline, TimelineRecord

_SCALE = 1e6  # virtual seconds -> trace µs

_JSON_SCALARS = (str, int, float, bool)


def _clean_args(attrs: Mapping | None) -> dict:
    """Keep only JSON-scalar attributes (op metadata can carry arbitrary
    objects, e.g. array references)."""
    if not attrs:
        return {}
    return {
        str(k): v
        for k, v in attrs.items()
        if isinstance(v, _JSON_SCALARS)
    }


class _TrackInterner:
    """Hands out integer pid/tid pairs and the ``"M"`` metadata events
    that name them."""

    def __init__(self, events: list[dict]) -> None:
        self._events = events
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        self._tid_counts: dict[int, int] = {}

    def pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        return pid

    def tid(self, pid: int, thread: str) -> int:
        key = (pid, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tid_counts.get(pid, 0) + 1
            self._tid_counts[pid] = tid
            self._tids[key] = tid
            self._events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return tid


def _timeline_events(
    interner: _TrackInterner,
    events: list[dict],
    name: str,
    records: Iterable[TimelineRecord],
) -> None:
    pid = interner.pid(f"device:{name}")
    for rec in records:
        tid = interner.tid(pid, f"stream {rec.stream_id}")
        args = _clean_args(rec.meta)
        if rec.nbytes:
            args["nbytes"] = rec.nbytes
        events.append(
            {
                "ph": "X",
                "name": rec.label or rec.kind.value,
                "cat": rec.kind.value,
                "pid": pid,
                "tid": tid,
                "ts": rec.start * _SCALE,
                "dur": rec.duration * _SCALE,
                "args": args,
            }
        )


def _tenant_events(
    interner: _TrackInterner, events: list[dict], results
) -> None:
    pid = interner.pid("tenants")
    for res in results:
        tid = interner.tid(pid, res.tenant)
        events.append(
            {
                "ph": "X",
                "name": res.graph_name,
                "cat": "request",
                "pid": pid,
                "tid": tid,
                "ts": res.start_time * _SCALE,
                "dur": (res.finish_time - res.start_time) * _SCALE,
                "args": {
                    "request_id": res.request_id,
                    "arrival_vt_us": res.arrival_time * _SCALE,
                    "queue_wait_us": (res.start_time - res.arrival_time)
                    * _SCALE,
                    "batch_id": res.batch_id,
                    "batch_size": res.batch_size,
                    "replayed": res.replayed,
                    "slot": res.device_index,
                },
            }
        )


def _tracer_events(
    interner: _TrackInterner, events: list[dict], tracer
) -> None:
    pid = interner.pid("tracer")
    for ev in tracer.events:
        tid = interner.tid(pid, ev.track)
        args = _clean_args(ev.attrs)
        args["wall_s"] = ev.wall
        if ev.ph == "X":
            args["wall_dur_s"] = ev.wall_dur
        args["depth"] = ev.depth
        out = {
            "ph": ev.ph,
            "name": ev.name,
            "cat": "span" if ev.ph == "X" else "instant",
            "pid": pid,
            "tid": tid,
            "ts": ev.vt * _SCALE,
            "args": args,
        }
        if ev.ph == "X":
            out["dur"] = ev.dur * _SCALE
        else:
            out["s"] = "t"  # instant scope: thread
        events.append(out)


def build_chrome_trace(
    tracer=None,
    *,
    timelines: Mapping[str, Timeline] | None = None,
    results=None,
    other: Mapping | None = None,
) -> dict:
    """Assemble the Chrome-trace document.

    ``tracer`` contributes its span events and the timelines of every
    engine it attached; ``timelines`` adds/overrides named device
    timelines explicitly; ``results`` (serving ``GraphResult`` rows)
    adds per-tenant request tracks; ``other`` lands verbatim in
    ``otherData``.
    """
    events: list[dict] = []
    interner = _TrackInterner(events)

    named: dict[str, Timeline] = {}
    if tracer is not None:
        for engine in getattr(tracer, "engines", ()):
            named[getattr(engine, "_obs_name", f"engine{id(engine)}")] = (
                engine.timeline
            )
    if timelines:
        named.update(timelines)
    for name in sorted(named):
        _timeline_events(interner, events, name, named[name])

    if results:
        _tenant_events(interner, events, results)

    if tracer is not None and getattr(tracer, "events", None):
        _tracer_events(interner, events, tracer)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(other or {}),
    }


def canonical_trace(
    tracer=None,
    *,
    timelines: Mapping[str, Timeline] | None = None,
    results=None,
) -> dict:
    """The Chrome-trace document with its advisory wall-clock stamps
    stripped: two runs of the same virtual-time schedule compare equal
    iff their traces are semantically identical (pid/tid interning is
    first-appearance order, so identical event order ⇒ identical ids).
    This is the determinism-comparison form the parallel strategy
    matrix asserts on — ``wall_s``/``wall_dur_s`` are real host times
    and legitimately differ between runs and strategies."""
    doc = build_chrome_trace(tracer, timelines=timelines, results=results)
    for event in doc["traceEvents"]:
        args = event.get("args")
        if args:
            args.pop("wall_s", None)
            args.pop("wall_dur_s", None)
    return doc


def write_chrome_trace(
    path: str,
    tracer=None,
    *,
    timelines: Mapping[str, Timeline] | None = None,
    results=None,
    other: Mapping | None = None,
) -> dict:
    """Build and write the Chrome trace; returns the document."""
    doc = build_chrome_trace(
        tracer, timelines=timelines, results=results, other=other
    )
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def write_jsonl(path: str, tracer) -> int:
    """Write the tracer's raw event stream as one JSON object per line
    (the grep/jq-friendly flat form); returns the line count."""
    count = 0
    with open(path, "w") as fh:
        for ev in tracer.events:
            fh.write(json.dumps(ev.to_dict()))
            fh.write("\n")
            count += 1
    return count


# -- schema validation -------------------------------------------------------

_PHASES_WITH_DUR = {"X"}
_KNOWN_PHASES = {"X", "i", "I", "M", "B", "E", "b", "e", "C"}


def validate_chrome_trace(doc) -> list[str]:
    """Check ``doc`` against the Chrome Trace Event Format subset the
    exporter emits; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing event name")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event needs args.name")
            elif ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                named_tids.add((ev.get("pid"), ev.get("tid")))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: ts must be numeric")
        elif ts < 0:
            errors.append(f"{where}: ts must be >= 0, got {ts}")
        if ph in _PHASES_WITH_DUR:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: complete event needs numeric dur")
            elif dur < 0:
                errors.append(f"{where}: dur must be >= 0, got {dur}")
        if isinstance(ev.get("pid"), int) and ev["pid"] not in named_pids:
            errors.append(f"{where}: pid {ev['pid']} has no process_name")
        if (
            isinstance(ev.get("pid"), int)
            and isinstance(ev.get("tid"), int)
            and (ev["pid"], ev["tid"]) not in named_tids
        ):
            errors.append(
                f"{where}: tid {ev['tid']} (pid {ev['pid']})"
                " has no thread_name"
            )
    return errors


def validate_chrome_trace_file(path: str) -> list[str]:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(doc)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.export trace.json`` — the CI schema gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Validate a Chrome-trace JSON file.",
    )
    parser.add_argument("paths", nargs="+", help="trace file(s) to check")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        errors = validate_chrome_trace_file(path)
        if errors:
            status = 1
            for err in errors[:20]:
                print(f"FAIL {path}: {err}")
            if len(errors) > 20:
                print(f"FAIL {path}: ... {len(errors) - 20} more")
        else:
            with open(path) as fh:
                doc = json.load(fh)
            events = doc["traceEvents"]
            pids = {
                e["args"]["name"]
                for e in events
                if e.get("ph") == "M" and e.get("name") == "process_name"
            }
            print(
                f"OK {path}: {len(events)} events,"
                f" {len(pids)} track groups"
                f" ({', '.join(sorted(pids))})"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())


__all__ = [
    "build_chrome_trace",
    "canonical_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
