"""Span tracer: nested, zero-alloc-when-disabled structured tracing.

One request travels through four layers — admission in
:class:`~repro.serve.service.SchedulerService`, placement in
:class:`~repro.serve.fleet.GpuFleet`, coherence planning in
:class:`~repro.memory.coherence.CoherenceEngine`, and op execution in
:class:`~repro.gpusim.engine.SimEngine`.  The tracer is the one place
those layers report to, so a single trace shows the whole journey.

Every event carries **two clocks**:

* *virtual* time (``vt``) — the simulator clock, in the engine's native
  unit (virtual seconds; the Chrome-trace exporter converts to µs).
  Virtual stamps are a pure function of the simulated schedule, so
  traces are replay-deterministic: the same workload produces the same
  virtual timeline on every run and every machine.
* *wall* time (``wall``) — ``time.perf_counter()`` at record time, for
  profiling the simulator itself.  Wall stamps are advisory and
  excluded from determinism comparisons.

Disabled cost contract: the hot paths guard every tracer call with a
single ``if tracer.enabled:`` attribute test, the cheapest check Python
offers.  ``NULL_TRACER`` (the module default) additionally short-circuits
``span()`` to a shared no-op span, so even unguarded call sites allocate
nothing.  sim-bench asserts the end-to-end cost of the disabled path is
< 5% of an untraced run.

Tracers reach engines created deep inside harness code through a
module-level default: :func:`use_tracer` installs a tracer for a
``with`` block, :func:`current_tracer` reads it, and
``SimEngine.__init__`` / ``SchedulerService.__init__`` pick it up
automatically.  Explicit ``tracer=`` parameters override the default.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


class TraceEvent:
    """One recorded event.

    ``ph`` follows the Chrome Trace Event phase vocabulary: ``"X"`` for
    complete spans (has a duration), ``"i"`` for instants.  ``vt`` /
    ``dur`` are virtual µs; ``wall`` / ``wall_dur`` are host-process
    seconds from ``perf_counter``.  ``depth`` is the span-nesting level
    within the event's track at record time (0 = top level), letting
    exporters and tests check nesting without replaying the stack.
    """

    __slots__ = (
        "name", "track", "ph", "vt", "dur",
        "wall", "wall_dur", "depth", "attrs",
    )

    def __init__(
        self,
        name: str,
        track: str,
        ph: str,
        vt: float,
        dur: float,
        wall: float,
        wall_dur: float,
        depth: int,
        attrs: dict | None,
    ) -> None:
        self.name = name
        self.track = track
        self.ph = ph
        self.vt = vt
        self.dur = dur
        self.wall = wall
        self.wall_dur = wall_dur
        self.depth = depth
        self.attrs = attrs

    def to_dict(self) -> dict:
        """Flat JSON-ready form (the JSONL exporter's row shape)."""
        out = {
            "name": self.name,
            "track": self.track,
            "ph": self.ph,
            "vt": self.vt,
            "dur": self.dur,
            "wall": self.wall,
            "wall_dur": self.wall_dur,
            "depth": self.depth,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceEvent {self.track}/{self.name}"
            f" vt={self.vt} dur={self.dur}>"
        )


class Span:
    """An open span, closed by ``__exit__`` (or :meth:`close`).

    Virtual timestamps come from the ``clock`` callable sampled at open
    and close; :meth:`annotate` adds attributes mid-flight (e.g. the
    chosen slot, once placement decides).
    """

    __slots__ = (
        "_tracer", "name", "track", "_clock",
        "_vt_start", "_wall_start", "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str,
        clock: Callable[[], float] | None,
        attrs: dict | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self._clock = clock
        self._vt_start = clock() if clock is not None else 0.0
        self._wall_start = time.perf_counter()
        self.attrs = attrs

    def annotate(self, **attrs) -> "Span":
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        tracer = self._tracer
        vt_end = (
            self._clock() if self._clock is not None else self._vt_start
        )
        depths = tracer._depths
        depth = depths.get(self.track, 1) - 1
        depths[self.track] = depth
        tracer.events.append(
            TraceEvent(
                self.name,
                self.track,
                "X",
                self._vt_start,
                vt_end - self._vt_start,
                self._wall_start,
                time.perf_counter() - self._wall_start,
                depth,
                self.attrs,
            )
        )


class _NullSpan:
    """The shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` s from every instrumented layer.

    A tracer constructed with ``enabled=False`` behaves exactly like
    :data:`NULL_TRACER`: every method is a no-op and nothing is
    allocated.  This is how the sim-bench overhead pair measures the
    disabled path explicitly.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        #: engines registered via :meth:`attach_engine`, in attach
        #: order — the Chrome-trace exporter reads their timelines for
        #: per-device tracks.
        self.engines: list = []
        #: open-span depth per track (span nesting bookkeeping)
        self._depths: dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        track: str = "host",
        clock: Callable[[], float] | None = None,
        **attrs,
    ):
        """Open a nested span on ``track``; close it via ``with`` or
        ``.close()``.  ``clock`` supplies virtual time (sampled at open
        and close); without one the span records vt 0/dur 0 and is a
        wall-time-only span."""
        if not self.enabled:
            return _NULL_SPAN
        self._depths[track] = self._depths.get(track, 0) + 1
        return Span(self, name, track, clock, attrs or None)

    def instant(
        self,
        name: str,
        *,
        track: str = "host",
        vt: float = 0.0,
        **attrs,
    ) -> None:
        """Record a zero-duration marker (e.g. a repricing event)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self.events.append(
            TraceEvent(
                name, track, "i", vt, 0.0, now, 0.0,
                self._depths.get(track, 0), attrs or None,
            )
        )

    def complete(
        self,
        name: str,
        *,
        track: str = "host",
        vt_start: float = 0.0,
        vt_end: float = 0.0,
        **attrs,
    ) -> None:
        """Record a span post-hoc from known virtual endpoints.

        This is the hot-path form: op completion and coherence-window
        flushes know their exact virtual interval only after the fact,
        so they emit one ``complete()`` call instead of holding a
        context manager open across simulator internals.
        """
        if not self.enabled:
            return
        now = time.perf_counter()
        self.events.append(
            TraceEvent(
                name, track, "X", vt_start, vt_end - vt_start,
                now, 0.0, self._depths.get(track, 0), attrs or None,
            )
        )

    # -- engine registry ---------------------------------------------------

    def attach_engine(self, engine, name: str | None = None) -> None:
        """Register ``engine`` so exporters can pull its
        :class:`~repro.gpusim.timeline.Timeline` into per-device
        tracks.  Idempotent; ``name`` becomes the track prefix
        (default ``engine<ordinal>``)."""
        if not self.enabled:
            return
        if any(e is engine for e in self.engines):
            return
        engine._obs_name = name or f"engine{len(self.engines)}"
        self.engines.append(engine)

    def clear(self) -> None:
        self.events.clear()
        self.engines.clear()
        self._depths.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} events={len(self.events)}>"


class NullTracer(Tracer):
    """The shared always-off tracer; the module default.

    A distinct type (not just ``Tracer(enabled=False)``) so the
    determinism suite can distinguish *absent* (this default) from
    *explicitly disabled* — the acceptance criteria require both to be
    bit-identical with the enabled path.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def span(self, name, **kwargs):
        return _NULL_SPAN

    def instant(self, name, **kwargs) -> None:
        pass

    def complete(self, name, **kwargs) -> None:
        pass

    def attach_engine(self, engine, name=None) -> None:
        pass


NULL_TRACER = NullTracer()

_default_tracer: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The process-wide default tracer (``NULL_TRACER`` unless
    :func:`set_default_tracer` / :func:`use_tracer` installed one).
    Engines and services read this at construction time."""
    return _default_tracer


def set_default_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the default (``None`` restores
    ``NULL_TRACER``); returns the previous default."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer]:
    """Scope a default tracer to a ``with`` block — the way harness
    entry points thread one tracer through engines they never
    construct directly."""
    previous = set_default_tracer(tracer)
    try:
        yield _default_tracer
    finally:
        set_default_tracer(previous)


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "set_default_tracer",
    "use_tracer",
]
