"""The counter/gauge registry of the observability subsystem.

Every layer of the stack kept its own ad-hoc tallies — ``steps`` /
``repricings`` ints on :class:`~repro.gpusim.engine.SimEngine`,
``*_bytes_total`` floats on
:class:`~repro.memory.coherence.CoherenceEngine`, capture hit/miss ints
on the serving cache.  A :class:`CounterRegistry` absorbs them behind
one namespaced API without slowing the hot paths that bump them: the
registry hands out :class:`Counter` cells once, and the owner increments
``cell.value`` directly — the same cost as the plain attribute it
replaces (one attribute load and an in-place add), with no per-increment
dict lookup.

Naming convention: dotted namespaces, lowest component last —
``engine.steps``, ``coherence.htod_bytes``, ``serve.capture_hits``,
``coherence.window_flush.pre-sync``.  :meth:`CounterRegistry.snapshot`
returns a flat, name-sorted dict (deterministic: counters accumulate
from deterministic simulation events only), and
:meth:`CounterRegistry.merge` folds one registry into another — the
serving layer merges each retired request's coherence counters into its
fleet slot, and the slots into the service-level summary.
"""

from __future__ import annotations

from typing import Iterator


class Counter:
    """One named, monotonically written cell of a registry.

    ``value`` is public on purpose: hot paths (the engine step loop, the
    coherence submit path) do ``cell.value += 1`` instead of calling
    through the registry.  Gauges are just counters whose owner assigns
    instead of adding.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, delta: float = 1) -> None:
        self.value += delta

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class CounterRegistry:
    """A flat namespace of :class:`Counter` cells.

    Registries are cheap (one dict); every component that needs private
    tallies owns one, and aggregation happens by :meth:`merge` rather
    than by sharing cells — so per-instance introspection (one request's
    coherence engine, one engine's step counts) keeps working even when
    many instances feed one roll-up.
    """

    def __init__(self) -> None:
        self._cells: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Create-or-get the cell for ``name``."""
        cell = self._cells.get(name)
        if cell is None:
            cell = Counter(name)
            self._cells[name] = cell
        return cell

    def inc(self, name: str, delta: float = 1) -> None:
        self.counter(name).value += delta

    def set(self, name: str, value: float) -> None:
        """Gauge write: assign instead of accumulate."""
        self.counter(name).value = value

    def set_max(self, name: str, value: float) -> None:
        """High-watermark gauge: keep the largest value seen."""
        cell = self.counter(name)
        if value > cell.value:
            cell.value = value

    def get(self, name: str, default: float = 0) -> float:
        cell = self._cells.get(name)
        return default if cell is None else cell.value

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._cells.values())

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._cells if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Name-sorted flat view, optionally restricted to ``prefix``."""
        return {
            name: self._cells[name].value for name in self.names(prefix)
        }

    def merge(self, other: "CounterRegistry", prefix: str = "") -> None:
        """Accumulate every cell of ``other`` into this registry,
        optionally re-namespaced under ``prefix``."""
        for cell in other:
            self.counter(prefix + cell.name).value += cell.value

    def clear(self) -> None:
        self._cells.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterRegistry {len(self._cells)} cells>"
