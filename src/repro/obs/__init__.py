"""``repro.obs`` — the structured observability subsystem.

Three pieces, all dependency-free leaves of the package graph:

* :mod:`repro.obs.trace` — the span tracer: nested,
  zero-alloc-when-disabled spans stamped with virtual *and* wall time,
  threaded through the scheduler service, fleet, coherence engine and
  simulator core.
* :mod:`repro.obs.counters` — the counter/gauge registry that absorbs
  the per-layer ad-hoc tallies behind one namespaced API
  (``engine.steps``, ``coherence.htod_bytes``, ``serve.capture_hits``…),
  surfaced via ``Session.metrics()`` and the serve-bench JSON summary.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON and flat JSONL
  exporters plus the schema validator CI runs
  (``python -m repro.obs.export trace.json``).
"""

from repro.obs.counters import Counter, CounterRegistry
from repro.obs.export import (
    build_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    current_tracer,
    set_default_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "CounterRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "build_chrome_trace",
    "current_tracer",
    "set_default_tracer",
    "use_tracer",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
