"""Polyglot front-end.

GrCUDA exposes the GPU to every GraalVM language through
``polyglot.eval("grcuda", expression)`` (the paper's Fig. 4).  This
package reproduces that entry point: array-type expressions allocate
UM-backed arrays, and built-in identifiers expose runtime functions such
as ``buildkernel`` — so host code can be written exactly like the
paper's Python listing.
"""

from repro.lang.polyglot import Polyglot

__all__ = ["Polyglot"]
