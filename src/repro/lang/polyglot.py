"""``polyglot.eval("grcuda", ...)`` — the GrCUDA DSL entry point.

Supported expressions (the subset the paper's listings use, plus the
customary GrCUDA built-ins):

* ``"float[100]"`` / ``"double[10][20]"`` / ``"int[5]"`` — allocate a
  UM-backed :class:`DeviceArray` of the given element type and shape;
  sizes may be any integer expression-free literal;
* ``"buildkernel"`` — returns the kernel factory,
  ``buildkernel(code, name, signature)``;
* ``"DeviceArray"`` — returns the array factory,
  ``DeviceArray(type_name, *dims)``;
* ``"cudaDeviceSynchronize"`` — returns the device-sync function.
"""

from __future__ import annotations

import re
from typing import Any, Callable

import numpy as np

from repro.session import Session
from repro.errors import PolyglotError
from repro.kernels.profile import CostModel
from repro.memory.array import DeviceArray

#: NIDL/GrCUDA element types -> numpy dtypes
_TYPE_MAP = {
    "float": np.float32,
    "float32": np.float32,
    "double": np.float64,
    "float64": np.float64,
    "int": np.int32,
    "sint32": np.int32,
    "uint32": np.uint32,
    "sint64": np.int64,
    "long": np.int64,
    "char": np.int8,
    "bool": np.bool_,
}

_ARRAY_RE = re.compile(
    r"^\s*(?P<type>[a-zA-Z_][a-zA-Z0-9_]*)\s*(?P<dims>(\[\s*\d+\s*\])+)\s*$"
)
_DIM_RE = re.compile(r"\[\s*(\d+)\s*\]")


class Polyglot:
    """A polyglot context bound to one :class:`~repro.session.Session`.

    Mirrors the host-language view of GraalVM's ``polyglot`` module::

        poly = Polyglot(Session(gpus=2))
        X = poly.eval("grcuda", "float[{}]".format(N))
        buildkernel = poly.eval("grcuda", "buildkernel")
        K1 = buildkernel(K1_CODE, "square", "ptr, sint32")
        K1(NUM_BLOCKS, NUM_THREADS)(X, N)

    The DSL program never names a device: the same expressions reach a
    single GPU or a multi-GPU fleet depending only on the session's
    configuration (a ``GrCUDARuntime`` is accepted too — it *is* a
    1-GPU session).
    """

    LANGUAGE = "grcuda"

    def __init__(self, runtime: Session) -> None:
        self.runtime = runtime
        self._builtins: dict[str, Any] = {
            "buildkernel": self._buildkernel,
            "DeviceArray": self._device_array,
            "cudaDeviceSynchronize": self.runtime.sync,
        }

    def eval(self, language: str, expression: str) -> Any:
        """Evaluate a GrCUDA DSL expression."""
        if language != self.LANGUAGE:
            raise PolyglotError(
                f"unknown polyglot language {language!r}; this runtime"
                f" only provides {self.LANGUAGE!r}"
            )
        expression = expression.strip()
        if expression in self._builtins:
            return self._builtins[expression]
        match = _ARRAY_RE.match(expression)
        if match:
            return self._alloc_from_match(match)
        raise PolyglotError(
            f"cannot evaluate grcuda expression {expression!r}; expected"
            " an array type like 'float[100]' or one of "
            + ", ".join(sorted(self._builtins))
        )

    # -- helpers ---------------------------------------------------------

    def _alloc_from_match(self, match: re.Match) -> DeviceArray:
        type_name = match.group("type")
        if type_name not in _TYPE_MAP:
            raise PolyglotError(
                f"unknown element type {type_name!r}; known: "
                + ", ".join(sorted(_TYPE_MAP))
            )
        dims = tuple(int(d) for d in _DIM_RE.findall(match.group("dims")))
        if any(d <= 0 for d in dims):
            raise PolyglotError(f"array dimensions must be positive: {dims}")
        shape = dims if len(dims) > 1 else dims[0]
        return self.runtime.array(shape, dtype=_TYPE_MAP[type_name])

    def _device_array(self, type_name: str, *dims: int) -> DeviceArray:
        """GrCUDA's ``DeviceArray`` built-in: positional dimensions."""
        expr = type_name + "".join(f"[{int(d)}]" for d in dims)
        return self.eval(self.LANGUAGE, expr)

    def _buildkernel(
        self,
        code: Callable[..., None] | str,
        name: str,
        signature: str,
        cost_model: CostModel | None = None,
    ):
        """GrCUDA's ``buildkernel`` built-in.

        ``code`` plays the role of the CUDA source: either a Python
        callable (the functional implementation) or the name of a
        registered kernel.
        """
        return self.runtime.build_kernel(
            code, name, signature, cost_model=cost_model
        )
