"""repro — reproduction of "DAG-based Scheduling with Resource Sharing
for Multi-task Applications in a Polyglot GPU Runtime" (IPDPS 2021).

The package implements the paper's runtime GPU scheduler (automatic
dependency inference, transparent streams/events, transfer-computation
overlap, space-sharing) on top of a discrete-event GPU simulator, plus
the full benchmark suite and every experiment of the evaluation section.

Quickstart::

    from repro import GrCUDARuntime

    rt = GrCUDARuntime(gpu="Tesla P100")
    x = rt.array(1_000_000)
    square = rt.build_kernel(lambda a, n: np.square(a, out=a),
                             "square", "ptr, sint32")
    square(256, 256)(x, 1_000_000)
    value = x[0]      # host access; the scheduler syncs just enough
"""

from repro.core.runtime import GrCUDARuntime
from repro.core.policies import (
    ExecutionPolicy,
    NewStreamPolicy,
    ParentStreamPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro.gpusim.specs import (
    ALL_GPUS,
    GTX960,
    GTX1660_SUPER,
    TESLA_P100,
    GPUSpec,
    gpu_by_name,
)
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine, MovementPolicy

__version__ = "1.0.0"

__all__ = [
    "GrCUDARuntime",
    "ExecutionPolicy",
    "NewStreamPolicy",
    "ParentStreamPolicy",
    "PrefetchPolicy",
    "SchedulerConfig",
    "ALL_GPUS",
    "GTX960",
    "GTX1660_SUPER",
    "TESLA_P100",
    "GPUSpec",
    "gpu_by_name",
    "AccessKind",
    "DeviceArray",
    "CoherenceEngine",
    "MovementPolicy",
    "__version__",
]
