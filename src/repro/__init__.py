"""repro — reproduction of "DAG-based Scheduling with Resource Sharing
for Multi-task Applications in a Polyglot GPU Runtime" (IPDPS 2021).

The package implements the paper's runtime GPU scheduler (automatic
dependency inference, transparent streams/events, transfer-computation
overlap, space-sharing) on top of a discrete-event GPU simulator, plus
the full benchmark suite and every experiment of the evaluation section.

Quickstart::

    from repro import Session

    sess = Session(gpu="Tesla P100")       # gpus=2 for a fleet
    x = sess.array(1_000_000)
    square = sess.build_kernel(lambda a, n: np.square(a, out=a),
                               "square", "ptr, sint32")
    square(256, 256)(x, 1_000_000)
    value = x[0]      # host access; the scheduler syncs just enough

:class:`Session` is the single entry point: ``gpus=1`` runs the paper's
single-GPU scheduler, ``gpus>1`` the section-VI multi-GPU extension, and
:mod:`repro.serve` multiplexes many tenants over a pool of sessions —
all configured through one :class:`SchedulerConfig`.  The legacy
``GrCUDARuntime`` / ``MultiGpuScheduler`` classes remain as deprecation
shims.
"""

from repro.session import Session, SessionMetrics
from repro.core.runtime import GrCUDARuntime
from repro.core.policies import (
    AdmissionPolicy,
    DevicePlacementPolicy,
    ExecutionPolicy,
    NewStreamPolicy,
    ParentStreamPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro.errors import ConfigError
from repro.gpusim.specs import (
    ALL_GPUS,
    GTX960,
    GTX1660_SUPER,
    TESLA_P100,
    GPUSpec,
    gpu_by_name,
)
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine, MovementPolicy
from repro.obs import (
    NULL_TRACER,
    CounterRegistry,
    Tracer,
    current_tracer,
    set_default_tracer,
    use_tracer,
    write_chrome_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Session",
    "SessionMetrics",
    "GrCUDARuntime",
    "AdmissionPolicy",
    "ConfigError",
    "DevicePlacementPolicy",
    "ExecutionPolicy",
    "NewStreamPolicy",
    "ParentStreamPolicy",
    "PrefetchPolicy",
    "SchedulerConfig",
    "ALL_GPUS",
    "GTX960",
    "GTX1660_SUPER",
    "TESLA_P100",
    "GPUSpec",
    "gpu_by_name",
    "AccessKind",
    "DeviceArray",
    "CoherenceEngine",
    "MovementPolicy",
    "NULL_TRACER",
    "CounterRegistry",
    "Tracer",
    "current_tracer",
    "set_default_tracer",
    "use_tracer",
    "write_chrome_trace",
    "__version__",
]
