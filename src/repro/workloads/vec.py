"""VEC — Vector Squares (section V-B, Fig. 4).

"A simple benchmark that measures a basic case of task-level parallelism
and computes the sum of differences of 2 squared vectors.  Each iteration
has new input data, simulating a streaming computation that requires
transfer from CPU to GPU."

DAG per iteration::

    square(X)   square(Y)        (independent -> two streams)
         \\        /
        reduce(X, Y, res)         (X, Y read-only)

Both kernels are memory-bound; the parallel scheduler's gain comes from
overlapping the two input transfers with computation (pure TC/CT overlap,
no compute-compute gain — exactly Fig. 12's "VEC does not have any
increase in memory throughput").
"""

from __future__ import annotations

import numpy as np

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec


def _square(x: np.ndarray, n: int) -> None:
    np.square(x[:n], out=x[:n])


def _reduce(x: np.ndarray, y: np.ndarray, res: np.ndarray, n: int) -> None:
    res[0] = float(np.sum(x[:n] - y[:n], dtype=np.float64))


class VectorSquares(Benchmark):
    """VEC: two elementwise squares feeding a sum-of-differences."""

    name = "vec"
    description = (
        "Sum of differences of two squared vectors; streaming inputs"
    )

    def array_specs(self) -> dict[str, ArraySpec]:
        n = self.scale
        return {
            "x": ArraySpec(n, np.float32),
            "y": ArraySpec(n, np.float32),
            "res": ArraySpec(1, np.float32),
        }

    def kernel_specs(self) -> list[KernelSpec]:
        return [
            KernelSpec(
                name="square",
                signature="ptr, sint32",
                fn=_square,
                # 1 FLOP, read+write 4 B each: purely memory-bound.
                cost=LinearCostModel(
                    flops_per_item=1.0,
                    dram_bytes_per_item=8.0,
                    l2_bytes_per_item=8.0,
                    instructions_per_item=4.0,
                ),
            ),
            KernelSpec(
                name="reduce",
                signature="const ptr, const ptr, ptr, sint32",
                fn=_reduce,
                # Reads both vectors; the scalar result is negligible.
                cost=LinearCostModel(
                    flops_per_item=2.0,
                    dram_bytes_per_item=8.0,
                    l2_bytes_per_item=8.0,
                    instructions_per_item=6.0,
                ),
            ),
        ]

    def invocations(self) -> list[Invocation]:
        n = self.scale
        g, b = self.num_blocks, self.block_size
        return [
            Invocation("square", g, b, ("x", n)),
            Invocation("square", g, b, ("y", n)),
            Invocation("reduce", g, b, ("x", "y", "res", n)),
        ]

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        rng = self.rng(iteration)
        self.load_input(
            iteration,
            arrays["x"],
            lambda: rng.uniform(0.0, 2.0, self.scale).astype(np.float32),
            record="x",
        )
        self.load_input(
            iteration,
            arrays["y"],
            lambda: rng.uniform(0.0, 2.0, self.scale).astype(np.float32),
            record="y",
        )

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(arrays["res"][0])

    def reference(self, iteration: int) -> float:
        ins = self.inputs(iteration)
        x64 = ins["x"].astype(np.float32)
        y64 = ins["y"].astype(np.float32)
        return float(
            np.sum(
                np.square(x64) - np.square(y64), dtype=np.float64
            ).astype(np.float32)
        )
