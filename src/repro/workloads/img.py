"""IMG — Image Processing (section V-B).

"An image processing pipeline that combines a sharpened picture with
copies blurred at low and medium frequencies, to sharpen the edges,
soften everything else, and enhance the subject.  The benchmark has
complex dependencies on 4 streams."

DAG per iteration (Fig. 6)::

    blur_small(img)──sobel(bs→ms)────────────────────────┐
    blur_large(img)──sobel(bl→ml)──max┐                  │
                                  ──min┴─extend(ml)──┐   │
    blur_unsharpen(img)──unsharpen(img,bu→iu)─────────┤   │
                               combine(iu,bl,ml→i2)───┴───┤
                               combine(i2,bs,ms→i3)───────┘

The blur kernels tile through shared memory and are occupancy-limited
(``sm_fraction_cap`` < 1): run serially they leave SMs idle, which is
the space-sharing headroom behind IMG's speedup (section V-F: "the
overlap of kernels that leave a large amount of shared memory unused if
executed serially explains the speedup in IMG").
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec

SIGMA_SMALL = 1.0
SIGMA_LARGE = 4.0
SIGMA_UNSHARPEN = 2.0
UNSHARPEN_AMOUNT = 0.5


def _blur(sigma: float):
    def blur(image: np.ndarray, out: np.ndarray, side: int) -> None:
        out[:, :] = ndimage.gaussian_filter(image, sigma=sigma)

    return blur


def _sobel(image: np.ndarray, out: np.ndarray, side: int) -> None:
    gx = ndimage.sobel(image, axis=0, mode="nearest")
    gy = ndimage.sobel(image, axis=1, mode="nearest")
    out[:, :] = np.hypot(gx, gy)


def _maximum(image: np.ndarray, out: np.ndarray, side: int) -> None:
    out[0] = float(image.max())


def _minimum(image: np.ndarray, out: np.ndarray, side: int) -> None:
    out[0] = float(image.min())


def _extend(
    mask: np.ndarray, lo: np.ndarray, hi: np.ndarray, side: int
) -> None:
    span = float(hi[0] - lo[0]) or 1.0
    np.clip((mask - lo[0]) * (5.0 / span), 0.0, 1.0, out=mask)


def _unsharpen(
    image: np.ndarray,
    blurred: np.ndarray,
    out: np.ndarray,
    amount: float,
    side: int,
) -> None:
    np.clip(
        image * (1.0 + amount) - blurred * amount, 0.0, 1.0, out=out
    )


def _combine(
    a: np.ndarray,
    b: np.ndarray,
    mask: np.ndarray,
    out: np.ndarray,
    side: int,
) -> None:
    out[:, :] = a * mask + b * (1.0 - mask)


class ImageProcessing(Benchmark):
    """IMG: low/medium-frequency blurs + sharpening, merged by masks."""

    name = "img"
    description = (
        "Sharpen edges and soften background via blurred copies and"
        " gradient masks; 4-stream pipeline"
    )

    def array_specs(self) -> dict[str, ArraySpec]:
        s = self.scale
        img = ArraySpec((s, s), np.float32)
        scalar = ArraySpec(1, np.float32)
        return {
            "image": img,
            "blurred_small": img,
            "mask_small": img,
            "blurred_large": img,
            "mask_large": img,
            "blurred_unsharpen": img,
            "image_unsharpened": img,
            "image2": img,
            "image3": img,
            "minimum": scalar,
            "maximum": scalar,
        }

    def kernel_specs(self) -> list[KernelSpec]:
        blur_cost = dict(
            dram_bytes_per_item=8.0,
            instructions_per_item=30.0,
            sm_fraction_cap=0.6,  # shared-memory tiles limit occupancy
        )
        return [
            KernelSpec(
                "blur_small", "const ptr, ptr, sint32", _blur(SIGMA_SMALL),
                LinearCostModel(
                    flops_per_item=18.0, l2_bytes_per_item=44.0, **blur_cost
                ),
            ),
            KernelSpec(
                "blur_large", "const ptr, ptr, sint32", _blur(SIGMA_LARGE),
                LinearCostModel(
                    flops_per_item=50.0, l2_bytes_per_item=80.0, **blur_cost
                ),
            ),
            KernelSpec(
                "blur_unsharpen", "const ptr, ptr, sint32",
                _blur(SIGMA_UNSHARPEN),
                LinearCostModel(
                    flops_per_item=30.0, l2_bytes_per_item=60.0, **blur_cost
                ),
            ),
            KernelSpec(
                "sobel", "const ptr, ptr, sint32", _sobel,
                LinearCostModel(
                    flops_per_item=25.0,
                    dram_bytes_per_item=8.0,
                    l2_bytes_per_item=40.0,
                    instructions_per_item=20.0,
                    sm_fraction_cap=0.75,
                ),
            ),
            KernelSpec(
                "maximum", "const ptr, ptr, sint32", _maximum,
                LinearCostModel(
                    flops_per_item=1.0,
                    dram_bytes_per_item=4.0,
                    instructions_per_item=4.0,
                ),
            ),
            KernelSpec(
                "minimum", "const ptr, ptr, sint32", _minimum,
                LinearCostModel(
                    flops_per_item=1.0,
                    dram_bytes_per_item=4.0,
                    instructions_per_item=4.0,
                ),
            ),
            KernelSpec(
                "extend", "ptr, const ptr, const ptr, sint32", _extend,
                LinearCostModel(
                    flops_per_item=5.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=6.0,
                ),
            ),
            KernelSpec(
                "unsharpen",
                "const ptr, const ptr, ptr, float, sint32",
                _unsharpen,
                LinearCostModel(
                    flops_per_item=6.0,
                    dram_bytes_per_item=12.0,
                    instructions_per_item=8.0,
                ),
            ),
            KernelSpec(
                "combine",
                "const ptr, const ptr, const ptr, ptr, sint32",
                _combine,
                LinearCostModel(
                    flops_per_item=4.0,
                    dram_bytes_per_item=16.0,
                    l2_bytes_per_item=16.0,
                    instructions_per_item=8.0,
                ),
            ),
        ]

    def invocations(self) -> list[Invocation]:
        s = self.scale
        g2 = (self.num_blocks_2d, self.num_blocks_2d)
        b2 = (self.block_size_2d, self.block_size_2d)
        g1, b1 = self.num_blocks, self.block_size
        return [
            Invocation("blur_small", g2, b2, ("image", "blurred_small", s)),
            Invocation("blur_large", g2, b2, ("image", "blurred_large", s)),
            Invocation(
                "blur_unsharpen", g2, b2, ("image", "blurred_unsharpen", s)
            ),
            Invocation("sobel", g2, b2, ("blurred_small", "mask_small", s)),
            Invocation("sobel", g2, b2, ("blurred_large", "mask_large", s)),
            Invocation("maximum", g1, b1, ("mask_large", "maximum", s)),
            Invocation("minimum", g1, b1, ("mask_large", "minimum", s)),
            Invocation(
                "extend", g1, b1, ("mask_large", "minimum", "maximum", s)
            ),
            Invocation(
                "unsharpen",
                g2,
                b2,
                (
                    "image",
                    "blurred_unsharpen",
                    "image_unsharpened",
                    UNSHARPEN_AMOUNT,
                    s,
                ),
            ),
            Invocation(
                "combine",
                g2,
                b2,
                (
                    "image_unsharpened",
                    "blurred_large",
                    "mask_large",
                    "image2",
                    s,
                ),
            ),
            Invocation(
                "combine",
                g2,
                b2,
                ("image2", "blurred_small", "mask_small", "image3", s),
            ),
        ]

    @property
    def num_blocks_2d(self) -> int:
        return 48

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        rng = self.rng(iteration)
        self.load_input(
            iteration,
            arrays["image"],
            lambda: rng.uniform(
                0.0, 1.0, (self.scale, self.scale)
            ).astype(np.float32),
            record="image",
        )

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(np.sum(arrays["image3"][0], dtype=np.float64))

    def reference(self, iteration: int) -> float:
        image = self.inputs(iteration)["image"].astype(np.float32)
        side = self.scale
        bs = np.empty_like(image)
        bl = np.empty_like(image)
        bu = np.empty_like(image)
        _blur(SIGMA_SMALL)(image, bs, side)
        _blur(SIGMA_LARGE)(image, bl, side)
        _blur(SIGMA_UNSHARPEN)(image, bu, side)
        ms = np.empty_like(image)
        ml = np.empty_like(image)
        _sobel(bs, ms, side)
        _sobel(bl, ml, side)
        lo = np.array([ml.min()], dtype=np.float32)
        hi = np.array([ml.max()], dtype=np.float32)
        _extend(ml, lo, hi, side)
        iu = np.empty_like(image)
        _unsharpen(image, bu, iu, UNSHARPEN_AMOUNT, side)
        i2 = np.empty_like(image)
        _combine(iu, bl, ml, i2, side)
        i3 = np.empty_like(image)
        _combine(i2, bs, ms, i3, side)
        return float(np.sum(i3[0], dtype=np.float64))
