"""B&S — Black & Scholes (section V-B).

"Black & Scholes equation for European call options, for 10 underlying
stocks, and 10 vectors of prices.  Adapted [from the CUDA samples] to
simulate a computationally intensive streaming benchmark with
double-precision arithmetic and many independent kernels that can be
overlapped with no dependencies."

DAG per iteration: 10 fully independent ``bs(x_i) -> y_i`` chains, one
per stock (Fig. 6).  The kernels are FP64-bound: on consumer GPUs they
saturate the scarce double-precision units (so concurrent execution
yields little CC gain and the benchmark sits at 15-20 % of its
contention-free bound, Fig. 9); on the P100 the computation is fast
enough to hide entirely behind the PCIe transfers (high CT overlap and
the best speedups of Fig. 7).
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec

#: Option parameters (the CUDA sample's fixed rate/volatility setup).
RISK_FREE = 0.02
VOLATILITY = 0.30
STRIKE = 30.0
MATURITY = 1.0

NUM_STOCKS = 10


def black_scholes_call(prices: np.ndarray) -> np.ndarray:
    """Closed-form European call price for unit maturity (float64)."""
    s = prices.astype(np.float64)
    sqrt_t = np.sqrt(MATURITY)
    d1 = (
        np.log(s / STRIKE)
        + (RISK_FREE + 0.5 * VOLATILITY**2) * MATURITY
    ) / (VOLATILITY * sqrt_t)
    d2 = d1 - VOLATILITY * sqrt_t
    return s * ndtr(d1) - STRIKE * np.exp(-RISK_FREE * MATURITY) * ndtr(d2)


def _bs_kernel(x: np.ndarray, y: np.ndarray, n: int) -> None:
    y[:n] = black_scholes_call(x[:n])


class BlackScholes(Benchmark):
    """B&S: ten independent double-precision option-pricing chains."""

    name = "b&s"
    description = (
        "European call options for 10 stocks; FP64-heavy, no dependencies"
    )

    def array_specs(self) -> dict[str, ArraySpec]:
        n = self.scale
        specs: dict[str, ArraySpec] = {}
        for i in range(NUM_STOCKS):
            specs[f"x{i}"] = ArraySpec(n, np.float64)
            specs[f"y{i}"] = ArraySpec(n, np.float64)
        return specs

    def kernel_specs(self) -> list[KernelSpec]:
        return [
            KernelSpec(
                name="bs",
                signature="const ptr double, ptr double, sint32",
                fn=_bs_kernel,
                # log, exp, sqrt and two ndtr evaluations expand to ~180
                # FP64 operations per option (transcendentals are
                # multi-instruction sequences); 8 B in + 8 B out.
                cost=LinearCostModel(
                    flops_per_item=180.0,
                    dram_bytes_per_item=16.0,
                    l2_bytes_per_item=16.0,
                    instructions_per_item=180.0,
                    fp64=True,
                ),
            )
        ]

    def invocations(self) -> list[Invocation]:
        n = self.scale
        g, b = self.num_blocks, self.block_size
        return [
            Invocation("bs", g, b, (f"x{i}", f"y{i}", n))
            for i in range(NUM_STOCKS)
        ]

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        rng = self.rng(iteration)
        for i in range(NUM_STOCKS):
            self.load_input(
                iteration,
                arrays[f"x{i}"],
                lambda: rng.uniform(20.0, 40.0, self.scale),
                record=f"x{i}",
            )

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(
            sum(float(arrays[f"y{i}"][0]) for i in range(NUM_STOCKS))
        )

    def reference(self, iteration: int) -> float:
        ins = self.inputs(iteration)
        return float(
            sum(
                black_scholes_call(ins[f"x{i}"][:1])[0]
                for i in range(NUM_STOCKS)
            )
        )
