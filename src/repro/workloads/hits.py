"""HITS — hubs and authorities (section V-B).

"It computes the HITS algorithm on a graph using repeated sparse
matrix-vector multiplication on a matrix and its transpose [LightSpMV].
It contains complex cross-synchronizations and multiple iterations."

DAG per HITS step (Fig. 6)::

    spmv(Aᵀ, hub → auth2) ── sum(auth2 → na) ── divide(auth2/na → auth)
    spmv(A,  auth → hub2) ── sum(hub2 → nh) ── divide(hub2/nh → hub)

The two chains overlap, but each step's ``divide`` writes the vector the
*other* chain's next ``spmv`` reads — the cross-synchronizations that
limit HITS's speedup (1.13-1.38x in Fig. 11).

SpMV kernels are memory/L2-bound (CSR traversal); two concurrent SpMVs
contend on DRAM bandwidth, so space-sharing gains are modest — matching
Fig. 12's small HITS deltas.

The graph is a synthetic uniform-degree random digraph in CSR form; the
CSR arrays are uploaded once and shared read-only by both chains.
Functionally the multiplication uses a scipy.sparse matrix built from
the same CSR data (documented substitution: a Python-loop CSR walk would
be orders of magnitude too slow for the test suite while computing the
identical result).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec

AVG_DEGREE = 3


def build_csr(n: int, degree: int, seed: int) -> sparse.csr_matrix:
    """Uniform-degree random digraph (LightSpMV-style CSR input).

    32-bit indices, like LightSpMV's CSR: the paper's largest HITS input
    (1.4e8 vertices, Table I's 9.9 GB) only fits the P100 this way.
    """
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, n, size=n * degree, dtype=np.int32)
    indptr = np.arange(0, n * degree + 1, degree, dtype=np.int32)
    data = np.ones(n * degree, dtype=np.float32)
    return sparse.csr_matrix((data, cols, indptr), shape=(n, n))


class HITS(Benchmark):
    """HITS: iterated SpMV on a matrix and its transpose."""

    name = "hits"
    description = (
        "Kleinberg's HITS via repeated SpMV on A and Aᵀ;"
        " cross-synchronized chains"
    )

    #: HITS power-iteration steps per benchmark iteration ("multiple
    #: iterations" within one execution; amortizes the CSR upload).
    inner_steps = 10

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._a_cache: sparse.csr_matrix | None = None
        self._at_cache: sparse.csr_matrix | None = None

    @property
    def _a(self) -> sparse.csr_matrix:
        """The adjacency matrix; built lazily (timing-only sweeps at
        paper scales never need the actual graph data)."""
        if self._a_cache is None:
            self._a_cache = build_csr(self.scale, AVG_DEGREE, self.seed)
        return self._a_cache

    @property
    def _at(self) -> sparse.csr_matrix:
        if self._at_cache is None:
            self._at_cache = self._a.T.tocsr()
        return self._at_cache

    def array_specs(self) -> dict[str, ArraySpec]:
        n = self.scale
        nnz = n * AVG_DEGREE
        return {
            "a_row": ArraySpec(n + 1, np.int32),
            "a_col": ArraySpec(nnz, np.int32),
            "a_val": ArraySpec(nnz, np.float32),
            "at_row": ArraySpec(n + 1, np.int32),
            "at_col": ArraySpec(nnz, np.int32),
            "at_val": ArraySpec(nnz, np.float32),
            "auth": ArraySpec(n, np.float32),
            "hub": ArraySpec(n, np.float32),
            "auth2": ArraySpec(n, np.float32),
            "hub2": ArraySpec(n, np.float32),
            "auth_norm": ArraySpec(1, np.float32),
            "hub_norm": ArraySpec(1, np.float32),
        }

    def kernel_specs(self) -> list[KernelSpec]:
        def spmv_a(row, col, val, vin, vout, n):
            vout[:n] = self._a @ vin[:n]

        def spmv_at(row, col, val, vin, vout, n):
            vout[:n] = self._at @ vin[:n]

        def vec_sum(v, out, n):
            out[0] = float(np.sum(v[:n], dtype=np.float64))

        def divide(vin, vout, norm, n):
            np.divide(vin[:n], max(float(norm[0]), 1e-12), out=vout[:n])

        spmv_sig = "const ptr, const ptr, const ptr, const ptr, ptr, sint32"
        # Items default to the largest argument (the nnz-sized col/val
        # arrays): per-nonzero costs.
        spmv_cost = LinearCostModel(
            flops_per_item=2.0,
            dram_bytes_per_item=12.0,
            l2_bytes_per_item=16.0,
            instructions_per_item=10.0,
        )
        vec_cost = LinearCostModel(
            flops_per_item=1.0,
            dram_bytes_per_item=4.0,
            instructions_per_item=4.0,
        )
        div_cost = LinearCostModel(
            flops_per_item=1.0,
            dram_bytes_per_item=8.0,
            instructions_per_item=4.0,
        )
        return [
            KernelSpec("spmv_a", spmv_sig, spmv_a, spmv_cost),
            KernelSpec("spmv_at", spmv_sig, spmv_at, spmv_cost),
            KernelSpec("sum", "const ptr, ptr, sint32", vec_sum, vec_cost),
            KernelSpec(
                "divide", "const ptr, ptr, const ptr, sint32", divide,
                div_cost,
            ),
        ]

    def invocations(self) -> list[Invocation]:
        n = self.scale
        g, b = self.num_blocks, self.block_size
        steps: list[Invocation] = []
        for _ in range(self.inner_steps):
            steps += [
                Invocation(
                    "spmv_at", g, b,
                    ("at_row", "at_col", "at_val", "hub", "auth2", n),
                ),
                Invocation(
                    "spmv_a", g, b,
                    ("a_row", "a_col", "a_val", "auth", "hub2", n),
                ),
                Invocation("sum", g, b, ("auth2", "auth_norm", n)),
                Invocation("sum", g, b, ("hub2", "hub_norm", n)),
                Invocation("divide", g, b, ("auth2", "auth", "auth_norm", n)),
                Invocation("divide", g, b, ("hub2", "hub", "hub_norm", n)),
            ]
        return steps

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        if iteration == 0:
            csr_parts = {
                "a_row": lambda: self._a.indptr.astype(np.int32),
                "a_col": lambda: self._a.indices.astype(np.int32),
                "a_val": lambda: self._a.data,
                "at_row": lambda: self._at.indptr.astype(np.int32),
                "at_col": lambda: self._at.indices.astype(np.int32),
                "at_val": lambda: self._at.data,
            }
            for name, make in csr_parts.items():
                self.load_input(iteration, arrays[name], make)
        arrays["auth"].fill(1.0)
        arrays["hub"].fill(1.0)
        self.record_inputs(iteration)  # graph is fixed; vectors reset

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(
            np.sum(arrays["auth"][:8], dtype=np.float64)
            + np.sum(arrays["hub"][:8], dtype=np.float64)
        )

    def reference(self, iteration: int) -> float:
        n = self.scale
        auth = np.ones(n, dtype=np.float32)
        hub = np.ones(n, dtype=np.float32)
        for _ in range(self.inner_steps):
            auth2 = (self._at @ hub).astype(np.float32)
            hub2 = (self._a @ auth).astype(np.float32)
            na = np.float32(np.sum(auth2, dtype=np.float64))
            nh = np.float32(np.sum(hub2, dtype=np.float64))
            auth = auth2 / max(float(na), 1e-12)
            hub = hub2 / max(float(nh), 1e-12)
        return float(
            np.sum(auth[:8], dtype=np.float64)
            + np.sum(hub[:8], dtype=np.float64)
        )
