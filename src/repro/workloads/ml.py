"""ML — Machine Learning Ensemble (section V-B, Fig. 2).

"An ML pipeline that combines Categorical Naive Bayes and Ridge
Regression classifiers by applying softmax normalization and averaging
scores.  The input matrix has 200 features.  This benchmark contains
branch imbalance (the Naive Bayes classifier takes longer) and read-only
arguments."

DAG per iteration::

    x ─ nb_mmul(x,nb_w→r1) ─ addv ─ exp ─ softmax ─┐
                                                    ├─ argmax(r1,r2→r)
    z ─ rr_mmul(z,rr_w→r2) ─ addv ─ norm ─ softmax ─┘

Following the GrCUDA benchmark, the two classifiers read *different*
uploads of the feature matrix — the raw ``x`` for Naive Bayes and the
standardized copy ``z`` for Ridge Regression (prepared on the host).
Each branch's input transfer therefore overlaps the other branch's
computation (the Fig. 10 timeline).  The NB multiplication works on a
tall matrix with limited parallelism (low IPC, section V-F), modelled
with a small occupancy cap — running the Ridge branch concurrently
hides its latency.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec

FEATURES = 200
CLASSES = 10


def _standardize(x: np.ndarray) -> np.ndarray:
    """Host-side feature standardization for the Ridge branch."""
    mu = x.mean(axis=0, keepdims=True)
    sd = x.std(axis=0, keepdims=True) + 1e-6
    return ((x - mu) / sd).astype(np.float32)


def _mmul(x: np.ndarray, w: np.ndarray, out: np.ndarray,
          rows: int, features: int, classes: int) -> None:
    out[:, :] = x @ w.T


def _addv(m: np.ndarray, bias: np.ndarray, rows: int, classes: int) -> None:
    m += bias


def _exp(m: np.ndarray, rows: int, classes: int) -> None:
    np.exp(m - m.max(axis=1, keepdims=True), out=m)


def _norm(m: np.ndarray, rows: int, classes: int) -> None:
    lo = m.min(axis=1, keepdims=True)
    hi = m.max(axis=1, keepdims=True)
    np.divide(m - lo, np.maximum(hi - lo, 1e-12), out=m)


def _softmax(m: np.ndarray, rows: int, classes: int) -> None:
    e = np.exp(m - m.max(axis=1, keepdims=True))
    np.divide(e, e.sum(axis=1, keepdims=True), out=m)


def _argmax(r1: np.ndarray, r2: np.ndarray, r: np.ndarray,
            rows: int, classes: int) -> None:
    r[:] = np.argmax(r1 + r2, axis=1).astype(r.dtype)


def _mmul_items(launch) -> float:
    rows, features, classes = launch.scalar_args
    return float(rows) * features * classes


def _rows_classes_items(launch) -> float:
    rows, classes = launch.scalar_args[-2:]
    return float(rows) * classes


class MLEnsemble(Benchmark):
    """ML: Naive Bayes + Ridge Regression ensemble with softmax."""

    name = "ml"
    description = (
        "Naive-Bayes + ridge-regression ensemble; imbalanced branches"
        " sharing a read-only input"
    )

    def array_specs(self) -> dict[str, ArraySpec]:
        r = self.scale
        return {
            "x": ArraySpec((r, FEATURES), np.float32),
            "z": ArraySpec((r, FEATURES), np.float32),
            "nb_w": ArraySpec((CLASSES, FEATURES), np.float32),
            "nb_b": ArraySpec(CLASSES, np.float32),
            "rr_w": ArraySpec((CLASSES, FEATURES), np.float32),
            "rr_b": ArraySpec(CLASSES, np.float32),
            "r1": ArraySpec((r, CLASSES), np.float32),
            "r2": ArraySpec((r, CLASSES), np.float32),
            "r": ArraySpec(r, np.float32),
        }

    def kernel_specs(self) -> list[KernelSpec]:
        mmul_sig = "const ptr, const ptr, ptr, sint32, sint32, sint32"
        rows_cols_sig = "ptr, sint32, sint32"
        return [
            KernelSpec(
                "nb_mmul", mmul_sig, _mmul,
                # Tall-matrix multiplication with poor parallelism: the
                # slow branch ("the low IPC in ML is caused by a slow
                # kernel that operates on tall matrices").
                LinearCostModel(
                    flops_per_item=2.0,
                    dram_bytes_per_item=1.0,
                    l2_bytes_per_item=8.0,
                    instructions_per_item=6.0,
                    sm_fraction_cap=0.25,
                    items_fn=_mmul_items,
                ),
            ),
            KernelSpec(
                "rr_mmul", mmul_sig, _mmul,
                LinearCostModel(
                    flops_per_item=2.0,
                    dram_bytes_per_item=1.0,
                    l2_bytes_per_item=8.0,
                    instructions_per_item=2.0,
                    sm_fraction_cap=0.9,
                    items_fn=_mmul_items,
                ),
            ),
            KernelSpec(
                "addv", "ptr, const ptr, sint32, sint32", _addv,
                LinearCostModel(
                    flops_per_item=1.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=4.0,
                    items_fn=_rows_classes_items,
                ),
            ),
            KernelSpec(
                "exp", rows_cols_sig, _exp,
                LinearCostModel(
                    flops_per_item=12.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=10.0,
                    items_fn=_rows_classes_items,
                ),
            ),
            KernelSpec(
                "norm", rows_cols_sig, _norm,
                LinearCostModel(
                    flops_per_item=6.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=8.0,
                    items_fn=_rows_classes_items,
                ),
            ),
            KernelSpec(
                "softmax", rows_cols_sig, _softmax,
                LinearCostModel(
                    flops_per_item=14.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=12.0,
                    items_fn=_rows_classes_items,
                ),
            ),
            KernelSpec(
                "argmax", "const ptr, const ptr, ptr, sint32, sint32",
                _argmax,
                LinearCostModel(
                    flops_per_item=3.0,
                    dram_bytes_per_item=9.0,
                    instructions_per_item=6.0,
                    items_fn=_rows_classes_items,
                ),
            ),
        ]

    def invocations(self) -> list[Invocation]:
        r = self.scale
        g, b = self.num_blocks, self.block_size
        return [
            Invocation("nb_mmul", g, b, ("x", "nb_w", "r1", r, FEATURES, CLASSES)),
            Invocation("addv", g, b, ("r1", "nb_b", r, CLASSES)),
            Invocation("exp", g, b, ("r1", r, CLASSES)),
            Invocation("softmax", g, b, ("r1", r, CLASSES)),
            Invocation("rr_mmul", g, b, ("z", "rr_w", "r2", r, FEATURES, CLASSES)),
            Invocation("addv", g, b, ("r2", "rr_b", r, CLASSES)),
            Invocation("norm", g, b, ("r2", r, CLASSES)),
            Invocation("softmax", g, b, ("r2", r, CLASSES)),
            Invocation("argmax", g, b, ("r1", "r2", "r", r, CLASSES)),
        ]

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        rng = self.rng(iteration)
        x = self.load_input(
            iteration,
            arrays["x"],
            lambda: rng.uniform(
                -1.0, 1.0, (self.scale, FEATURES)
            ).astype(np.float32),
            record="x",
        )
        # Ridge regression reads the standardized features, prepared on
        # the host (a second full-size upload, like the GrCUDA bench).
        self.load_input(
            iteration,
            arrays["z"],
            lambda: _standardize(x),
            record="z",
        )
        if iteration == 0:
            wrng = self.rng(999_983)
            shapes = {
                "nb_w": (CLASSES, FEATURES),
                "nb_b": (CLASSES,),
                "rr_w": (CLASSES, FEATURES),
                "rr_b": (CLASSES,),
            }
            self._weights = {}
            for name, shape in shapes.items():
                data = self.load_input(
                    iteration,
                    arrays[name],
                    lambda shape=shape: wrng.uniform(
                        -0.5, 0.5, shape
                    ).astype(np.float32),
                )
                if data is not None:
                    self._weights[name] = data

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(np.sum(arrays["r"][:64], dtype=np.float64))

    def reference(self, iteration: int) -> float:
        x = self.inputs(iteration)["x"]
        z = self.inputs(iteration)["z"]
        w = self._weights
        rows = self.scale
        r1 = x @ w["nb_w"].T
        _addv(r1, w["nb_b"], rows, CLASSES)
        _exp(r1, rows, CLASSES)
        _softmax(r1, rows, CLASSES)
        r2 = z @ w["rr_w"].T
        _addv(r2, w["rr_b"], rows, CLASSES)
        _norm(r2, rows, CLASSES)
        _softmax(r2, rows, CLASSES)
        r = np.empty(rows, dtype=np.float32)
        _argmax(r1, r2, r, rows, CLASSES)
        return float(np.sum(r[:64], dtype=np.float64))
