"""The paper's benchmark suite (section V-B): six multi-task GPU
workloads with opportunities for transfer/compute overlap and
space-sharing, each defined once and runnable under five execution
modes:

* GrCUDA **serial** scheduler (the baseline of Fig. 7),
* GrCUDA **parallel** scheduler (the paper's contribution),
* CUDA Graphs with **manual dependencies** (Fig. 8),
* CUDA Graphs built by **stream capture** (Fig. 8),
* **hand-tuned CUDA events** with explicit prefetching (Fig. 8).

Each kernel carries both a real numpy implementation (results are
validated against independent references) and a roofline cost profile
(timings are simulated).
"""

from repro.workloads.base import (
    ArraySpec,
    Benchmark,
    Invocation,
    KernelSpec,
    Mode,
    RunResult,
)
from repro.workloads.vec import VectorSquares
from repro.workloads.bs import BlackScholes
from repro.workloads.img import ImageProcessing
from repro.workloads.ml import MLEnsemble
from repro.workloads.hits import HITS
from repro.workloads.dl import DeepLearning
from repro.workloads.suite import (
    BENCHMARKS,
    create_benchmark,
    default_scales,
)

__all__ = [
    "ArraySpec",
    "Benchmark",
    "Invocation",
    "KernelSpec",
    "Mode",
    "RunResult",
    "VectorSquares",
    "BlackScholes",
    "ImageProcessing",
    "MLEnsemble",
    "HITS",
    "DeepLearning",
    "BENCHMARKS",
    "create_benchmark",
    "default_scales",
]
