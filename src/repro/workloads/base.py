"""Benchmark framework: declare a workload once, run it five ways.

A :class:`Benchmark` declares its arrays, kernels (numpy implementation +
roofline cost model + NIDL signature) and the per-iteration kernel
invocations.  The framework derives every execution mode from that single
declaration:

* the GrCUDA modes replay the invocations through the runtime's host API,
  exactly like the Python host code of the paper's Fig. 4;
* the baseline modes derive the *optimal static schedule* (the Fig. 6
  stream coloring) with the same greedy rules and execute it through the
  CUDA Graphs API, stream capture, or hand-tuned events.

This mirrors the paper's methodology: the baselines embody what a skilled
programmer writes by hand; GrCUDA must match them automatically.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.core.policies import (
    DevicePlacementPolicy,
    ExecutionPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro.session import Session
from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.gpusim.timeline import Timeline
from repro.graphs.capture import StreamCapture
from repro.graphs.graph import CudaGraph
from repro.graphs.handtuned import HandTunedScheduler
from repro.graphs.planner import plan_streams
from repro.kernels.kernel import Kernel
from repro.kernels.profile import CostModel
from repro.kernels.registry import build_kernel
from repro.kernels.signature import parse_signature
from repro.memory.array import AccessKind, DeviceArray
from repro.memory.coherence import CoherenceEngine, MovementPolicy


class Mode(enum.Enum):
    """The five execution modes of the evaluation."""

    SERIAL = "grcuda-serial"
    PARALLEL = "grcuda-parallel"
    GRAPH_MANUAL = "cudagraph-manual"
    GRAPH_CAPTURE = "cudagraph-capture"
    HANDTUNED = "handtuned-events"

    @property
    def is_grcuda(self) -> bool:
        return self in (Mode.SERIAL, Mode.PARALLEL)


@dataclass(frozen=True)
class ArraySpec:
    """Declaration of one benchmark array."""

    shape: tuple[int, ...] | int
    dtype: Any = np.float32

    @property
    def nbytes(self) -> int:
        shape = (
            (self.shape,) if isinstance(self.shape, int) else self.shape
        )
        n = 1
        for s in shape:
            n *= s
        return n * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class KernelSpec:
    """Declaration of one kernel: implementation + signature + cost."""

    name: str
    signature: str
    fn: Any  # Callable[..., None]
    cost: CostModel


@dataclass(frozen=True)
class Invocation:
    """One kernel launch inside an iteration.

    ``args`` entries that are strings name benchmark arrays; everything
    else is passed through as a scalar.
    """

    kernel: str
    grid: int | tuple[int, ...]
    block: int | tuple[int, ...]
    args: tuple[Any, ...]


@dataclass
class RunResult:
    """Outcome of one benchmark execution."""

    benchmark: str
    mode: Mode
    gpu: str
    elapsed: float            # device makespan (paper's execution time)
    host_clock: float         # total virtual time including host waits
    results: list[float]      # per-iteration scalar results
    timeline: Timeline
    stream_count: int
    iterations: int
    #: merged observability-registry snapshot (engine + coherence
    #: counters) of the run — movement-bench reads its tallies here
    counters: dict[str, int | float] = field(default_factory=dict)

    @property
    def per_iteration(self) -> float:
        return self.elapsed / max(1, self.iterations)


@dataclass(frozen=True)
class PlanStep:
    """Static-schedule entry for one invocation (baseline modes)."""

    index: int
    stream: int
    waits: tuple[int, ...]       # invocation indices to wait on
    record_event: bool


class Benchmark(abc.ABC):
    """One workload of the suite.  Subclasses declare, the base runs."""

    #: short identifier, e.g. ``"vec"``
    name: str = ""
    #: human description, shown by the harness
    description: str = ""

    def __init__(
        self,
        scale: int,
        block_size: int = 256,
        block_size_2d: int = 8,
        num_blocks: int = 512,
        iterations: int = 6,
        seed: int = 42,
        execute: bool = True,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.block_size = block_size
        self.block_size_2d = block_size_2d
        self.num_blocks = num_blocks
        self.iterations = iterations
        self.seed = seed
        self.execute = execute
        self._inputs: list[dict[str, np.ndarray]] = []

    # -- declaration (subclass responsibility) ------------------------------

    @abc.abstractmethod
    def array_specs(self) -> dict[str, ArraySpec]:
        """Arrays the workload allocates, by name."""

    @abc.abstractmethod
    def kernel_specs(self) -> list[KernelSpec]:
        """Kernels the workload builds."""

    @abc.abstractmethod
    def invocations(self) -> list[Invocation]:
        """Kernel launches of ONE iteration, in host-program order."""

    @abc.abstractmethod
    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        """Host-side input (re-)initialization before an iteration.

        Must record the generated inputs via :meth:`record_inputs` so
        that :meth:`reference` can validate results.
        """

    @abc.abstractmethod
    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        """Host-side result consumption after an iteration (this is the
        access that forces synchronization)."""

    @abc.abstractmethod
    def reference(self, iteration: int) -> float:
        """Independent numpy recomputation of iteration's result."""

    # -- shared helpers -----------------------------------------------------

    def rng(self, iteration: int) -> np.random.Generator:
        """Deterministic per-iteration RNG."""
        return np.random.default_rng((self.seed, iteration))

    def record_inputs(self, iteration: int, **named: np.ndarray) -> None:
        """Store the iteration's inputs for :meth:`reference`."""
        while len(self._inputs) <= iteration:
            self._inputs.append({})
        self._inputs[iteration].update(
            {k: np.array(v, copy=True) for k, v in named.items()}
        )

    def load_input(
        self,
        iteration: int,
        array: DeviceArray,
        make,
        record: str | None = None,
    ) -> np.ndarray | None:
        """Write one host input into ``array``.

        When functional execution is on, ``make()`` generates the data,
        it is copied in (paying the UM costs through the access hook) and
        optionally recorded for :meth:`reference`.  In timing-only mode
        the write is *announced* instead (identical timing) without
        generating gigabytes of values.
        """
        if self.execute:
            data = make()
            array.copy_from_host(data)
            if record:
                self.record_inputs(iteration, **{record: data})
            return data
        array.touch_write_full()
        return None

    def inputs(self, iteration: int) -> dict[str, np.ndarray]:
        return self._inputs[iteration]

    def memory_footprint_bytes(self) -> int:
        """Total UM allocation, the quantity of Table I."""
        return sum(s.nbytes for s in self.array_specs().values())

    def kernel_count_per_iteration(self) -> int:
        return len(self.invocations())

    def distinct_kernel_count(self) -> int:
        return len(self.kernel_specs())

    # -- mode dispatch ---------------------------------------------------------

    def run(
        self,
        gpu: str | GPUSpec,
        mode: Mode = Mode.PARALLEL,
        prefetch: PrefetchPolicy = PrefetchPolicy.AUTO,
        movement: MovementPolicy | None = None,
        gpus: int = 1,
        placement: DevicePlacementPolicy | None = None,
        movement_window: int = 0,
    ) -> RunResult:
        """Execute the benchmark once under ``mode`` on ``gpu``.

        ``movement`` selects the coherence engine's data-movement policy
        explicitly (the movement-bench axis); None keeps the legacy
        derivation from ``prefetch``; ``movement_window`` sizes the
        cross-acquire BATCHED coalescing window (0 = per-acquire).
        ``gpus``/``placement`` run the
        GrCUDA modes on a multi-GPU session — the declaration is device
        -count agnostic, so nothing else changes (the baseline modes are
        single-GPU by construction: their static plans encode one
        device's streams).
        """
        if gpus > 1 and mode not in (Mode.SERIAL, Mode.PARALLEL):
            raise ValueError(
                f"{mode.value} is a single-GPU baseline; multi-GPU"
                " execution flows through the GrCUDA modes"
            )
        if mode is Mode.SERIAL:
            # gpus/placement pass through: a serial multi-GPU request is
            # rejected by Session's config validation, not ignored here.
            return self._run_grcuda(
                gpu, ExecutionPolicy.SERIAL, prefetch, movement,
                gpus=gpus, placement=placement,
                movement_window=movement_window,
            )
        if mode is Mode.PARALLEL:
            return self._run_grcuda(
                gpu, ExecutionPolicy.PARALLEL, prefetch, movement,
                gpus=gpus, placement=placement,
                movement_window=movement_window,
            )
        if mode in (Mode.GRAPH_MANUAL, Mode.GRAPH_CAPTURE):
            return self._run_graph(gpu, mode)
        return self._run_handtuned(gpu)

    # -- GrCUDA modes -------------------------------------------------------------

    def _build_session(
        self,
        gpu: str | GPUSpec,
        execution: ExecutionPolicy,
        prefetch: PrefetchPolicy,
        movement: MovementPolicy | None = None,
        gpus: int = 1,
        placement: DevicePlacementPolicy | None = None,
        movement_window: int = 0,
    ) -> Session:
        return Session(
            gpus=gpus,
            gpu=gpu,
            config=SchedulerConfig(
                execution=execution,
                prefetch=prefetch,
                movement=movement,
                placement=placement,
                movement_window=movement_window,
            ),
        )

    def _run_grcuda(
        self,
        gpu: str | GPUSpec,
        execution: ExecutionPolicy,
        prefetch: PrefetchPolicy,
        movement: MovementPolicy | None = None,
        gpus: int = 1,
        placement: DevicePlacementPolicy | None = None,
        movement_window: int = 0,
    ) -> RunResult:
        rt = self._build_session(
            gpu, execution, prefetch, movement,
            gpus=gpus, placement=placement,
            movement_window=movement_window,
        )
        arrays = {
            name: rt.array(
                spec.shape,
                dtype=spec.dtype,
                name=name,
                materialize=self.execute,
            )
            for name, spec in self.array_specs().items()
        }
        kernels = {
            spec.name: rt.build_kernel(
                spec.fn if self.execute else _noop,
                spec.name,
                spec.signature,
                cost_model=spec.cost,
            )
            for spec in self.kernel_specs()
        }
        results: list[float] = []
        for it in range(self.iterations):
            self.refresh(arrays, it)
            for inv in self.invocations():
                args = self._resolve_args(inv.args, arrays)
                kernels[inv.kernel](inv.grid, inv.block)(*args)
            results.append(self.read_result(arrays))
        rt.sync()
        timeline = rt.timeline()
        return RunResult(
            benchmark=self.name,
            mode=(
                Mode.SERIAL
                if execution is ExecutionPolicy.SERIAL
                else Mode.PARALLEL
            ),
            gpu=rt.spec.name,
            elapsed=timeline.makespan,
            host_clock=rt.clock,
            results=results,
            timeline=timeline,
            stream_count=len(
                {r.stream_id for r in timeline.kernels()}
            ),
            iterations=self.iterations,
            counters=rt.counters(),
        )

    # -- static plan shared by the baseline modes ---------------------------------

    def static_plan(self) -> list[PlanStep]:
        """The optimal static schedule a skilled programmer would write.

        Dependencies come from the same dependency-set analysis the
        runtime scheduler performs (run offline on placeholder arrays);
        stream assignment uses the first-child-inherits rule.  This is
        the Fig. 6 coloring, derived rather than hard-coded, and shared
        by the graph-manual, graph-capture and hand-tuned runners.
        """
        sig_access = {
            spec.name: [
                p.access for p in parse_signature(spec.signature) if p.is_pointer
            ]
            for spec in self.kernel_specs()
        }
        placeholders = {
            name: DeviceArray(1, name=name) for name in self.array_specs()
        }
        dag = ComputationDAG()
        elements: list[ComputationalElement] = []
        parents_of: list[list[int]] = []
        index_of: dict[int, int] = {}
        for i, inv in enumerate(self.invocations()):
            array_names = [a for a in inv.args if isinstance(a, str)]
            accesses = [
                (placeholders[n], k)
                for n, k in zip(array_names, sig_access[inv.kernel])
            ]
            e = ComputationalElement(accesses, label=f"{inv.kernel}#{i}")
            parent_elems = dag.add(e)
            elements.append(e)
            index_of[e.element_id] = i
            parents_of.append(
                [index_of[p.element_id] for p in parent_elems]
            )

        return [
            PlanStep(
                index=s.index,
                stream=s.stream,
                waits=s.waits,
                record_event=s.record_event,
            )
            for s in plan_streams(parents_of)
        ]

    # -- baseline infrastructure ------------------------------------------------

    def _baseline_setup(
        self, gpu: str | GPUSpec
    ) -> tuple[SimEngine, dict[str, DeviceArray], dict[str, Kernel]]:
        spec = gpu_by_name(gpu) if isinstance(gpu, str) else gpu
        engine = SimEngine(Device(spec))
        arrays = {
            name: DeviceArray(
                aspec.shape,
                dtype=aspec.dtype,
                device=engine.device,
                name=name,
                materialize=self.execute,
            )
            for name, aspec in self.array_specs().items()
        }
        host = _BaselineHost(engine)
        self._baseline_host = host
        for arr in arrays.values():
            arr.set_access_hook(host.hook)
        kernels = {
            kspec.name: build_kernel(
                kspec.fn if self.execute else _noop,
                kspec.name,
                kspec.signature,
                cost_model=kspec.cost,
            )
            for kspec in self.kernel_specs()
        }
        return engine, arrays, kernels

    def _resolve_args(
        self, args: tuple[Any, ...], arrays: dict[str, DeviceArray]
    ) -> tuple[Any, ...]:
        return tuple(
            arrays[a] if isinstance(a, str) else a for a in args
        )

    def _finish_baseline(
        self,
        engine: SimEngine,
        mode: Mode,
        results: list[float],
        streams_used: int,
    ) -> RunResult:
        engine.sync_all()
        from repro.obs.counters import CounterRegistry

        merged = CounterRegistry()
        engine_counters = getattr(engine, "counters", None)
        if engine_counters is not None:
            merged.merge(engine_counters)
        host = getattr(self, "_baseline_host", None)
        if host is not None:
            merged.merge(host.coherence.counters)
        return RunResult(
            benchmark=self.name,
            mode=mode,
            gpu=engine.device.spec.name,
            elapsed=engine.timeline.makespan,
            host_clock=engine.clock,
            results=results,
            timeline=engine.timeline,
            stream_count=streams_used,
            iterations=self.iterations,
            counters=merged.snapshot(),
        )

    def _run_graph(self, gpu: str | GPUSpec, mode: Mode) -> RunResult:
        engine, arrays, kernels = self._baseline_setup(gpu)
        plan = self.static_plan()
        invocations = self.invocations()
        if mode is Mode.GRAPH_MANUAL:
            graph = CudaGraph(name=self.name)
            nodes = []
            for inv, step in zip(invocations, plan):
                # Manual deps: explicit edges — the cross-stream waits of
                # the plan, plus the same-stream chain expressed as an
                # edge to the immediate same-stream predecessor.
                same_stream_prior = [
                    p for p in range(step.index)
                    if plan[p].stream == step.stream
                ]
                deps = [nodes[p] for p in step.waits]
                if same_stream_prior:
                    deps.append(nodes[same_stream_prior[-1]])
                nodes.append(
                    graph.add_kernel_node(
                        kernels[inv.kernel],
                        inv.grid,
                        inv.block,
                        self._resolve_args(inv.args, arrays),
                        deps=deps,
                    )
                )
        else:
            cap = StreamCapture(name=self.name)
            cap_streams = [
                cap.stream()
                for _ in range(1 + max(s.stream for s in plan))
            ]
            events: dict[int, Any] = {}
            for inv, step in zip(invocations, plan):
                stream = cap_streams[step.stream]
                for w in step.waits:
                    cap.wait_event(stream, events[w])
                cap.launch(
                    stream,
                    kernels[inv.kernel],
                    inv.grid,
                    inv.block,
                    self._resolve_args(inv.args, arrays),
                )
                if step.record_event:
                    events[step.index] = cap.record_event(stream)
            graph = cap.end_capture()
        exe = graph.instantiate()
        results: list[float] = []
        for it in range(self.iterations):
            self.refresh(arrays, it)
            exe.launch(engine)
            results.append(self.read_result(arrays))
        return self._finish_baseline(
            engine, mode, results, exe.stream_count
        )

    def _run_handtuned(self, gpu: str | GPUSpec) -> RunResult:
        engine, arrays, kernels = self._baseline_setup(gpu)
        plan = self.static_plan()
        invocations = self.invocations()
        sig_access = {
            spec.name: [
                p.access
                for p in parse_signature(spec.signature)
                if p.is_pointer
            ]
            for spec in self.kernel_specs()
        }
        ht = HandTunedScheduler(engine)
        streams = [
            ht.stream() for _ in range(1 + max(s.stream for s in plan))
        ]
        results: list[float] = []
        for it in range(self.iterations):
            self.refresh(arrays, it)
            events: dict[int, Any] = {}
            for inv, step in zip(invocations, plan):
                stream = streams[step.stream]
                for w in step.waits:
                    ht.wait_event(stream, events[w])
                # The expert prefetches every stale read array explicitly.
                array_names = [a for a in inv.args if isinstance(a, str)]
                for name, access in zip(
                    array_names, sig_access[inv.kernel]
                ):
                    if access.reads:
                        ht.prefetch(arrays[name], stream)
                ht.launch(
                    stream,
                    kernels[inv.kernel],
                    inv.grid,
                    inv.block,
                    self._resolve_args(inv.args, arrays),
                )
                if step.record_event:
                    events[step.index] = ht.record_event(stream)
            results.append(self.read_result(arrays))
        return self._finish_baseline(
            engine, Mode.HANDTUNED, results, len(streams)
        )


class _BaselineHost:
    """CPU-access hook for baseline modes: what careful C++ host code
    does around unified memory — synchronize before touching arrays the
    GPU may be using, and declare the access to the coherence engine,
    which plans and charges the UM migration."""

    def __init__(self, engine: SimEngine) -> None:
        self.engine = engine
        self.coherence = CoherenceEngine(engine)

    def hook(self, array: DeviceArray, kind: AccessKind, touched: int) -> None:
        if not self.engine.idle:
            self.engine.sync_all()
        self.coherence.cpu_access(
            array, kind, touched, stream=self.engine.default_stream
        )


def _noop(*args: Any) -> None:
    """Stand-in compute function when functional execution is disabled
    (timing-only sweeps)."""
