"""DL — Deep Learning (section V-B).

"A convolutional neural network that projects 2 input images to low
dimensional embeddings and combines the embeddings using a dense layer.
Similar neural networks can be used, for example, to classify if 2
images contain the same subject."

DAG per iteration (Fig. 6)::

    conv(x,w1→x1) ─ pool(x1→x2) ─ conv(x2,w2→x3) ─┐
                                                   concat(x3,y3→z) ─ dot(z,wd→out)
    conv(y,w3→y1) ─ pool(y1→y2) ─ conv(y2,w4→y3) ─┘

Two independent CNN towers (one per input image) joined by a dense
layer.  Convolutions are compute-bound FP32 kernels with register-limited
occupancy; the towers space-share, giving the moderate 1.2-1.3x speedups
of Fig. 11.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.kernels.profile import LinearCostModel
from repro.memory.array import DeviceArray
from repro.workloads.base import ArraySpec, Benchmark, Invocation, KernelSpec

KERNEL_SIZE = 3


def _conv(x: np.ndarray, w: np.ndarray, out: np.ndarray, side: int) -> None:
    np.maximum(
        ndimage.convolve(x, w, mode="constant"), 0.0, out=out
    )


def _pool(x: np.ndarray, out: np.ndarray, side: int) -> None:
    h = side // 2
    out[:, :] = x[: 2 * h, : 2 * h].reshape(h, 2, h, 2).max(axis=(1, 3))


def _concat(a: np.ndarray, b: np.ndarray, z: np.ndarray, n: int) -> None:
    z[:n] = a.ravel()
    z[n : 2 * n] = b.ravel()


def _dot(z: np.ndarray, w: np.ndarray, out: np.ndarray, n: int) -> None:
    out[0] = float(np.dot(z[:n].astype(np.float64), w[:n].astype(np.float64)))


class DeepLearning(Benchmark):
    """DL: two CNN towers joined by a dense layer."""

    name = "dl"
    description = (
        "Two-tower CNN producing image embeddings combined by a dense"
        " layer"
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scale -= self.scale % 2  # pooling halves the side
        if self.scale < 4:
            raise ValueError("DL needs scale >= 4")

    def array_specs(self) -> dict[str, ArraySpec]:
        s = self.scale
        h = s // 2
        img = ArraySpec((s, s), np.float32)
        half = ArraySpec((h, h), np.float32)
        w = ArraySpec((KERNEL_SIZE, KERNEL_SIZE), np.float32)
        return {
            "x": img, "y": img,
            "w1": w, "w2": w, "w3": w, "w4": w,
            "x1": img, "y1": img,
            "x2": half, "y2": half,
            "x3": half, "y3": half,
            "z": ArraySpec(2 * h * h, np.float32),
            "wd": ArraySpec(2 * h * h, np.float32),
            "out": ArraySpec(1, np.float32),
        }

    def kernel_specs(self) -> list[KernelSpec]:
        conv_sig = "const ptr, const ptr, ptr, sint32"
        return [
            KernelSpec(
                "conv", conv_sig, _conv,
                # 3x3 kernel across 32 feature channels (~600 MACs per
                # output pixel); register-limited occupancy.  The
                # functional implementation computes one representative
                # channel; the cost model prices the full layer.
                LinearCostModel(
                    flops_per_item=600.0,
                    dram_bytes_per_item=12.0,
                    l2_bytes_per_item=200.0,
                    instructions_per_item=250.0,
                    sm_fraction_cap=0.85,
                ),
            ),
            KernelSpec(
                "pool", "const ptr, ptr, sint32", _pool,
                LinearCostModel(
                    flops_per_item=3.0,
                    dram_bytes_per_item=5.0,
                    instructions_per_item=5.0,
                ),
            ),
            KernelSpec(
                "concat", "const ptr, const ptr, ptr, sint32", _concat,
                LinearCostModel(
                    dram_bytes_per_item=12.0,
                    instructions_per_item=3.0,
                ),
            ),
            KernelSpec(
                "dot", "const ptr, const ptr, ptr, sint32", _dot,
                LinearCostModel(
                    flops_per_item=2.0,
                    dram_bytes_per_item=8.0,
                    instructions_per_item=4.0,
                ),
            ),
        ]

    def invocations(self) -> list[Invocation]:
        s = self.scale
        h = s // 2
        g2 = (48, 48)
        b2 = (self.block_size_2d, self.block_size_2d)
        g1, b1 = self.num_blocks, self.block_size
        return [
            Invocation("conv", g2, b2, ("x", "w1", "x1", s)),
            Invocation("pool", g2, b2, ("x1", "x2", s)),
            Invocation("conv", g2, b2, ("x2", "w2", "x3", h)),
            Invocation("conv", g2, b2, ("y", "w3", "y1", s)),
            Invocation("pool", g2, b2, ("y1", "y2", s)),
            Invocation("conv", g2, b2, ("y2", "w4", "y3", h)),
            Invocation("concat", g1, b1, ("x3", "y3", "z", h * h)),
            Invocation("dot", g1, b1, ("z", "wd", "out", 2 * h * h)),
        ]

    def refresh(self, arrays: dict[str, DeviceArray], iteration: int) -> None:
        rng = self.rng(iteration)
        s = self.scale
        for name in ("x", "y"):
            self.load_input(
                iteration,
                arrays[name],
                lambda: rng.uniform(0.0, 1.0, (s, s)).astype(np.float32),
                record=name,
            )
        if iteration == 0:
            wrng = self.rng(424_243)
            h = s // 2
            self._weights = {}
            for name in ("w1", "w2", "w3", "w4"):
                data = self.load_input(
                    iteration,
                    arrays[name],
                    lambda: wrng.uniform(
                        -0.5, 0.5, (KERNEL_SIZE, KERNEL_SIZE)
                    ).astype(np.float32),
                )
                if data is not None:
                    self._weights[name] = data
            data = self.load_input(
                iteration,
                arrays["wd"],
                lambda: wrng.uniform(-0.1, 0.1, 2 * h * h).astype(
                    np.float32
                ),
            )
            if data is not None:
                self._weights["wd"] = data

    def read_result(self, arrays: dict[str, DeviceArray]) -> float:
        return float(arrays["out"][0])

    def reference(self, iteration: int) -> float:
        ins = self.inputs(iteration)
        w = self._weights
        s = self.scale
        h = s // 2

        def tower(img, wa, wb):
            c1 = np.empty_like(img)
            _conv(img, wa, c1, s)
            p = np.empty((h, h), dtype=np.float32)
            _pool(c1, p, s)
            c2 = np.empty_like(p)
            _conv(p, wb, c2, h)
            return c2

        x3 = tower(ins["x"], w["w1"], w["w2"])
        y3 = tower(ins["y"], w["w3"], w["w4"])
        z = np.concatenate([x3.ravel(), y3.ravel()])
        out = np.empty(1, dtype=np.float32)
        _dot(z, w["wd"], out, 2 * h * h)
        return float(out[0])
