"""Suite registry and the paper's per-GPU input scales (Table I).

Scales follow the paper's x-axes (Figs. 7-9): each benchmark is swept
over input sizes whose memory footprint spans ~10 % to ~90 % of each
GPU's device memory, and larger GPUs get two extra scale points.
"""

from __future__ import annotations

from repro.gpusim.specs import GPUSpec, gpu_by_name
from repro.workloads.base import Benchmark
from repro.workloads.bs import BlackScholes
from repro.workloads.dl import DeepLearning
from repro.workloads.hits import HITS
from repro.workloads.img import ImageProcessing
from repro.workloads.ml import MLEnsemble
from repro.workloads.vec import VectorSquares

BENCHMARKS: dict[str, type[Benchmark]] = {
    "vec": VectorSquares,
    "b&s": BlackScholes,
    "img": ImageProcessing,
    "ml": MLEnsemble,
    "hits": HITS,
    "dl": DeepLearning,
}

#: The paper's benchmark-scale x-axes (Figs. 7-9).  The first three
#: points fit every GPU; the last two only the larger ones.
PAPER_SCALES: dict[str, list[int]] = {
    "vec": [20_000_000, 80_000_000, 120_000_000, 500_000_000, 700_000_000],
    "b&s": [2_000_000, 8_000_000, 12_000_000, 50_000_000, 70_000_000],
    "img": [1_600, 3_200, 4_800, 10_000, 16_000],
    "ml": [200_000, 800_000, 1_200_000, 4_000_000, 6_000_000],
    "hits": [4_000_000, 10_000_000, 20_000_000, 60_000_000, 140_000_000],
    "dl": [3_000, 5_000, 7_000, 12_000, 16_000],
}

#: How many of the PAPER_SCALES points each GPU can fit (Fig. 7's
#: per-GPU series lengths: the GTX 960 runs 3, the 1660 3-4, the P100 5).
SCALE_POINTS_PER_GPU = {
    "GTX 960": 3,
    "GTX 1660 Super": 4,
    "Tesla P100": 5,
}


def create_benchmark(name: str, scale: int, **kwargs) -> Benchmark:
    """Instantiate a suite benchmark by name."""
    key = name.lower()
    if key == "bs":
        key = "b&s"
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from"
            f" {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key](scale, **kwargs)


def default_scales(name: str, gpu: str | GPUSpec) -> list[int]:
    """The paper's scale sweep for ``name`` on ``gpu``, truncated to the
    sizes that fit the GPU's memory (Table I)."""
    spec = gpu_by_name(gpu) if isinstance(gpu, str) else gpu
    key = name.lower()
    if key == "bs":
        key = "b&s"
    points = SCALE_POINTS_PER_GPU.get(spec.name, 3)
    scales = PAPER_SCALES[key][:points]
    cls = BENCHMARKS[key]
    fitting = []
    for s in scales:
        bench = cls(s, execute=False)
        if bench.memory_footprint_bytes() <= 0.92 * spec.device_memory_bytes:
            fitting.append(s)
    return fitting
