"""Tests for NIDL signature parsing."""

import pytest

from repro.errors import SignatureError
from repro.kernels import ParamKind, parse_signature
from repro.memory import AccessKind


class TestPaperSignatures:
    def test_fig4_square(self):
        # K1 = build_kernel(K1_CODE, "square", "ptr, sint32")
        sig = parse_signature("ptr, sint32")
        assert len(sig) == 2
        assert sig[0].is_pointer
        assert sig[0].access is AccessKind.READ_WRITE
        assert sig[1].kind is ParamKind.SCALAR
        assert sig[1].type_name == "sint32"

    def test_fig4_sum(self):
        # "const ptr, const ptr, ptr, sint32"
        sig = parse_signature("const ptr, const ptr, ptr, sint32")
        assert sig[0].read_only
        assert sig[1].read_only
        assert not sig[2].read_only
        assert sig[2].access is AccessKind.READ_WRITE
        assert not sig[3].is_pointer


class TestQualifiers:
    def test_const_is_read_only(self):
        assert parse_signature("const ptr")[0].access is AccessKind.READ

    def test_in_is_read_only(self):
        assert parse_signature("in ptr")[0].access is AccessKind.READ

    def test_out_is_write_only(self):
        assert parse_signature("out ptr")[0].access is AccessKind.WRITE

    def test_inout_is_read_write(self):
        assert parse_signature("inout ptr")[0].access is AccessKind.READ_WRITE

    def test_unqualified_defaults_to_read_write(self):
        # "For arguments without annotations, the scheduler treats them
        # as modifiable by the kernel."
        assert parse_signature("ptr")[0].access is AccessKind.READ_WRITE


class TestNamedForm:
    def test_named_parameters(self):
        sig = parse_signature("x: inout pointer float, n: sint32")
        assert sig[0].name == "x"
        assert sig[0].is_pointer
        assert sig[0].type_name == "float"
        assert sig[1].name == "n"

    def test_default_names_positional(self):
        sig = parse_signature("ptr, ptr")
        assert sig[0].name == "arg0"
        assert sig[1].name == "arg1"

    def test_pointer_element_type(self):
        sig = parse_signature("const pointer double")
        assert sig[0].type_name == "double"

    def test_pointer_default_element_float(self):
        assert parse_signature("ptr")[0].type_name == "float"


class TestAccessors:
    def test_pointer_and_scalar_split(self):
        sig = parse_signature("const ptr, ptr, sint32, float")
        assert len(sig.pointer_parameters) == 2
        assert len(sig.scalar_parameters) == 2

    def test_iteration(self):
        sig = parse_signature("ptr, sint32")
        assert [p.position for p in sig] == [0, 1]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "ptr,,sint32",
            "unknowntype",
            "const",
            "const sint32",          # qualifier on scalar
            "ptr banana",            # unknown element type
            "ptr float extra",       # trailing tokens
            "sint32 extra",
            "1bad: ptr",             # invalid name
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SignatureError):
            parse_signature(bad)
