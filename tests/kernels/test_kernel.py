"""Tests for kernel objects, launch geometry and cost models."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.kernels import (
    FixedCostModel,
    LinearCostModel,
    build_kernel,
    normalize_dim,
)
from repro.kernels.registry import KernelRegistry
from repro.memory import AccessKind, DeviceArray


def make_kernel(launches, signature="const ptr, ptr, sint32", name="axpy"):
    def axpy(x, y, n):
        y[:n] += 2.0 * x[:n]

    return build_kernel(
        axpy, name, signature, launch_handler=launches.append
    )


class TestNormalizeDim:
    def test_int(self):
        assert normalize_dim(8) == (8, 1, 1)

    def test_tuple_2d(self):
        assert normalize_dim((8, 8)) == (8, 8, 1)

    def test_tuple_3d(self):
        assert normalize_dim((4, 4, 4)) == (4, 4, 4)

    def test_zero_rejected(self):
        with pytest.raises(LaunchError):
            normalize_dim(0)

    def test_too_many_dims_rejected(self):
        with pytest.raises(LaunchError):
            normalize_dim((1, 2, 3, 4))


class TestLaunchValidation:
    def test_block_limit(self):
        k = make_kernel([])
        with pytest.raises(LaunchError):
            k(4, 2048)

    def test_2d_block_limit(self):
        k = make_kernel([])
        with pytest.raises(LaunchError):
            k(4, (64, 64))  # 4096 threads

    def test_wrong_arg_count(self):
        launches = []
        k = make_kernel(launches)
        x = DeviceArray(8)
        with pytest.raises(LaunchError):
            k(1, 32)(x, x)

    def test_scalar_in_pointer_slot(self):
        k = make_kernel([])
        x = DeviceArray(8)
        with pytest.raises(LaunchError):
            k(1, 32)(3, x, 8)

    def test_array_in_scalar_slot(self):
        k = make_kernel([])
        x = DeviceArray(8)
        with pytest.raises(LaunchError):
            k(1, 32)(x, x, x)

    def test_unattached_kernel_rejects_launch(self):
        k = build_kernel(lambda x, n: None, "k", "ptr, sint32")
        with pytest.raises(LaunchError):
            k(1, 32)(DeviceArray(4), 4)


class TestLaunchPackaging:
    def test_launch_captures_geometry(self):
        launches = []
        k = make_kernel(launches)
        x, y = DeviceArray(8), DeviceArray(8)
        k(4, 32)(x, y, 8)
        [launch] = launches
        assert launch.grid == (4, 1, 1)
        assert launch.block == (32, 1, 1)
        assert launch.blocks == 4
        assert launch.threads_per_block == 32
        assert launch.threads_total == 128
        assert launch.label == "axpy"

    def test_access_kinds_from_signature(self):
        launches = []
        k = make_kernel(launches)
        x, y = DeviceArray(8), DeviceArray(8)
        k(1, 32)(x, y, 8)
        [launch] = launches
        accesses = dict(
            (arr.name, kind) for arr, kind in launch.array_args
        )
        assert accesses[x.name] is AccessKind.READ
        assert accesses[y.name] is AccessKind.READ_WRITE

    def test_scalars_separated(self):
        launches = []
        k = make_kernel(launches)
        k(1, 32)(DeviceArray(8), DeviceArray(8), 8)
        assert launches[0].scalar_args == (8,)

    def test_execute_runs_numpy(self):
        launches = []
        k = make_kernel(launches)
        x, y = DeviceArray(8), DeviceArray(8)
        x.kernel_view[:] = 1.0
        k(1, 32)(x, y, 8)
        launches[0].execute()
        assert np.all(y.kernel_view == 2.0)

    def test_launch_count(self):
        launches = []
        k = make_kernel(launches)
        x, y = DeviceArray(8), DeviceArray(8)
        k(1, 32)(x, y, 8)
        k(1, 32)(x, y, 8)
        assert k.launch_count == 2


class TestCostModels:
    def _launch(self, model, n=1000):
        launches = []
        k = build_kernel(
            lambda x, n: None,
            "k",
            "ptr, sint32",
            cost_model=model,
            launch_handler=launches.append,
        )
        k(8, 128)(DeviceArray(n), n)
        return launches[0]

    def test_linear_scales_with_array_size(self):
        model = LinearCostModel(flops_per_item=2.0, dram_bytes_per_item=8.0)
        res = self._launch(model, n=1000).resources()
        assert res.flops == 2000.0
        assert res.dram_bytes == 8000.0
        assert res.threads_total == 8 * 128

    def test_linear_custom_items_fn(self):
        model = LinearCostModel(
            flops_per_item=1.0, items_fn=lambda launch: launch.scalar_args[0]
        )
        res = self._launch(model, n=500).resources()
        assert res.flops == 500.0

    def test_linear_base_terms(self):
        model = LinearCostModel(flops_per_item=1.0, flops_base=100.0)
        res = self._launch(model, n=10).resources()
        assert res.flops == 110.0

    def test_fixed_model(self):
        model = FixedCostModel(flops=42.0, dram_bytes=7.0)
        res = self._launch(model).resources()
        assert res.flops == 42.0
        assert res.dram_bytes == 7.0

    def test_fp64_flag_propagates(self):
        res = self._launch(LinearCostModel(fp64=True)).resources()
        assert res.fp64

    def test_no_array_args_falls_back_to_threads(self):
        launches = []
        k = build_kernel(
            lambda n: None,
            "k",
            "sint32",
            cost_model=LinearCostModel(flops_per_item=1.0),
            launch_handler=launches.append,
        )
        k(2, 64)(5)
        assert launches[0].resources().flops == 128.0


class TestRegistry:
    def test_register_and_build_by_name(self):
        reg = KernelRegistry()
        reg.register("scale", lambda x, n: None, FixedCostModel(flops=1.0))
        k = build_kernel("scale", "scale_k", "ptr, sint32", registry=reg)
        assert k.name == "scale_k"
        assert k.cost_model.flops == 1.0

    def test_duplicate_rejected(self):
        reg = KernelRegistry()
        reg.register("a", lambda: None)
        with pytest.raises(ValueError):
            reg.register("a", lambda: None)

    def test_unknown_name_rejected(self):
        reg = KernelRegistry()
        with pytest.raises(LaunchError):
            build_kernel("nope", "k", "ptr", registry=reg)

    def test_contains_and_names(self):
        reg = KernelRegistry()
        reg.register("b", lambda: None)
        reg.register("a", lambda: None)
        assert "a" in reg and "c" not in reg
        assert reg.names() == ["a", "b"]

    def test_cost_model_override(self):
        reg = KernelRegistry()
        reg.register("k", lambda x, n: None, FixedCostModel(flops=1.0))
        k = build_kernel(
            "k", "k", "ptr, sint32",
            cost_model=FixedCostModel(flops=9.0), registry=reg,
        )
        assert k.cost_model.flops == 9.0
