"""Tests for the CT/TC/CC/TOT overlap metrics against hand-built
timelines and real scheduler runs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord
from repro.metrics import compute_overlaps
from repro.workloads import Mode, create_benchmark


def rec(kind, start, end, stream=0):
    return TimelineRecord(
        op_id=0, label="x", kind=kind, stream_id=stream,
        start=start, end=end,
    )


def timeline(*records):
    tl = Timeline()
    for r in records:
        tl.add(r)
    return tl


K = IntervalKind.KERNEL
H = IntervalKind.TRANSFER_HTOD
D = IntervalKind.TRANSFER_DTOH


class TestHandBuilt:
    def test_empty(self):
        m = compute_overlaps(timeline())
        assert (m.ct, m.tc, m.cc, m.tot) == (0.0, 0.0, 0.0, 0.0)

    def test_no_overlap(self):
        m = compute_overlaps(timeline(rec(H, 0, 1), rec(K, 1, 2)))
        assert (m.ct, m.tc, m.cc, m.tot) == (0.0, 0.0, 0.0, 0.0)

    def test_full_ct_overlap(self):
        # Kernel fully covered by a transfer; transfer only half-covered.
        m = compute_overlaps(timeline(rec(H, 0, 2), rec(K, 0, 1)))
        assert m.ct == pytest.approx(1.0)
        assert m.tc == pytest.approx(0.5)
        assert m.cc == 0.0

    def test_cc_overlap(self):
        m = compute_overlaps(
            timeline(rec(K, 0, 2, stream=1), rec(K, 1, 3, stream=2))
        )
        assert m.cc == pytest.approx(0.5)  # 1s overlap in each 2s kernel
        assert m.ct == 0.0 and m.tc == 0.0
        assert m.tot == pytest.approx(0.5)

    def test_tot_counts_union_once(self):
        # Three kernels all overlapping [0,1]: each is fully covered by
        # the others, so TOT = 1 (not inflated beyond the union).
        m = compute_overlaps(
            timeline(rec(K, 0, 1), rec(K, 0, 1), rec(K, 0, 1))
        )
        assert m.tot == pytest.approx(1.0)
        assert m.cc == pytest.approx(1.0)

    def test_dtoh_counts_as_transfer(self):
        m = compute_overlaps(timeline(rec(D, 0, 1), rec(K, 0, 1)))
        assert m.ct == pytest.approx(1.0)
        assert m.tc == pytest.approx(1.0)

    def test_zero_duration_records_ignored(self):
        m = compute_overlaps(
            timeline(rec(K, 0, 1), rec(IntervalKind.EVENT, 0.5, 0.5))
        )
        assert m.tot == 0.0


interval = st.tuples(
    st.floats(min_value=0, max_value=10, allow_nan=False),
    st.floats(min_value=0.01, max_value=5, allow_nan=False),
).map(lambda t: (t[0], t[0] + t[1]))


class TestProperties:
    @given(
        st.lists(interval, min_size=1, max_size=8),
        st.lists(interval, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_all_fractions_in_unit_interval(self, ks, ts):
        tl = timeline(
            *(rec(K, a, b) for a, b in ks),
            *(rec(H, a, b) for a, b in ts),
        )
        m = compute_overlaps(tl)
        for v in (m.ct, m.tc, m.cc, m.tot):
            assert -1e-9 <= v <= 1 + 1e-9

    @given(st.lists(interval, min_size=2, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_tot_at_least_cc_weighted(self, ks):
        # With only kernels, TOT == CC.
        tl = timeline(*(rec(K, a, b) for a, b in ks))
        m = compute_overlaps(tl)
        assert m.tot == pytest.approx(m.cc, abs=1e-9)


class TestOnRealRuns:
    def test_serial_has_no_cc_overlap(self):
        bench = create_benchmark("vec", 50_000, iterations=2)
        result = bench.run("1660", Mode.SERIAL)
        m = compute_overlaps(result.timeline)
        assert m.cc == pytest.approx(0.0, abs=1e-9)
        assert m.ct == pytest.approx(0.0, abs=1e-9)

    def test_parallel_bs_has_cc_overlap(self):
        bench = create_benchmark(
            "b&s", 2_000_000, iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        m = compute_overlaps(result.timeline)
        assert m.cc > 0.3  # ten overlapping chains
        assert m.tot > 0.3

    def test_parallel_vec_overlap_is_transfer_driven(self):
        bench = create_benchmark(
            "vec", 20_000_000, iterations=3, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        m = compute_overlaps(result.timeline)
        # VEC's speedup "comes only from transfer and computation
        # overlap" (section V-F): kernels hide under transfers (CT),
        # with no computation-computation overlap at all.
        assert m.ct > 0.2
        assert m.ct > m.tc
        assert m.cc == pytest.approx(0.0, abs=0.05)
        assert m.tot > 0.3
