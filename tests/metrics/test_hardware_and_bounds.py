"""Tests for hardware metrics, the contention-free bound, and stats."""

import pytest

from repro.gpusim.specs import GTX1660_SUPER
from repro.metrics import (
    compute_hardware_metrics,
    contention_free_time,
    geomean,
    median,
)
from repro.metrics.contention_free import contention_free_ratio
from repro.metrics.stats import speedup
from repro.workloads import Mode, create_benchmark


class TestStats:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([4, 1, 2, 3]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestHardwareMetrics:
    def run(self, mode):
        bench = create_benchmark(
            "ml", 200_000, iterations=2, execute=False
        )
        return bench.run(GTX1660_SUPER, mode)

    def test_throughputs_positive(self):
        result = self.run(Mode.PARALLEL)
        hw = compute_hardware_metrics(result.timeline, GTX1660_SUPER)
        assert hw.dram_throughput_gbs > 0
        assert hw.l2_throughput_gbs > 0
        assert hw.ipc > 0
        assert hw.gflops > 0

    def test_counters_schedule_invariant(self):
        # "The amount of bytes read/written ... mostly depends on the
        # kernel itself": totals equal across schedulers.
        hw_s = compute_hardware_metrics(
            self.run(Mode.SERIAL).timeline, GTX1660_SUPER
        )
        hw_p = compute_hardware_metrics(
            self.run(Mode.PARALLEL).timeline, GTX1660_SUPER
        )
        assert hw_s.total_dram_bytes == pytest.approx(
            hw_p.total_dram_bytes
        )
        assert hw_s.total_instructions == pytest.approx(
            hw_p.total_instructions
        )

    def test_parallel_raises_throughput(self):
        # Fig. 12: benchmarks with compute overlap show higher device
        # throughput under parallel scheduling (same work, less time).
        hw_s = compute_hardware_metrics(
            self.run(Mode.SERIAL).timeline, GTX1660_SUPER
        )
        hw_p = compute_hardware_metrics(
            self.run(Mode.PARALLEL).timeline, GTX1660_SUPER
        )
        assert hw_p.dram_throughput_gbs > hw_s.dram_throughput_gbs
        assert hw_p.ipc > hw_s.ipc

    def test_ipc_below_peak(self):
        result = self.run(Mode.PARALLEL)
        hw = compute_hardware_metrics(result.timeline, GTX1660_SUPER)
        assert hw.ipc < GTX1660_SUPER.ipc_peak

    def test_empty_timeline(self):
        from repro.gpusim.timeline import Timeline

        hw = compute_hardware_metrics(Timeline(), GTX1660_SUPER)
        assert hw.dram_throughput_gbs == 0.0


class TestContentionFreeBound:
    @pytest.mark.parametrize(
        "name, scale",
        [("vec", 20_000_000), ("b&s", 2_000_000), ("img", 1_600)],
    )
    def test_bound_is_a_lower_bound(self, name, scale):
        bench = create_benchmark(name, scale, iterations=2, execute=False)
        result = bench.run("1660", Mode.PARALLEL)
        bound = contention_free_time(bench, "1660")
        assert 0 < bound <= result.elapsed * 1.02  # tiny numeric slack

    def test_ratio_in_unit_interval(self):
        bench = create_benchmark(
            "img", 1_600, iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        ratio = contention_free_ratio(bench, "1660", result.elapsed)
        assert 0 < ratio <= 1.02

    def test_bs_far_from_bound(self):
        # Section V-E: "B&S ... achieves around 15-20% of its
        # contention-free peak performance" — ten chains collapse to a
        # one-chain critical path in the bound but serialize on the
        # shared FP64/PCIe resources in reality.
        bench = create_benchmark(
            "b&s", 8_000_000, iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        ratio = contention_free_ratio(bench, "1660", result.elapsed)
        assert ratio < 0.45

    def test_vec_closer_to_bound(self):
        bench = create_benchmark(
            "vec", 20_000_000, iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        ratio = contention_free_ratio(bench, "1660", result.elapsed)
        assert ratio > 0.4

    def test_bound_scales_with_iterations(self):
        b2 = create_benchmark("vec", 1_000_000, iterations=2, execute=False)
        b4 = create_benchmark("vec", 1_000_000, iterations=4, execute=False)
        t2 = contention_free_time(b2, "1660")
        t4 = contention_free_time(b4, "1660")
        assert t4 > t2
