"""Fast sanity tests of the figure-reproduction harness.

The full grids live in ``benchmarks/``; these run minimal configurations
so the harness logic (cell running, aggregation, rendering) is covered
by the regular test suite.
"""


from repro.harness import run_cell, sweep_cells
from repro.harness.figures import FigureData, table1, figure10
from repro.workloads import Mode


class TestRunner:
    def test_run_cell_basic(self):
        cell = run_cell("vec", "1660", 1_000_000, Mode.PARALLEL, iterations=2)
        assert cell.benchmark == "vec"
        assert cell.gpu == "GTX 1660 Super"
        assert cell.elapsed > 0
        assert cell.iterations == 2

    def test_run_cell_block_size(self):
        c32 = run_cell(
            "vec", "1660", 1_000_000, Mode.SERIAL, iterations=2,
            block_size=32,
        )
        assert c32.block_size == 32

    def test_sweep_cells_truncated(self):
        cells = sweep_cells(
            benchmarks=["vec"],
            gpus=["GTX 960"],
            modes=[Mode.SERIAL, Mode.PARALLEL],
            scales_per_gpu=1,
            iterations=2,
        )
        assert len(cells) == 2
        assert {c.mode for c in cells} == {Mode.SERIAL, Mode.PARALLEL}


class TestFigureData:
    def test_render_empty(self):
        assert "no data" in FigureData(name="x", rows=[]).render()

    def test_render_columns_aligned(self):
        data = FigureData(
            name="t",
            rows=[{"a": 1.0, "b": "xx"}, {"a": 22.5, "b": "y"}],
            summary={"geomean": 1.5},
        )
        text = data.render()
        assert "== t ==" in text
        assert "geomean: 1.5" in text

    def test_table1_shape(self):
        data = table1()
        assert len(data.rows) == 7  # 6 benchmarks + GPU-memory row
        assert set(data.rows[0]) == {
            "benchmark", "GTX 960", "GTX 1660 Super", "Tesla P100",
        }

    def test_figure10_has_timeline(self):
        data = figure10(scale=50_000, iterations=2)
        assert "timeline" in data.summary
        assert {r["metric"] for r in data.rows} == {"CT", "TC", "CC", "TOT"}


class TestMidScaleHelper:
    def test_mid_scale_second_point(self):
        from repro.harness.figures import _mid_scale

        assert _mid_scale("vec", "Tesla P100") == 80_000_000

    def test_mid_scale_falls_back_on_small_gpu(self):
        from repro.harness.figures import _mid_scale

        s = _mid_scale("b&s", "GTX 960")
        assert s in (2_000_000, 8_000_000)
