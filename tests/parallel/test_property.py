"""Property-based strategy-equivalence: random fleet topologies,
traffic mixes and slot-scoped fault plans must produce bit-identical
reports, counters and canonical traces under every execution strategy.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import numpy as np

from repro.obs.export import canonical_trace
from repro.obs.trace import Tracer
from repro.parallel import STRATEGIES
from repro.serve import SchedulerService, ServeConfig
from repro.serve.workloads import TRAFFIC_MIXES, traffic_mix_graphs

topologies = st.lists(
    st.integers(min_value=1, max_value=2), min_size=2, max_size=3
)
mixes = st.sampled_from(sorted(TRAFFIC_MIXES))
# None = fault-free; otherwise (kind, slot_offset, at) tuples rendered
# against the drawn topology so the slot scope always exists.
fault_draws = st.one_of(
    st.none(),
    st.lists(
        st.tuples(
            st.sampled_from(["crash", "degrade", "transfer-fault"]),
            st.integers(min_value=0, max_value=7),
            st.sampled_from([5e-4, 1e-3, 2e-3]),
        ),
        min_size=1,
        max_size=2,
    ),
)


def render_faults(draws, slot_count):
    if draws is None:
        return None
    parts = []
    for kind, offset, at in draws:
        slot = offset % slot_count
        spec = f"{kind}:slot={slot},at={at}"
        if kind == "degrade":
            spec += ",factor=2.0"
        parts.append(spec)
    return ";".join(parts)


def run_once(parallel, topology, mix, faults):
    tracer = Tracer()
    service = SchedulerService(
        fleet_topology=list(topology),
        config=ServeConfig(parallel=parallel, faults=faults),
        tracer=tracer,
    )
    for t in range(2):
        service.register_tenant(f"tenant{t}", priority=1 - t)
    rng = np.random.default_rng(13)
    arrival = 0.0
    for i, graph in enumerate(traffic_mix_graphs(6, mix=mix, seed=13)):
        arrival += float(rng.exponential(120e-6))
        service.submit(f"tenant{i % 2}", graph, arrival_time=arrival)
    report = service.run()
    return (
        report.fingerprint(),
        report.counters,
        canonical_trace(tracer, results=report.results),
    )


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=topologies, mix=mixes, draws=fault_draws)
def test_strategies_agree_on_random_scenarios(topology, mix, draws):
    faults = render_faults(draws, len(topology))
    reference = run_once("sequential", topology, mix, faults)
    for strategy in STRATEGIES[1:]:
        fingerprint, counters, trace = run_once(
            strategy, topology, mix, faults
        )
        assert fingerprint == reference[0], (strategy, faults)
        assert counters == reference[1], (strategy, faults)
        assert trace == reference[2], (strategy, faults)
