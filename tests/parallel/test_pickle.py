"""Pickle-ability audit: everything the process strategy ships over a
pipe must round-trip.  These tests pin the isolation boundary — a new
field that breaks pickling fails here, not as an opaque worker crash.
"""

import pickle

import numpy as np
import pytest

from repro.cluster.network import INTERCONNECTS, LinkSpec
from repro.core.policies import SchedulerConfig
from repro.faults import FaultPlan
from repro.parallel import SlotOutcome, SlotWork
from repro.serve.capture import derive_plan
from repro.serve.request import GraphRequest, GraphResult, RequestStatus
from repro.serve.service import ServeConfig
from repro.serve.workloads import traffic_mix_graphs


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def graphs_equal(a, b) -> bool:
    """Structural TaskGraph equality (dataclass ``==`` chokes on the
    ndarray ``init`` fields)."""
    if a.name != b.name or a.outputs != b.outputs:
        return False
    if a.topology_key() != b.topology_key():
        return False
    for name, decl in a.arrays.items():
        other = b.arrays[name]
        if (decl.init is None) != (other.init is None):
            return False
        if decl.init is not None and not np.array_equal(
            decl.init, other.init
        ):
            return False
    return True


def test_scheduler_config_roundtrip():
    config = SchedulerConfig()
    clone = roundtrip(config)
    assert clone == config


def test_serve_config_roundtrip():
    config = ServeConfig(parallel="process", workers=3)
    clone = roundtrip(config)
    assert clone.parallel == "process"
    assert clone.workers == 3
    assert clone.admission == config.admission


def test_fault_plan_roundtrip():
    plan = FaultPlan.parse(
        "crash:slot=1,at=2e-3;degrade:slot=0,at=1e-3,factor=2.0"
    )
    clone = roundtrip(plan)
    assert clone.describe() == plan.describe()
    assert clone.for_slot(1) == plan.for_slot(1)


def test_link_specs_roundtrip():
    for name, spec in INTERCONNECTS.items():
        clone = roundtrip(spec)
        assert isinstance(clone, LinkSpec)
        assert clone == spec or clone.name == name  # inf bandwidth case


def test_task_graph_payloads_roundtrip():
    for graph in traffic_mix_graphs(6, seed=3):
        clone = roundtrip(graph)
        assert graphs_equal(graph, clone)
        # The kernel callables must survive as *callable* module-level
        # functions — the worker re-executes them.
        for kernel in clone.kernels:
            assert callable(kernel.fn)


def test_graph_request_roundtrip():
    graph = traffic_mix_graphs(1, seed=3)[0]
    request = GraphRequest(
        tenant="alice",
        graph=graph,
        priority=2,
        arrival_time=1e-4,
        deadline=5e-3,
        request_id=17,
        attempts=1,
        not_before=2e-4,
        last_slot=0,
    )
    clone = roundtrip(request)
    assert clone.request_id == 17
    assert clone.tenant == "alice"
    assert clone.dispatch_floor == request.dispatch_floor
    assert graphs_equal(clone.graph, graph)


def test_graph_result_roundtrip():
    result = GraphResult(
        request_id=5,
        tenant="bob",
        graph_name="vec",
        outputs={"y": np.arange(8, dtype=np.float32)},
        arrival_time=0.0,
        start_time=1e-4,
        finish_time=2e-4,
        device_index=1,
        batch_id=3,
        batch_size=2,
        replayed=True,
        status=RequestStatus.COMPLETED,
    )
    clone = roundtrip(result)
    assert clone.request_id == 5
    assert clone.status is RequestStatus.COMPLETED
    assert np.array_equal(clone.outputs["y"], result.outputs["y"])


def test_capture_plan_roundtrip():
    graph = traffic_mix_graphs(1, seed=3)[0]
    plan = derive_plan(graph)
    clone = roundtrip(plan)
    assert clone.stream_count == plan.stream_count
    assert len(clone.steps) == len(plan.steps)


def test_slot_work_and_outcome_roundtrip():
    graph = traffic_mix_graphs(1, seed=3)[0]
    work = SlotWork(
        slot_index=2,
        batch=[GraphRequest(tenant="t", graph=graph, request_id=1)],
        plan=derive_plan(graph),
        batch_id=7,
        slowdown=2.0,
        transfer_fault=None,
        clock_start=1e-3,
    )
    clone = roundtrip(work)
    assert clone.slot_index == 2
    assert clone.batch_id == 7
    assert clone.plan.stream_count == work.plan.stream_count

    outcome = SlotOutcome(
        slot_index=2,
        batch_id=7,
        finish=2e-3,
        results=[(1, {"y": np.zeros(4)}, 1e-3, 2e-3)],
        histories=[("t", [])],
    )
    clone = roundtrip(outcome)
    assert clone.finish == pytest.approx(2e-3)
    assert np.array_equal(clone.results[0][1]["y"], np.zeros(4))
