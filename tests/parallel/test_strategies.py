"""The execution-strategy matrix contract: every strategy produces
bit-identical reports, counters and canonical traces; strategies and
services close idempotently; request-id allocation is service-owned.
"""

import numpy as np
import pytest

from repro.obs.export import canonical_trace
from repro.obs.trace import Tracer
from repro.parallel import STRATEGIES, make_strategy, resolve_workers
from repro.serve import SchedulerService, ServeConfig
from repro.serve.workloads import traffic_mix_graphs

FAULT_PLAN = "crash:slot=1,at=2e-3;degrade:slot=0,at=1e-3,factor=2.0"


def run_strategy(
    parallel,
    *,
    fleet=(2, 1, 1),
    requests=24,
    tenants=3,
    faults=None,
    workers=None,
    trace=True,
):
    """One serving run under one strategy; returns (report, tracer)."""
    tracer = Tracer() if trace else None
    service = SchedulerService(
        fleet_topology=list(fleet),
        config=ServeConfig(
            parallel=parallel, workers=workers, faults=faults
        ),
        tracer=tracer,
    )
    for t in range(tenants):
        service.register_tenant(f"tenant{t}", priority=tenants - 1 - t)
    rng = np.random.default_rng(11)
    arrival = 0.0
    for i, graph in enumerate(traffic_mix_graphs(requests, seed=11)):
        arrival += float(rng.exponential(120e-6))
        service.submit(f"tenant{i % tenants}", graph, arrival_time=arrival)
    report = service.run()
    return report, tracer


class TestStrategyMatrix:
    @pytest.mark.parametrize("faults", [None, FAULT_PLAN])
    def test_matrix_is_bit_identical(self, faults):
        """Acceptance: fingerprints, counters and canonical traces are
        equal across sequential/threading/process — with and without a
        slot-scoped fault plan."""
        states = {}
        for strategy in STRATEGIES:
            report, tracer = run_strategy(strategy, faults=faults)
            states[strategy] = (
                report.fingerprint(),
                report.counters,
                canonical_trace(tracer, results=report.results),
            )
        reference = states["sequential"]
        for strategy in STRATEGIES:
            assert states[strategy][0] == reference[0], strategy
            assert states[strategy][1] == reference[1], strategy
            assert states[strategy][2] == reference[2], strategy

    def test_process_with_single_worker_matches(self):
        """Worker sharding is a pure partition: one worker owning every
        slot equals the multi-worker run."""
        one, _ = run_strategy("process", workers=1, trace=False)
        many, _ = run_strategy("process", workers=3, trace=False)
        assert one.fingerprint() == many.fingerprint()

    def test_faulted_process_counters_match_sequential(self):
        seq, _ = run_strategy("sequential", faults=FAULT_PLAN, trace=False)
        proc, _ = run_strategy("process", faults=FAULT_PLAN, trace=False)
        assert proc.counters == seq.counters
        assert proc.counters.get("faults.injected", 0) > 0


class TestLifecycle:
    def test_service_close_is_idempotent(self):
        service = SchedulerService(
            fleet_size=2, config=ServeConfig(parallel="process")
        )
        service.register_tenant("t")
        service.submit("t", traffic_mix_graphs(1, seed=1)[0])
        service.run()
        service.close()
        service.close()

    def test_process_strategy_close_twice(self):
        service = SchedulerService(fleet_size=2)
        strategy = make_strategy(
            "process", service.fleet.slots, service.config
        )
        strategy.close()
        strategy.close()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="greenlets"):
            ServeConfig(parallel="greenlets")
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            make_strategy("greenlets", [], None)


class TestResolveWorkers:
    def test_explicit_cap_clamped_to_slots(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(2, 3) == 2
        assert resolve_workers(1, 3) == 1

    def test_default_is_at_least_one(self):
        assert resolve_workers(None, 1) == 1
        assert resolve_workers(None, 64) >= 1


class TestServiceOwnedRequestIds:
    def test_two_services_side_by_side(self):
        """Regression for the global-counter era: two services running
        side by side each number their submissions from 1, so their
        reports are independently reproducible."""
        reports = []
        for _ in range(2):
            service = SchedulerService(fleet_size=2)
            service.register_tenant("t")
            ids = [
                service.submit(
                    "t",
                    graph,
                    arrival_time=i * 1e-4,
                )
                for i, graph in enumerate(traffic_mix_graphs(5, seed=2))
            ]
            assert ids == [1, 2, 3, 4, 5]
            reports.append(service.run())
        assert reports[0].fingerprint() == reports[1].fingerprint()

    def test_interleaved_submissions_do_not_share_ids(self):
        a = SchedulerService(fleet_size=1)
        b = SchedulerService(fleet_size=1)
        a.register_tenant("t")
        b.register_tenant("t")
        graphs = traffic_mix_graphs(4, seed=3)
        ids_a, ids_b = [], []
        for i, graph in enumerate(graphs):
            ids_a.append(a.submit("t", graph, arrival_time=i * 1e-4))
            ids_b.append(b.submit("t", graph, arrival_time=i * 1e-4))
        assert ids_a == [1, 2, 3, 4]
        assert ids_b == [1, 2, 3, 4]
        assert a.run().fingerprint() == b.run().fingerprint()
