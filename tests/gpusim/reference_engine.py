"""Frozen copy of the pre-PR-3 scan-based discrete-event engine.

This is the bit-identity oracle for the indexed engine in
``repro.gpusim.engine``: every step rescans all streams and re-prices
the full running set, exactly as the engine did before the event-heap
refactor.  Do not optimise this file — its O(n^2) behaviour *is* the
specification the golden tests compare against.
"""


from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable

from repro.errors import DeadlockError, InvalidStateError, SimulationError
from repro.gpusim.device import Device
from repro.gpusim.ops import (
    EventRecordOp,
    EventWaitOp,
    KernelOp,
    Operation,
    OpState,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.stream import DEFAULT_STREAM_ID, SimEvent, SimStream
from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord

#: Completion tolerance for floating-point work accounting.
_WORK_EPS = 1e-9


class ReferenceSimEngine:
    """Virtual-time executor for one or more :class:`Device` s.

    Multi-GPU engines (the paper's section-VI future work) share one
    virtual clock and one event space; each stream belongs to a device,
    and the contention model of *that* device prices its running
    operations (each GPU has its own SMs, bandwidth pools and PCIe
    link).
    """

    def __init__(self, device: Device | list[Device]) -> None:
        devices = [device] if isinstance(device, Device) else list(device)
        if not devices:
            raise InvalidStateError("engine needs at least one device")
        self.devices: tuple[Device, ...] = tuple(devices)
        self.device = self.devices[0]  # primary, single-GPU API
        self.clock: float = 0.0
        self.timeline = Timeline()
        self._streams: dict[int, SimStream] = {}
        self._stream_ids = itertools.count(DEFAULT_STREAM_ID)
        self._running: list[Operation] = []
        self.default_stream = self.create_stream(label="default")
        #: count of rate recomputations (engine-efficiency introspection)
        self.repricings: int = 0

    # -- stream management --------------------------------------------------

    def create_stream(
        self, label: str = "", device_index: int = 0
    ) -> SimStream:
        if not 0 <= device_index < len(self.devices):
            raise InvalidStateError(
                f"device index {device_index} out of range"
                f" (engine has {len(self.devices)} device(s))"
            )
        sid = next(self._stream_ids)
        stream = SimStream(sid, label=label, device_index=device_index)
        self._streams[sid] = stream
        return stream

    @property
    def streams(self) -> tuple[SimStream, ...]:
        return tuple(self._streams.values())

    def stream(self, stream_id: int) -> SimStream:
        return self._streams[stream_id]

    def reclaim_stream(self, stream: SimStream) -> None:
        """Destroy an idle stream and stop scheduling over it.

        Long-lived engines that serve many short-lived contexts (see
        :meth:`repro.core.runtime.GrCUDARuntime.renew_context`) would
        otherwise scan an ever-growing list of dead streams on every
        scheduling step.  The default stream cannot be reclaimed.
        """
        if stream is self.default_stream:
            raise InvalidStateError("cannot reclaim the default stream")
        if self._streams.get(stream.stream_id) is not stream:
            raise InvalidStateError(
                f"stream {stream.label} does not belong to this engine"
            )
        stream.destroy()  # raises if busy
        del self._streams[stream.stream_id]

    def reclaim_streams(self, streams: Iterable[SimStream]) -> None:
        """Reclaim several idle streams (see :meth:`reclaim_stream`)."""
        for stream in streams:
            self.reclaim_stream(stream)

    # -- submission -----------------------------------------------------------

    def submit(self, stream: SimStream, op: Operation) -> Operation:
        """Queue ``op`` on ``stream`` at the current virtual time."""
        if stream.stream_id not in self._streams:
            raise InvalidStateError(f"stream {stream.label} is foreign")
        op.submit_time = self.clock
        stream.submit(op)
        return op

    def record_event(
        self, stream: SimStream, event: SimEvent | None = None, label: str = ""
    ) -> SimEvent:
        """Submit an event-record on ``stream``; returns the event."""
        ev = event or SimEvent(label=label or f"ev@{stream.label}")
        self.submit(stream, EventRecordOp(label=ev.label, event=ev))
        return ev

    def wait_event(self, stream: SimStream, event: SimEvent) -> None:
        """Make later work on ``stream`` wait for ``event``."""
        self.submit(
            stream, EventWaitOp(label=f"wait:{event.label}", event=event)
        )

    def charge_host_time(self, seconds: float) -> None:
        """Advance the clock by host-side overhead, simulating the device
        in the background meanwhile (launch overheads, scheduling costs)."""
        if seconds < 0:
            raise ValueError("host time must be >= 0")
        self._advance_to_time(self.clock + seconds)

    # -- synchronization ----------------------------------------------------

    def sync_event(self, event: SimEvent) -> None:
        """Block the host until ``event`` completes."""
        self._run_until(lambda: event.complete, what=f"event {event.label}")

    def sync_stream(self, stream: SimStream) -> None:
        """Block the host until everything queued on ``stream`` completes."""
        self._run_until(lambda: not stream.busy, what=f"stream {stream.label}")

    def sync_all(self) -> None:
        """Drain every stream (``cudaDeviceSynchronize``)."""
        self._run_until(
            lambda: all(not s.busy for s in self._streams.values()),
            what="device",
        )

    @property
    def idle(self) -> bool:
        return all(not s.busy for s in self._streams.values())

    # -- core loop -------------------------------------------------------------

    def _run_until(self, pred: Callable[[], bool], what: str) -> None:
        while not pred():
            if not self._step():
                raise DeadlockError(
                    f"waiting on {what}, but no operation can make progress"
                    " (cyclic event wait or event never recorded)"
                )

    def _advance_to_time(self, target: float) -> None:
        """Simulate until ``clock == target`` (GPU may go idle earlier)."""
        while self.clock < target:
            if not self._step(time_cap=target):
                self.clock = target
                return

    def _step(self, time_cap: float | None = None) -> bool:
        """One engine step.  Returns False if no progress is possible.

        Instantaneous progress (op starts, event records) returns
        immediately without advancing the clock, so host-side sync
        predicates are re-checked at the tightest possible points.
        """
        if self._drain_instantaneous():
            return True
        if not self._running:
            return False
        self.repricings += 1
        rates: dict[int, float] = {}
        if len(self.devices) == 1:
            rates = self.device.contention.allocate(self._running).rates
        else:
            by_device: dict[int, list[Operation]] = {}
            for op in self._running:
                assert op.stream is not None
                by_device.setdefault(op.stream.device_index, []).append(op)
            for idx, ops in by_device.items():
                rates.update(
                    self.devices[idx].contention.allocate(ops).rates
                )
        dt = math.inf
        for op in self._running:
            rate = rates.get(op.op_id, 0.0)
            if rate <= 0:
                raise SimulationError(
                    f"{op.describe()} allocated non-positive rate {rate}"
                )
            dt = min(dt, op.work_remaining / rate)
        if time_cap is not None:
            dt = min(dt, time_cap - self.clock)
        if dt < 0 or not math.isfinite(dt):
            raise SimulationError(f"invalid time step {dt}")
        self.clock += dt
        finished: list[Operation] = []
        for op in self._running:
            rate = rates[op.op_id]
            op.work_remaining -= rate * dt
            if op.work_remaining <= _WORK_EPS * max(1.0, op.work_total):
                op.work_remaining = 0.0
                finished.append(op)
        for op in finished:
            self._complete(op)
        return True

    def _drain_instantaneous(self) -> bool:
        """Start all ready ops; complete the zero-duration ones, looping
        until no cascade remains (an event record can unblock waits)."""
        progressed = False
        changed = True
        while changed:
            changed = False
            for stream in self._streams.values():
                op = stream.head_if_ready()
                if op is None:
                    continue
                self._start(op)
                progressed = changed = True
                if op.instantaneous:
                    self._complete(op)
        return progressed

    # -- op lifecycle -----------------------------------------------------------

    def _start(self, op: Operation) -> None:
        assert op.stream is not None
        op.stream.begin(op)
        op.state = OpState.RUNNING
        op.start_time = self.clock
        if not op.instantaneous:
            self._running.append(op)

    def _complete(self, op: Operation) -> None:
        assert op.stream is not None
        op.state = OpState.COMPLETE
        op.end_time = self.clock
        if op in self._running:
            self._running.remove(op)
        op.stream.finish(op)
        self._record(op)
        self._apply_effects(op)
        for callback in op.on_complete:
            callback(op)

    def _apply_effects(self, op: Operation) -> None:
        if isinstance(op, EventRecordOp):
            assert op.event is not None
            op.event._record(self.clock)
        elif isinstance(op, TransferOp) and op.apply_fn is not None:
            op.apply_fn()
        elif isinstance(op, KernelOp) and op.compute_fn is not None:
            op.compute_fn()

    def _record(self, op: Operation) -> None:
        assert op.stream is not None
        if isinstance(op, KernelOp):
            kind = IntervalKind.KERNEL
            nbytes = 0.0
            meta = {"resources": op.resources}
        elif isinstance(op, TransferOp):
            kind = {
                TransferDirection.HOST_TO_DEVICE: IntervalKind.TRANSFER_HTOD,
                TransferDirection.DEVICE_TO_HOST: IntervalKind.TRANSFER_DTOH,
                TransferDirection.DEVICE_TO_DEVICE: IntervalKind.TRANSFER_D2D,
            }[op.direction]
            nbytes = op.nbytes
            meta = {"kind": op.kind}
        else:
            kind = IntervalKind.EVENT
            nbytes = 0.0
            meta = {}
        meta.update(op.info)
        self.timeline.add(
            TimelineRecord(
                op_id=op.op_id,
                label=op.label,
                kind=kind,
                stream_id=op.stream.stream_id,
                start=op.start_time,
                end=op.end_time,
                nbytes=nbytes,
                meta=meta,
            )
        )
