"""Bit-identity of the indexed engine against the frozen scan engine.

The event-heap refactor must not move a single simulated timestamp: the
heap jump is exact for piecewise-constant rates, the cached rates are a
pure function of the running set, and the per-step work accounting uses
the same floating-point operations in the same order.  These tests
compare the new :class:`repro.gpusim.engine.SimEngine` against
``reference_engine.ReferenceSimEngine`` (the verbatim pre-refactor
implementation) with **exact float equality** — no tolerances.
"""

import random

import pytest
from reference_engine import ReferenceSimEngine

from repro.gpusim import Device, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.workloads import Mode, create_benchmark
from repro.workloads.suite import BENCHMARKS, default_scales


def _signature(timeline):
    """Order-normalized record tuples: same-instant zero-duration ops may
    drain in a different relative order across engines, but every
    (start, end, kind, stream, label, nbytes) tuple must match exactly."""
    return sorted(
        (
            (rec.start, rec.end, rec.kind.value, rec.stream_id,
             rec.label, rec.nbytes)
            for rec in timeline
        ),
    )


def _drive(engine_cls, seed, num_ops=150, num_streams=6):
    """One randomized engine-level program: kernels, transfers (both
    directions, including zero-byte instantaneous ones), event chains
    across streams, host-time charges (capped clock advances — the
    floating-point-critical path) and partial syncs.

    Every ``wait_event`` references an event whose record op was
    submitted strictly earlier, so the program is deadlock-free by
    construction.
    """
    rng = random.Random(seed)
    engine = engine_cls(Device(GTX1660_SUPER))
    streams = [engine.default_stream] + [
        engine.create_stream(label=f"s{i}") for i in range(num_streams - 1)
    ]
    events = []
    for i in range(num_ops):
        stream = rng.choice(streams)
        roll = rng.random()
        if roll < 0.40:
            engine.submit(
                stream,
                KernelOp(
                    label=f"k{i}",
                    resources=KernelResourceRequest(
                        flops=rng.uniform(1e7, 4e9),
                        fp64=rng.random() < 0.2,
                        dram_bytes=rng.uniform(0, 5e7),
                        l2_bytes=rng.uniform(0, 1e7),
                        instructions=rng.uniform(0, 1e8),
                        threads_total=rng.choice(
                            [256, 4096, 1 << 16, 1 << 20]
                        ),
                        sm_fraction_cap=rng.choice([1.0, 1.0, 0.5, 0.25]),
                    ),
                ),
            )
        elif roll < 0.55:
            engine.submit(
                stream,
                TransferOp(
                    label=f"t{i}",
                    direction=rng.choice(
                        [
                            TransferDirection.HOST_TO_DEVICE,
                            TransferDirection.DEVICE_TO_HOST,
                        ]
                    ),
                    nbytes=rng.choice([0.0, 4096.0, 1e6, 3e7]),
                ),
            )
        elif roll < 0.67:
            events.append(engine.record_event(stream, label=f"e{i}"))
        elif roll < 0.79 and events:
            engine.wait_event(stream, rng.choice(events))
        elif roll < 0.92:
            engine.charge_host_time(rng.uniform(0.0, 3e-4))
        elif roll < 0.96 and events:
            engine.sync_event(rng.choice(events))
        else:
            engine.sync_stream(rng.choice(streams))
    engine.sync_all()
    return engine


class TestEngineLevelGolden:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_bit_identical(self, seed):
        new = _drive(SimEngine, seed)
        ref = _drive(ReferenceSimEngine, seed)
        assert new.clock == ref.clock  # exact, no approx
        assert len(new.timeline) == len(ref.timeline)
        assert _signature(new.timeline) == _signature(ref.timeline)

    def test_capped_advance_work_accounting_identical(self):
        """Host-time charges interrupt running ops mid-flight; the
        decrement-then-fresh-min arithmetic must match the legacy
        engine's to the last ulp."""

        def run(engine_cls):
            engine = engine_cls(Device(GTX1660_SUPER))
            s = engine.create_stream()
            op = KernelOp(
                label="k",
                resources=KernelResourceRequest(
                    flops=3.8e9,
                    fp64=False,
                    dram_bytes=1e7,
                    l2_bytes=0.0,
                    instructions=0.0,
                    threads_total=1 << 20,
                ),
            )
            engine.submit(s, op)
            # Many tiny irregular charges: each caps a step without
            # completing the kernel.
            for k in range(50):
                engine.charge_host_time(1.3e-5 + k * 1e-7)
            engine.sync_all()
            return engine.clock, op.end_time

        assert run(SimEngine) == run(ReferenceSimEngine)

    def test_repricings_bounded_by_set_changes(self):
        engine = _drive(SimEngine, seed=3)
        assert engine.repricings <= engine.running_set_changes + 1
        assert engine.steps >= engine.repricings

    def test_reference_engine_reprices_per_step(self):
        """Sanity: the oracle still shows the legacy pathology the new
        engine fixes (otherwise these tests prove nothing)."""
        ref = _drive(ReferenceSimEngine, seed=3)
        new = _drive(SimEngine, seed=3)
        assert ref.repricings > new.repricings


class TestWorkloadSuiteGolden:
    """Full workload suite, both schedulers, on both engines."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("mode", [Mode.SERIAL, Mode.PARALLEL])
    def test_workload_timelines_bit_identical(self, monkeypatch, name, mode):
        def run():
            scale = default_scales(name, "GTX 1660 Super")[0]
            bench = create_benchmark(name, scale, iterations=2)
            return bench.run("GTX 1660 Super", mode)

        res_new = run()
        monkeypatch.setattr(
            "repro.session.SimEngine", ReferenceSimEngine
        )
        monkeypatch.setattr(
            "repro.workloads.base.SimEngine", ReferenceSimEngine
        )
        res_ref = run()
        assert res_new.elapsed == res_ref.elapsed
        assert res_new.host_clock == res_ref.host_clock
        assert _signature(res_new.timeline) == _signature(res_ref.timeline)

    def test_graph_replay_timeline_bit_identical(self, monkeypatch):
        def run():
            scale = default_scales("vec", "GTX 1660 Super")[0]
            bench = create_benchmark("vec", scale, iterations=2)
            return bench.run("GTX 1660 Super", Mode.GRAPH_CAPTURE)

        res_new = run()
        monkeypatch.setattr(
            "repro.session.SimEngine", ReferenceSimEngine
        )
        monkeypatch.setattr(
            "repro.workloads.base.SimEngine", ReferenceSimEngine
        )
        res_ref = run()
        assert res_new.elapsed == res_ref.elapsed
        assert _signature(res_new.timeline) == _signature(res_ref.timeline)


class TestServingReplayGolden:
    def test_serving_report_bit_identical(self, monkeypatch):
        from repro.harness import serve_bench

        def run():
            report = serve_bench(
                tenants=3, requests=24, fleet_size=2, render=False
            )
            m = report.metrics
            return (
                m.makespan,
                m.throughput_rps,
                m.device_utilization,
                m.latency,
                m.queue_wait,
                tuple(
                    (r.tenant, r.arrival_time, r.start_time, r.finish_time)
                    for r in report.results
                ),
            )

        res_new = run()
        monkeypatch.setattr(
            "repro.session.SimEngine", ReferenceSimEngine
        )
        res_ref = run()
        assert res_new == res_ref
