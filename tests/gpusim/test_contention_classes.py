"""Property tests of the contention-class model.

The class-based allocator prices one rate per distinct resource
signature instead of one per running op.  These tests pin it against
``reference_contention.ReferenceContentionModel`` — the frozen per-op
allocator — on random running sets (mixed kernels/transfers, duplicate
signatures, FP64, fault bytes):

* mathematically the two are the same formula, differing only in float
  fold *order* (the reference folds pool weights in running-list order,
  the class model folds per-class ladders in signature order), so rates
  agree to 1e-9 relative on arbitrary inputs;
* when the running set is a single class the folds coincide term for
  term, so equality is **exact** — no tolerance;
* the incremental multiset (``class_add`` / ``class_remove``) must be
  **bit-identical** to a one-shot ``allocate`` of the same set: both
  price the same signature-sorted class tuple, which is the invariant
  the engine's golden tests rely on.

Plus the scaling regression the rewrite exists for: class count stays
O(distinct signatures) — not O(streams) — under 256 homogeneous streams.
"""

import math

from hypothesis import given, settings, strategies as st
from reference_contention import ReferenceContentionModel

from repro.gpusim.contention import ClassedContentionModel
from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import GTX1660_SUPER, TESLA_P100

SPECS = (GTX1660_SUPER, TESLA_P100)

#: (flops, fp64, dram, l2, instructions, threads, fault, cap)
resource_params = st.tuples(
    st.floats(0, 1e12),
    st.booleans(),
    st.floats(0, 1e10),
    st.floats(0, 1e10),
    st.floats(0, 1e11),
    st.integers(32, 1 << 20),
    st.floats(0, 1e9),
    st.floats(0.1, 1.0),
)


def _kernel(params) -> KernelOp:
    flops, fp64, dram, l2, instr, threads, fault, cap = params
    return KernelOp(
        label="k",
        resources=KernelResourceRequest(
            flops=flops,
            fp64=fp64,
            dram_bytes=dram,
            l2_bytes=l2,
            instructions=instr,
            threads_total=threads,
            fault_bytes=fault,
            sm_fraction_cap=cap,
        ),
    )


def _transfer(direction, nbytes) -> TransferOp:
    return TransferOp(label="t", direction=direction, nbytes=nbytes)


@st.composite
def running_sets(draw):
    """A running set drawn from a small signature pool (so duplicate
    signatures are common — each duplicate is a fresh request object,
    exercising value-based interning), mixed with transfers, in a
    random submission order."""
    pool = draw(
        st.lists(resource_params, min_size=1, max_size=4, unique=True)
    )
    picks = draw(
        st.lists(
            st.integers(0, len(pool) - 1), min_size=1, max_size=16
        )
    )
    ops: list = [_kernel(pool[i]) for i in picks]
    transfers = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        TransferDirection.HOST_TO_DEVICE,
                        TransferDirection.DEVICE_TO_HOST,
                    ]
                ),
                st.floats(1, 1e9),
            ),
            max_size=4,
        )
    )
    ops.extend(_transfer(d, n) for d, n in transfers)
    return draw(st.permutations(ops))


@st.composite
def homogeneous_sets(draw):
    """Many ops of ONE signature (one contention class)."""
    params = draw(resource_params)
    count = draw(st.integers(2, 20))
    return [_kernel(params) for _ in range(count)]


class TestClassedMatchesReference:
    @given(running=running_sets(), spec=st.sampled_from(SPECS))
    @settings(max_examples=150, deadline=None)
    def test_rates_match_reference(self, running, spec):
        """Class pricing equals the frozen per-op allocator: exact for
        transfers (verbatim DMA logic), 1e-9 relative for kernels
        (same formula, different float fold order)."""
        got = ClassedContentionModel(spec).allocate(list(running))
        want = ReferenceContentionModel(spec).allocate(list(running))
        assert set(got.rates) == set(want.rates)
        for op in running:
            g, w = got.rates[op.op_id], want.rates[op.op_id]
            if isinstance(op, TransferOp):
                assert g == w
            else:
                assert math.isclose(g, w, rel_tol=1e-9), (op, g, w)
        assert set(got.kernel_sm_share) == set(want.kernel_sm_share)
        for op_id, share in want.kernel_sm_share.items():
            assert math.isclose(
                got.kernel_sm_share[op_id], share, rel_tol=1e-9
            )

    @given(kernels=homogeneous_sets(), spec=st.sampled_from(SPECS))
    @settings(max_examples=100, deadline=None)
    def test_single_class_exact(self, kernels, spec):
        """One signature: the class ladder IS the reference's sequential
        fold, so equality is bit-exact."""
        got = ClassedContentionModel(spec).allocate(list(kernels))
        want = ReferenceContentionModel(spec).allocate(list(kernels))
        for k in kernels:
            assert got.rates[k.op_id] == want.rates[k.op_id]
            assert (
                got.kernel_sm_share[k.op_id]
                == want.kernel_sm_share[k.op_id]
            )


class TestIncrementalMatchesOneShot:
    @given(
        running=running_sets(),
        spec=st.sampled_from(SPECS),
        drop_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_incremental_reprice_is_bit_identical(
        self, running, spec, drop_seed
    ):
        """Adding kernels one at a time then repricing gives exactly the
        one-shot allocation, including after removing a subset."""
        kernels = [op for op in running if isinstance(op, KernelOp)]
        if not kernels:
            return
        model = ClassedContentionModel(spec)
        cls_of = {k.op_id: model.class_add(k) for k in kernels}

        def check(current):
            priced = {
                cls: (rate, share)
                for cls, rate, share in model.reprice_classes()
            }
            want = ClassedContentionModel(spec).allocate(list(current))
            for k in current:
                rate, share = priced[cls_of[k.op_id]]
                assert rate == want.rates[k.op_id]
                assert share == want.kernel_sm_share[k.op_id]

        check(kernels)
        # Remove a deterministic pseudo-random subset and re-check.
        keep, dropped = [], []
        for i, k in enumerate(kernels):
            if (drop_seed >> (i % 32)) & 1:
                model.class_remove(cls_of[k.op_id])
                model.forget_op(k.op_id)
                dropped.append(k)
            else:
                keep.append(k)
        if keep:
            check(keep)
        assert model.active_class_count <= len(
            {k.resources.signature() for k in keep}
        )


class TestClassCountRegression:
    def test_256_homogeneous_streams_one_class(self):
        """256 live streams of identical kernels must collapse to ONE
        contention class — the per-op cost the rewrite removes."""
        engine = SimEngine(Device(GTX1660_SUPER))
        streams = [engine.create_stream() for _ in range(256)]
        for i in range(512):
            engine.submit(
                streams[i % 256],
                KernelOp(
                    label=f"k{i}",
                    resources=KernelResourceRequest(
                        flops=1e9,
                        fp64=False,
                        dram_bytes=float(1 << 20),
                        l2_bytes=0.0,
                        instructions=0.0,
                        threads_total=2048,
                    ),
                ),
            )
        engine.sync_all()
        assert engine.counters.get("engine.classes") == 1
        assert engine.device.contention.active_class_count == 0

    def test_class_watermark_tracks_distinct_signatures(self):
        """Mixed signatures: the class high-watermark is bounded by the
        number of distinct signatures, never by the stream count."""
        engine = SimEngine(Device(GTX1660_SUPER))
        streams = [engine.create_stream() for _ in range(64)]
        distinct = 4
        for i in range(256):
            engine.submit(
                streams[i % 64],
                KernelOp(
                    label=f"k{i}",
                    resources=KernelResourceRequest(
                        flops=1e9 * (1 + i % distinct),
                        fp64=False,
                        dram_bytes=float(1 << 18),
                        l2_bytes=0.0,
                        instructions=0.0,
                        threads_total=1024,
                    ),
                ),
            )
        engine.sync_all()
        watermark = engine.counters.get("engine.classes")
        assert 1 <= watermark <= distinct
