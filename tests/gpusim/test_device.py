"""Tests for device memory accounting."""

import pytest

from repro.errors import OutOfMemoryError
from repro.gpusim import Device, GTX960


class TestDeviceAllocation:
    def test_allocate_and_free(self):
        dev = Device(GTX960)
        h = dev.allocate(1000)
        assert dev.allocated_bytes == 1000
        dev.free(h)
        assert dev.allocated_bytes == 0

    def test_free_bytes(self):
        dev = Device(GTX960)
        dev.allocate(int(0.5e9))
        assert dev.free_bytes == GTX960.device_memory_bytes - int(0.5e9)

    def test_oom_at_capacity(self):
        dev = Device(GTX960)
        dev.allocate(int(1.5e9))
        with pytest.raises(OutOfMemoryError):
            dev.allocate(int(0.6e9))

    def test_oom_message_names_device(self):
        dev = Device(GTX960)
        with pytest.raises(OutOfMemoryError, match="GTX 960"):
            dev.allocate(int(3e9))

    def test_free_unknown_handle_rejected(self):
        dev = Device(GTX960)
        with pytest.raises(KeyError):
            dev.free(42)

    def test_double_free_rejected(self):
        dev = Device(GTX960)
        h = dev.allocate(10)
        dev.free(h)
        with pytest.raises(KeyError):
            dev.free(h)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Device(GTX960).allocate(-1)

    def test_zero_size_allowed(self):
        dev = Device(GTX960)
        h = dev.allocate(0)
        dev.free(h)

    def test_peak_tracks_high_water_mark(self):
        dev = Device(GTX960)
        h1 = dev.allocate(1000)
        h2 = dev.allocate(500)
        dev.free(h1)
        dev.allocate(100)
        assert dev.peak_allocated_bytes == 1500
