"""Tests for the roofline/contention model."""

import pytest

from repro.gpusim.contention import ContentionModel
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import GTX960, GTX1660_SUPER, TESLA_P100


def kernel(
    flops=0.0,
    fp64=False,
    dram=0.0,
    l2=0.0,
    instr=0.0,
    threads=1 << 20,
    fault=0.0,
    label="k",
):
    return KernelOp(
        label=label,
        resources=KernelResourceRequest(
            flops=flops,
            fp64=fp64,
            dram_bytes=dram,
            l2_bytes=l2,
            instructions=instr,
            threads_total=threads,
            fault_bytes=fault,
        ),
    )


@pytest.fixture
def model():
    return ContentionModel(GTX1660_SUPER)


class TestRoofline:
    def test_memory_bound_duration(self, model):
        # 250 GB/s effective: 250e9 bytes take 1 second.
        k = kernel(dram=250e9)
        assert model.kernel_duration(k) == pytest.approx(1.0, rel=1e-6)

    def test_compute_bound_duration(self, model):
        k = kernel(flops=3.8e12)  # 1 second of FP32
        assert model.kernel_duration(k) == pytest.approx(1.0, rel=1e-6)

    def test_fp64_much_slower_on_consumer(self, model):
        k32 = kernel(flops=1e11, fp64=False)
        k64 = kernel(flops=1e11, fp64=True)
        ratio = model.kernel_duration(k64) / model.kernel_duration(k32)
        assert ratio == pytest.approx(3800 / 118, rel=1e-3)

    def test_fp64_mild_penalty_on_p100(self):
        m = ContentionModel(TESLA_P100)
        k32 = kernel(flops=1e11, fp64=False)
        k64 = kernel(flops=1e11, fp64=True)
        ratio = m.kernel_duration(k64) / m.kernel_duration(k32)
        assert ratio == pytest.approx(2.0, rel=1e-3)

    def test_duration_is_max_of_terms(self, model):
        k = kernel(flops=3.8e12, dram=250e9)  # both terms = 1 s
        assert model.kernel_duration(k) == pytest.approx(1.0, rel=1e-6)

    def test_small_grid_runs_slower(self, model):
        # A grid too small to fill the device gets a smaller SM fraction,
        # so compute-bound work takes proportionally longer.
        big = kernel(flops=1e11, threads=GTX1660_SUPER.max_resident_threads)
        small = kernel(flops=1e11, threads=GTX1660_SUPER.max_resident_threads // 4)
        assert model.kernel_duration(small) == pytest.approx(
            4 * model.kernel_duration(big), rel=1e-6
        )

    def test_sm_fraction_clamped_to_one(self, model):
        assert model.kernel_sm_fraction(10**9) == 1.0

    def test_sm_fraction_minimum_one_sm(self, model):
        assert model.kernel_sm_fraction(1) == pytest.approx(
            1 / GTX1660_SUPER.sm_count
        )

    def test_fault_bytes_on_maxwell_raises(self):
        m = ContentionModel(GTX960)
        with pytest.raises(ValueError):
            m.kernel_duration(kernel(dram=1e6, fault=1e6))

    def test_fault_time_dominates_when_unprefetched(self, model):
        resident = kernel(dram=1e9)
        faulting = kernel(dram=1e9, fault=1e9)
        assert model.kernel_duration(faulting) > 2 * model.kernel_duration(
            resident
        )


class TestSpaceSharing:
    def test_two_half_device_kernels_run_concurrently_at_full_speed(
        self, model
    ):
        half = GTX1660_SUPER.max_resident_threads // 2
        k1 = kernel(flops=1e11, threads=half, label="k1")
        k2 = kernel(flops=1e11, threads=half, label="k2")
        solo = model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        # Each keeps its full demanded SM share -> same rate as alone.
        assert alloc.rates[k1.op_id] == pytest.approx(1 / solo, rel=1e-6)
        assert alloc.rates[k2.op_id] == pytest.approx(1 / solo, rel=1e-6)

    def test_two_full_device_kernels_halve(self, model):
        full = GTX1660_SUPER.max_resident_threads
        k1 = kernel(flops=1e11, threads=full, label="k1")
        k2 = kernel(flops=1e11, threads=full, label="k2")
        solo = model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        assert alloc.rates[k1.op_id] == pytest.approx(0.5 / solo, rel=1e-6)
        assert alloc.kernel_sm_share[k1.op_id] == pytest.approx(0.5)

    def test_memory_bandwidth_contention(self, model):
        # Two fully memory-bound kernels with small SM demand still fight
        # over DRAM bandwidth.
        quarter = GTX1660_SUPER.max_resident_threads // 4
        k1 = kernel(dram=250e9, threads=quarter, label="k1")
        k2 = kernel(dram=250e9, threads=quarter, label="k2")
        solo_rate = 1 / model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        assert alloc.rates[k1.op_id] == pytest.approx(
            solo_rate / 2, rel=1e-6
        )

    def test_compute_and_memory_kernels_coexist(self, model):
        # A compute-bound and a memory-bound kernel barely interact.
        half = GTX1660_SUPER.max_resident_threads // 2
        kc = kernel(flops=1e11, threads=half, label="compute")
        km = kernel(dram=100e9, threads=half, label="memory")
        rc_solo = 1 / model.kernel_duration(kc)
        rm_solo = 1 / model.kernel_duration(km)
        alloc = model.allocate([kc, km])
        assert alloc.rates[kc.op_id] == pytest.approx(rc_solo, rel=0.05)
        assert alloc.rates[km.op_id] == pytest.approx(rm_solo, rel=0.05)

    def test_fp64_half_device_kernels_coexist(self, model):
        # FP64 units live per-SM: two half-device FP64 kernels use
        # disjoint units and run at full solo speed concurrently.
        half = GTX1660_SUPER.max_resident_threads // 2
        k1 = kernel(flops=1e10, fp64=True, threads=half, label="a")
        k2 = kernel(flops=1e10, fp64=True, threads=half, label="b")
        solo = 1 / model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        assert alloc.rates[k1.op_id] == pytest.approx(solo, rel=1e-3)

    def test_fp64_full_device_kernels_conserve_work(self, model):
        # Full-occupancy FP64 kernels split the SMs: concurrency does
        # not create FP64 throughput (B&S's limitation, section V-E).
        full = GTX1660_SUPER.max_resident_threads
        k1 = kernel(flops=1e10, fp64=True, threads=full, label="a")
        k2 = kernel(flops=1e10, fp64=True, threads=full, label="b")
        solo = 1 / model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        assert alloc.rates[k1.op_id] == pytest.approx(solo / 2, rel=1e-3)

    def test_pagefault_controller_shared(self, model):
        half = GTX1660_SUPER.max_resident_threads // 2
        k1 = kernel(dram=1e9, fault=1e9, threads=half, label="a")
        k2 = kernel(dram=1e9, fault=1e9, threads=half, label="b")
        solo = 1 / model.kernel_duration(k1)
        alloc = model.allocate([k1, k2])
        assert alloc.rates[k1.op_id] < solo * 0.75


class TestTransfers:
    def test_single_transfer_full_bandwidth(self, model):
        t = TransferOp(nbytes=11e9, direction=TransferDirection.HOST_TO_DEVICE)
        alloc = model.allocate([t])
        assert alloc.rates[t.op_id] == pytest.approx(11e9, rel=1e-6)

    def test_same_direction_transfers_serialize(self, model):
        # One DMA copy engine per direction: the first submitted transfer
        # owns the link; the second waits (Fig. 10's staircase).
        t1 = TransferOp(nbytes=1e9, direction=TransferDirection.HOST_TO_DEVICE)
        t2 = TransferOp(nbytes=1e9, direction=TransferDirection.HOST_TO_DEVICE)
        alloc = model.allocate([t1, t2])
        assert alloc.rates[t1.op_id] == pytest.approx(11e9, rel=1e-6)
        assert alloc.rates[t2.op_id] < 1.0

    def test_opposite_directions_full_duplex(self, model):
        t1 = TransferOp(nbytes=1e9, direction=TransferDirection.HOST_TO_DEVICE)
        t2 = TransferOp(nbytes=1e9, direction=TransferDirection.DEVICE_TO_HOST)
        alloc = model.allocate([t1, t2])
        assert alloc.rates[t1.op_id] == pytest.approx(11e9, rel=1e-6)
        assert alloc.rates[t2.op_id] == pytest.approx(11e9, rel=1e-6)

    def test_transfer_does_not_slow_kernel(self, model):
        k = kernel(flops=1e11, label="k")
        t = TransferOp(nbytes=1e9, direction=TransferDirection.HOST_TO_DEVICE)
        solo = 1 / model.kernel_duration(k)
        alloc = model.allocate([k, t])
        assert alloc.rates[k.op_id] == pytest.approx(solo, rel=1e-6)
