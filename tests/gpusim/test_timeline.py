"""Tests for timeline records and the interval algebra helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.timeline import (
    IntervalKind,
    Timeline,
    TimelineRecord,
    intersect_two,
    intervals_measure,
    merge_intervals,
)


def rec(start, end, kind=IntervalKind.KERNEL, stream=0, label="x", nbytes=0.0):
    return TimelineRecord(
        op_id=0,
        label=label,
        kind=kind,
        stream_id=stream,
        start=start,
        end=end,
        nbytes=nbytes,
    )


class TestRecord:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            rec(2.0, 1.0)

    def test_duration(self):
        assert rec(1.0, 3.5).duration == 2.5

    def test_overlaps(self):
        assert rec(0, 2).overlaps(rec(1, 3))
        assert not rec(0, 1).overlaps(rec(1, 2))  # touching is not overlap
        assert not rec(0, 1).overlaps(rec(2, 3))

    def test_transfer_kind_flags(self):
        assert IntervalKind.TRANSFER_HTOD.is_transfer
        assert IntervalKind.TRANSFER_DTOH.is_transfer
        assert not IntervalKind.KERNEL.is_transfer


class TestTimeline:
    def test_empty_makespan_zero(self):
        assert Timeline().makespan == 0.0

    def test_selections(self):
        tl = Timeline()
        tl.add(rec(0, 1, IntervalKind.KERNEL, stream=1))
        tl.add(rec(0, 2, IntervalKind.TRANSFER_HTOD, stream=2))
        tl.add(rec(2, 3, IntervalKind.TRANSFER_DTOH, stream=1))
        assert len(tl.kernels()) == 1
        assert len(tl.transfers()) == 2
        assert len(tl.by_stream(1)) == 2
        assert tl.stream_ids() == [1, 2]

    def test_makespan_ignores_zero_duration_events(self):
        tl = Timeline()
        tl.add(rec(5, 5, IntervalKind.EVENT))
        tl.add(rec(1, 2))
        assert tl.makespan == 1.0
        assert tl.start == 1.0 and tl.end == 2.0

    def test_totals(self):
        tl = Timeline()
        tl.add(rec(0, 1))
        tl.add(rec(0, 2, IntervalKind.TRANSFER_HTOD, nbytes=100.0))
        assert tl.total_kernel_time() == 1.0
        assert tl.total_transfer_time() == 2.0
        assert tl.total_transferred_bytes() == 100.0

    def test_render_ascii_nonempty(self):
        tl = Timeline()
        tl.add(rec(0, 1, IntervalKind.KERNEL, stream=1, label="mmul"))
        tl.add(rec(0.5, 2, IntervalKind.TRANSFER_HTOD, stream=2))
        art = tl.render_ascii(width=40)
        assert "S1" in art and "S2" in art
        assert "m" in art  # label tag rendered

    def test_render_empty(self):
        assert "empty" in Timeline().render_ascii()

    def test_clear(self):
        tl = Timeline()
        tl.add(rec(0, 1))
        tl.clear()
        assert len(tl) == 0

    def test_clear_resets_incremental_aggregates(self):
        tl = Timeline()
        tl.add(rec(1, 2))
        tl.add(rec(0, 3, IntervalKind.TRANSFER_HTOD, stream=2, nbytes=8.0))
        tl.clear()
        assert tl.start == 0.0 and tl.end == 0.0 and tl.makespan == 0.0
        assert tl.total_kernel_time() == 0.0
        assert tl.total_transfer_time() == 0.0
        assert tl.total_transferred_bytes() == 0.0
        assert tl.stream_ids() == []
        assert tl.by_stream(2) == []
        # And the aggregates resume correctly after the reset.
        tl.add(rec(4, 6))
        assert tl.makespan == 2.0
        assert tl.total_kernel_time() == 2.0

    def test_incremental_aggregates_match_scans(self):
        tl = Timeline()
        records = [
            rec(0, 1),
            rec(5, 5, IntervalKind.EVENT),
            rec(0.5, 2, IntervalKind.TRANSFER_HTOD, stream=2, nbytes=16.0),
            rec(3, 4, IntervalKind.TRANSFER_DTOH, stream=1, nbytes=4.0),
            rec(2, 3, IntervalKind.TRANSFER_D2D, stream=3, nbytes=2.0),
        ]
        for r in records:
            tl.add(r)
        assert tl.start == min(r.start for r in records if r.duration > 0)
        assert tl.end == max(r.end for r in records if r.duration > 0)
        assert tl.total_kernel_time() == sum(
            r.duration for r in records if r.kind is IntervalKind.KERNEL
        )
        assert tl.total_transfer_time() == sum(
            r.duration for r in records if r.kind.is_transfer
        )
        assert tl.total_transferred_bytes() == 22.0
        assert tl.by_stream(0) == [records[0], records[1]]
        assert tl.stream_ids() == [0, 1, 2, 3]


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merged(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_zero_length_dropped(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]

    def test_measure(self):
        assert intervals_measure([(0, 2), (1, 3), (10, 11)]) == 4.0


class TestIntersect:
    def test_basic(self):
        xs = [(0.0, 2.0), (4.0, 6.0)]
        ys = [(1.0, 5.0)]
        assert intersect_two(xs, ys) == [(1.0, 2.0), (4.0, 5.0)]

    def test_disjoint(self):
        assert intersect_two([(0.0, 1.0)], [(2.0, 3.0)]) == []

    def test_empty(self):
        assert intersect_two([], [(0.0, 1.0)]) == []


finite_interval = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
).map(lambda t: (min(t), max(t)))

interval_lists = st.lists(finite_interval, max_size=30)


class TestIntervalProperties:
    @given(interval_lists)
    def test_merge_is_disjoint_and_sorted(self, items):
        merged = merge_intervals(items)
        for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
            assert b1 < a2

    @given(interval_lists)
    def test_merge_idempotent(self, items):
        once = merge_intervals(items)
        assert merge_intervals(once) == once

    @given(interval_lists)
    def test_measure_upper_bound(self, items):
        # Union measure never exceeds the sum of the parts.
        assert intervals_measure(items) <= sum(
            b - a for a, b in items
        ) + 1e-9

    @given(interval_lists, interval_lists)
    def test_intersection_within_both(self, xs, ys):
        mx, my = merge_intervals(xs), merge_intervals(ys)
        inter = intersect_two(mx, my)
        m_inter = intervals_measure(inter)
        assert m_inter <= intervals_measure(mx) + 1e-9
        assert m_inter <= intervals_measure(my) + 1e-9

    @given(interval_lists, interval_lists)
    def test_inclusion_exclusion(self, xs, ys):
        mx, my = merge_intervals(xs), merge_intervals(ys)
        union = intervals_measure(list(mx) + list(my))
        assert union == pytest.approx(
            intervals_measure(mx)
            + intervals_measure(my)
            - intervals_measure(intersect_two(mx, my)),
            abs=1e-6,
        )
