"""Property-based stress tests of the discrete-event engine.

Random stream/op/event programs are generated and the engine's core
guarantees are checked: work conservation, FIFO order, event causality,
timeline consistency, and determinism.
"""

from hypothesis import given, settings, strategies as st

from repro.gpusim import Device, SimEngine, GTX1660_SUPER
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)

N_STREAMS = 4

# A random program step: (kind, stream, size-class, optional event link)
step_strategy = st.tuples(
    st.sampled_from(["kernel", "htod", "dtoh", "record", "wait"]),
    st.integers(0, N_STREAMS - 1),
    st.integers(1, 4),
    st.integers(0, 10),
)
program_strategy = st.lists(step_strategy, min_size=1, max_size=30)


def build_and_run(program):
    engine = SimEngine(Device(GTX1660_SUPER))
    streams = [engine.create_stream(f"s{i}") for i in range(N_STREAMS)]
    events = {}
    ops = []
    for kind, sid, size, link in program:
        stream = streams[sid]
        if kind == "kernel":
            op = KernelOp(
                label=f"k{len(ops)}",
                resources=KernelResourceRequest(
                    flops=size * 1e9,
                    fp64=False,
                    dram_bytes=size * 1e8,
                    l2_bytes=0,
                    instructions=0,
                    threads_total=size * 8192,
                ),
            )
            engine.submit(stream, op)
            ops.append(op)
        elif kind in ("htod", "dtoh"):
            op = TransferOp(
                label=f"t{len(ops)}",
                direction=(
                    TransferDirection.HOST_TO_DEVICE
                    if kind == "htod"
                    else TransferDirection.DEVICE_TO_HOST
                ),
                nbytes=size * 1e7,
            )
            engine.submit(stream, op)
            ops.append(op)
        elif kind == "record":
            events[link] = engine.record_event(stream)
        elif kind == "wait":
            # Only wait on events already recorded on a *different*
            # stream id to keep programs deadlock-free by construction.
            ev = events.get(link)
            if ev is not None:
                engine.wait_event(stream, ev)
    engine.sync_all()
    return engine, ops


class TestEngineProperties:
    @given(program_strategy)
    @settings(max_examples=80, deadline=None)
    def test_all_work_completes(self, program):
        engine, ops = build_and_run(program)
        for op in ops:
            assert op.work_remaining == 0.0
            assert op.end_time >= op.start_time >= op.submit_time

    @given(program_strategy)
    @settings(max_examples=80, deadline=None)
    def test_fifo_within_streams(self, program):
        engine, ops = build_and_run(program)
        per_stream = {}
        for op in ops:
            per_stream.setdefault(op.stream.stream_id, []).append(op)
        for stream_ops in per_stream.values():
            for a, b in zip(stream_ops, stream_ops[1:]):
                assert a.end_time <= b.start_time + 1e-12

    @given(program_strategy)
    @settings(max_examples=80, deadline=None)
    def test_timeline_matches_ops(self, program):
        engine, ops = build_and_run(program)
        recorded = {
            r.op_id for r in engine.timeline if r.duration >= 0
        }
        for op in ops:
            assert op.op_id in recorded

    @given(program_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, program):
        e1, ops1 = build_and_run(program)
        e2, ops2 = build_and_run(program)
        assert e1.clock == e2.clock
        assert [
            (o.start_time, o.end_time) for o in ops1
        ] == [(o.start_time, o.end_time) for o in ops2]

    @given(program_strategy)
    @settings(max_examples=50, deadline=None)
    def test_work_conservation_lower_bound(self, program):
        """The makespan can never beat the single-resource bounds:
        total kernel work / device capacity and per-direction transfer
        bytes / PCIe bandwidth."""
        engine, ops = build_and_run(program)
        spec = engine.device.spec
        htod_bytes = sum(
            o.nbytes
            for o in ops
            if isinstance(o, TransferOp)
            and o.direction is TransferDirection.HOST_TO_DEVICE
        )
        min_transfer_time = htod_bytes / (spec.pcie_bandwidth_gbs * 1e9)
        assert engine.clock >= min_transfer_time - 1e-9

    @given(program_strategy)
    @settings(max_examples=50, deadline=None)
    def test_kernel_durations_at_least_solo(self, program):
        """Contention can only slow kernels down, never speed them up."""
        engine, ops = build_and_run(program)
        model = engine.device.contention
        for op in ops:
            if isinstance(op, KernelOp):
                solo = model.kernel_duration(op)
                measured = op.end_time - op.start_time
                assert measured >= solo * (1 - 1e-9)
