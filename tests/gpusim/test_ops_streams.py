"""Tests for operation types and stream FIFO semantics."""

import pytest

from repro.errors import InvalidStateError
from repro.gpusim.ops import (
    EventRecordOp,
    EventWaitOp,
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.stream import SimEvent, SimStream


def res(threads=1024, flops=1e6, dram=1e6):
    return KernelResourceRequest(
        flops=flops,
        fp64=False,
        dram_bytes=dram,
        l2_bytes=2 * dram,
        instructions=flops,
        threads_total=threads,
    )


class TestResourceRequest:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            KernelResourceRequest(
                flops=-1, fp64=False, dram_bytes=0, l2_bytes=0,
                instructions=0, threads_total=1,
            )

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            KernelResourceRequest(
                flops=0, fp64=False, dram_bytes=0, l2_bytes=0,
                instructions=0, threads_total=0,
            )

    def test_negative_fault_bytes_rejected(self):
        with pytest.raises(ValueError):
            KernelResourceRequest(
                flops=0, fp64=False, dram_bytes=0, l2_bytes=0,
                instructions=0, threads_total=1, fault_bytes=-1,
            )


class TestOps:
    def test_kernel_requires_resources(self):
        with pytest.raises(ValueError):
            KernelOp(label="k")

    def test_kernel_work_normalized(self):
        k = KernelOp(label="k", resources=res())
        assert k.work_total == 1.0
        assert not k.instantaneous
        assert k.is_kernel and not k.is_transfer

    def test_transfer_work_is_bytes(self):
        t = TransferOp(
            label="t",
            direction=TransferDirection.HOST_TO_DEVICE,
            nbytes=1024,
        )
        assert t.work_total == 1024
        assert t.is_transfer and not t.is_kernel

    def test_zero_byte_transfer_is_instantaneous(self):
        t = TransferOp(nbytes=0)
        assert t.instantaneous

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TransferOp(nbytes=-1)

    def test_event_record_requires_event(self):
        with pytest.raises(ValueError):
            EventRecordOp()

    def test_event_wait_auto_waits(self):
        ev = SimEvent("e")
        w = EventWaitOp(event=ev)
        assert not w.waits_satisfied()
        ev._record(1.0)
        assert w.waits_satisfied()

    def test_op_ids_unique(self):
        ids = {TransferOp(nbytes=1).op_id for _ in range(100)}
        assert len(ids) == 100

    def test_op_equality_is_identity(self):
        a, b = TransferOp(nbytes=1), TransferOp(nbytes=1)
        assert a == a and a != b


class TestEvent:
    def test_double_record_rejected(self):
        ev = SimEvent()
        ev._record(0.0)
        with pytest.raises(InvalidStateError):
            ev._record(1.0)

    def test_record_time_stored(self):
        ev = SimEvent()
        ev._record(3.5)
        assert ev.record_time == 3.5


class TestStreamFIFO:
    def test_submit_sets_stream(self):
        s = SimStream(1)
        op = TransferOp(nbytes=1)
        s.submit(op)
        assert op.stream is s
        assert s.busy and not s.free

    def test_double_submit_rejected(self):
        s1, s2 = SimStream(1), SimStream(2)
        op = TransferOp(nbytes=1)
        s1.submit(op)
        with pytest.raises(InvalidStateError):
            s2.submit(op)

    def test_head_order_is_fifo(self):
        s = SimStream(1)
        a, b = TransferOp(nbytes=1, label="a"), TransferOp(nbytes=1, label="b")
        s.submit(a)
        s.submit(b)
        assert s.head_if_ready() is a

    def test_head_blocked_by_wait(self):
        s = SimStream(1)
        ev = SimEvent()
        op = TransferOp(nbytes=1)
        op.add_wait(ev)
        s.submit(op)
        assert s.head_if_ready() is None
        ev._record(0.0)
        assert s.head_if_ready() is op

    def test_only_one_running(self):
        s = SimStream(1)
        a, b = TransferOp(nbytes=1), TransferOp(nbytes=1)
        s.submit(a)
        s.submit(b)
        s.begin(a)
        assert s.head_if_ready() is None  # b blocked while a runs
        s.finish(a)
        assert s.head_if_ready() is b

    def test_begin_requires_head(self):
        s = SimStream(1)
        a, b = TransferOp(nbytes=1), TransferOp(nbytes=1)
        s.submit(a)
        s.submit(b)
        with pytest.raises(InvalidStateError):
            s.begin(b)

    def test_finish_requires_running(self):
        s = SimStream(1)
        a = TransferOp(nbytes=1)
        s.submit(a)
        with pytest.raises(InvalidStateError):
            s.finish(a)

    def test_destroy_busy_stream_rejected(self):
        s = SimStream(1)
        s.submit(TransferOp(nbytes=1))
        with pytest.raises(InvalidStateError):
            s.destroy()

    def test_submit_to_destroyed_rejected(self):
        s = SimStream(1)
        s.destroy()
        with pytest.raises(InvalidStateError):
            s.submit(TransferOp(nbytes=1))

    def test_free_after_completion(self):
        s = SimStream(1)
        a = TransferOp(nbytes=1)
        s.submit(a)
        s.begin(a)
        s.finish(a)
        assert s.free
        assert s.completed_count == 1
