"""Direct tests for the engine/stream error paths.

Every ``InvalidStateError``/``DeadlockError`` raise site in
``gpusim.engine`` and ``gpusim.stream`` gets an explicit test here —
these guards protect the serving layer's fault handling (a misused
stream must fail loudly, not corrupt the virtual timeline).
"""

import pytest

from repro.errors import (
    DeadlockError,
    InvalidStateError,
    ReproError,
    SimulationError,
)
from repro.gpusim import Device, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import KernelOp, KernelResourceRequest
from repro.gpusim.stream import SimEvent


def kernel(label="k"):
    return KernelOp(
        label=label,
        resources=KernelResourceRequest(
            flops=3.8e9,
            fp64=False,
            dram_bytes=0.0,
            l2_bytes=0.0,
            instructions=0.0,
            threads_total=1 << 20,
        ),
    )


@pytest.fixture
def engine():
    return SimEngine(Device(GTX1660_SUPER))


class TestEngineErrorPaths:
    def test_zero_devices_rejected(self):
        with pytest.raises(InvalidStateError, match="at least one device"):
            SimEngine([])

    def test_create_stream_bad_device_index(self, engine):
        with pytest.raises(InvalidStateError, match="out of range"):
            engine.create_stream(device_index=1)
        with pytest.raises(InvalidStateError, match="out of range"):
            engine.create_stream(device_index=-1)

    def test_reclaim_default_stream_rejected(self, engine):
        with pytest.raises(InvalidStateError, match="default stream"):
            engine.reclaim_stream(engine.default_stream)

    def test_reclaim_foreign_stream_rejected(self, engine):
        other = SimEngine(Device(GTX1660_SUPER))
        foreign = other.create_stream(label="foreign")
        with pytest.raises(InvalidStateError, match="does not belong"):
            engine.reclaim_stream(foreign)

    def test_reclaim_busy_stream_rejected(self, engine):
        stream = engine.create_stream()
        engine.submit(stream, kernel())
        with pytest.raises(InvalidStateError, match="busy"):
            engine.reclaim_stream(stream)
        # Still registered and drainable after the failed reclaim.
        engine.sync_all()
        engine.reclaim_stream(stream)
        assert stream not in engine.streams

    def test_submit_to_foreign_stream_rejected(self, engine):
        other = SimEngine(Device(GTX1660_SUPER))
        foreign = other.create_stream(label="foreign")
        with pytest.raises(InvalidStateError, match="foreign"):
            engine.submit(foreign, kernel())

    def test_submit_to_reclaimed_stream_rejected(self, engine):
        stream = engine.create_stream(label="gone")
        engine.reclaim_stream(stream)
        # The id was removed from the registry, so the engine-level
        # foreign-stream guard fires before the stream's destroyed flag.
        with pytest.raises(InvalidStateError):
            engine.submit(stream, kernel())

    def test_sync_deadlocks_on_never_recorded_event(self, engine):
        ghost = SimEvent(label="never-recorded")
        stream = engine.create_stream()
        engine.wait_event(stream, ghost)
        engine.submit(stream, kernel())
        with pytest.raises(DeadlockError, match="no operation can make"):
            engine.sync_all()

    def test_sync_stream_deadlocks_on_cyclic_wait(self, engine):
        # s1 waits on an event only recorded after s2's wait on an event
        # only recorded on s1: classic cross-stream cycle.
        s1, s2 = engine.create_stream(), engine.create_stream()
        ev1, ev2 = SimEvent(label="ev1"), SimEvent(label="ev2")
        engine.wait_event(s1, ev2)
        engine.record_event(s1, ev1)
        engine.wait_event(s2, ev1)
        engine.record_event(s2, ev2)
        with pytest.raises(DeadlockError):
            engine.sync_stream(s1)

    def test_sync_event_deadlocks_on_unrecorded_event(self, engine):
        ghost = SimEvent(label="ghost")
        with pytest.raises(DeadlockError, match="ghost"):
            engine.sync_event(ghost)


class TestStreamErrorPaths:
    def test_event_recorded_twice(self):
        ev = SimEvent(label="once")
        ev._record(1.0)
        with pytest.raises(InvalidStateError, match="recorded twice"):
            ev._record(2.0)

    def test_submit_to_destroyed_stream(self, engine):
        stream = engine.create_stream(label="dead")
        stream.destroy()
        with pytest.raises(InvalidStateError, match="destroyed"):
            stream.submit(kernel())

    def test_op_submitted_twice(self, engine):
        op = kernel()
        engine.submit(engine.default_stream, op)
        with pytest.raises(InvalidStateError, match="already submitted"):
            engine.submit(engine.default_stream, op)
        engine.sync_all()

    def test_begin_non_head_op(self, engine):
        stream = engine.create_stream()
        head, tail = kernel("head"), kernel("tail")
        stream.submit(head)
        stream.submit(tail)
        with pytest.raises(InvalidStateError, match="head"):
            stream.begin(tail)

    def test_finish_op_not_running(self, engine):
        stream = engine.create_stream()
        op = kernel()
        stream.submit(op)
        with pytest.raises(InvalidStateError, match="not running"):
            stream.finish(op)

    def test_destroy_busy_stream(self, engine):
        stream = engine.create_stream()
        engine.submit(stream, kernel())
        with pytest.raises(InvalidStateError, match="busy"):
            stream.destroy()
        engine.sync_all()
        stream.destroy()
        assert stream.destroyed


class TestErrorHierarchy:
    def test_simulation_errors_are_repro_errors(self):
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(InvalidStateError, SimulationError)
        assert issubclass(SimulationError, ReproError)

    def test_deadlock_catchable_as_base(self, engine):
        ghost = SimEvent(label="ghost")
        engine.wait_event(engine.default_stream, ghost)
        with pytest.raises(ReproError):
            engine.sync_all()
