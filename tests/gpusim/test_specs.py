"""Tests for GPU spec presets and architecture rules."""

import pytest

from repro.gpusim import (
    ALL_GPUS,
    GTX960,
    GTX1660_SUPER,
    TESLA_P100,
    GPUArchitecture,
    gpu_by_name,
)


class TestArchitecture:
    def test_maxwell_has_no_page_faults(self):
        assert not GPUArchitecture.MAXWELL.supports_page_faults

    def test_pascal_has_page_faults(self):
        assert GPUArchitecture.PASCAL.supports_page_faults

    def test_turing_has_page_faults(self):
        assert GPUArchitecture.TURING.supports_page_faults


class TestPresets:
    def test_three_presets(self):
        assert len(ALL_GPUS) == 3

    def test_paper_memory_capacities(self):
        # Table I: 2 GB, 6 GB, 12.2 GB.
        assert GTX960.device_memory_gb == 2.0
        assert GTX1660_SUPER.device_memory_gb == 6.0
        assert TESLA_P100.device_memory_gb == 12.2

    def test_p100_fp64_ratio_is_half(self):
        assert TESLA_P100.fp64_gflops == pytest.approx(
            TESLA_P100.fp32_gflops / 2
        )

    def test_consumer_fp64_ratio_is_one_thirtysecond(self):
        for spec in (GTX960, GTX1660_SUPER):
            assert spec.fp64_gflops == pytest.approx(
                spec.fp32_gflops / 32, rel=0.05
            )

    def test_p100_fp64_20x_faster_than_1660(self):
        # Section V-F: "the Tesla P100 has 20x higher double-precision
        # performance than the 1660".
        ratio = TESLA_P100.fp64_gflops / GTX1660_SUPER.fp64_gflops
        assert 15 <= ratio <= 40

    def test_maxwell_preset_has_no_fault_bandwidth(self):
        assert GTX960.pagefault_bandwidth_gbs == 0.0
        assert not GTX960.supports_page_faults

    def test_device_memory_bytes(self):
        assert GTX960.device_memory_bytes == int(2.0e9)

    def test_max_resident_threads(self):
        assert GTX960.max_resident_threads == 8 * 2048

    def test_flops_rate_selects_precision(self):
        assert GTX1660_SUPER.flops_rate(False) == pytest.approx(3.8e12)
        assert GTX1660_SUPER.flops_rate(True) == pytest.approx(118e9)

    def test_instruction_rate_positive(self):
        for spec in ALL_GPUS:
            assert spec.instruction_rate() > 0

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            GTX960.sm_count = 99  # type: ignore[misc]


class TestLookup:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("P100", TESLA_P100),
            ("p100", TESLA_P100),
            ("tesla p100", TESLA_P100),
            ("GTX 960", GTX960),
            ("gtx-1660", GTX1660_SUPER),
            ("gtx1660super", GTX1660_SUPER),
            ("1660", GTX1660_SUPER),
        ],
    )
    def test_lookup_variants(self, name, expected):
        assert gpu_by_name(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            gpu_by_name("RTX 9090")
